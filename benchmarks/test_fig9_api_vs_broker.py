"""FIG-9 — processing time, API vs service-broker access (paper Fig. 9).

Regenerates the Figure-9 comparison: mean processing time versus the
number of WebStone-like clients, under (a) the API-based baseline and
(b) the distributed service-broker model, on the 3-broker/3-backend
testbed (bounded CGI times 1/2/3 s, backend capacity 5, threshold 20).

Expected shape (paper): the API curve grows *linearly* with the client
count (closed-loop saturation of fixed-capacity FCFS backends); the
broker curve *rises while admission can absorb the load, then declines*
as more requests are answered immediately with low-fidelity replies.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import render_table

from .harness import CLIENT_COUNTS, print_artifact, qos_sweep


def run_both_modes():
    return qos_sweep("api"), qos_sweep("broker")


def test_fig9_api_vs_broker(benchmark):
    api, broker = benchmark.pedantic(run_both_modes, rounds=1, iterations=1)

    rows = [
        {
            "clients": n,
            "api_s": a.mean_response_time,
            "broker_s": b.mean_response_time,
        }
        for n, a, b in zip(CLIENT_COUNTS, api, broker)
    ]
    print_artifact(
        "Figure 9 — mean processing time (s) vs number of clients",
        render_table(rows),
    )
    benchmark.extra_info["api_seconds"] = [round(r.mean_response_time, 2) for r in api]
    benchmark.extra_info["broker_seconds"] = [
        round(r.mean_response_time, 2) for r in broker
    ]

    # API linearity: a straight-line fit explains almost all variance.
    api_times = np.array([r.mean_response_time for r in api])
    ns = np.array(CLIENT_COUNTS, dtype=float)
    slope, intercept = np.polyfit(ns, api_times, 1)
    predicted = slope * ns + intercept
    residual = np.abs(api_times - predicted).max()
    assert slope > 0.2, "API processing time must grow with load"
    assert residual < 0.15 * api_times.max(), "API curve should be near-linear"

    # Broker curve: rises from the unloaded baseline, then declines.
    broker_times = [r.mean_response_time for r in broker]
    assert broker_times[1] > broker_times[0], "broker curve rises under light load"
    assert broker_times[-1] < max(broker_times), "broker curve declines under overload"
    # Under heavy load brokers answer far faster than the API baseline.
    assert broker_times[-1] < 0.5 * api_times[-1]
