"""ABL-MQO — multiple-query optimization at the broker (paper §III).

"Multiple query clustering and optimization [Sellis] has been studied
in database systems. Service brokers can provide similar optimization
among requests in absence of the backend server support."

A burst of keyed SELECTs against an *unindexed* table (each query alone
is a full scan — the paper's "traversal of database tables with many
comparison operations"). The :class:`InListQueryCombiner` rewrites a
batch into one ``WHERE key IN (...)`` scan, so the table is traversed
once instead of once per request.
"""

from __future__ import annotations

from typing import Optional

from repro import (
    BrokerClient,
    ClusteringConfig,
    Database,
    DatabaseAdapter,
    DatabaseServer,
    InListQueryCombiner,
    Link,
    Network,
    QoSPolicy,
    ServiceBroker,
    Simulation,
    SummaryStats,
)
from repro.metrics import render_table

from .harness import SEED, print_artifact

TABLE_ROWS = 20_000
BURST = 24


def run_point(max_batch: int):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    database = Database()
    table = database.create_table("events", [("id", int), ("detail", str)])
    for i in range(TABLE_ROWS):
        table.insert((i, f"event-{i}"))
    # No index: every keyed lookup is a full traversal.
    server = DatabaseServer(sim, net.node("dbhost"), database, max_workers=4)
    node = net.node("web")
    clustering: Optional[ClusteringConfig] = None
    if max_batch > 1:
        clustering = ClusteringConfig(
            combiner=InListQueryCombiner(), max_batch=max_batch, window=0.01
        )
    broker = ServiceBroker(
        sim,
        node,
        service="db",
        adapters=[DatabaseAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=1, threshold=1000),
        clustering=clustering,
        pool_size=4,
    )
    client = BrokerClient(sim, node, {"db": broker.address})
    times = SummaryStats()

    def one(key):
        started = sim.now
        reply = yield from client.call(
            "db", "query", f"SELECT detail FROM events WHERE id = {key}",
            cacheable=False,
        )
        assert reply.ok and reply.payload.rows[0][0] == f"event-{key}"
        times.add(sim.now - started)

    processes = [sim.process(one(100 + i)) for i in range(BURST)]
    sim.run(sim.all_of(processes))
    return {
        "max_batch": max_batch,
        "mean_ms": times.mean * 1000,
        "max_ms": times.maximum * 1000,
        "db_queries": int(server.metrics.counter("db.queries")),
        "rows_examined": int(server.metrics.counter("db.rows_examined")),
    }


def run_sweep():
    return [run_point(b) for b in (1, 4, 12, 24)]


def test_ablation_multiple_query_optimization(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact(
        f"Ablation — IN-list query combining ({BURST} concurrent keyed "
        f"lookups, unindexed {TABLE_ROWS}-row table)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    by = {r["max_batch"]: r for r in rows}
    # Combining collapses backend queries and total rows examined...
    assert by[24]["db_queries"] < by[1]["db_queries"]
    assert by[24]["rows_examined"] < 0.25 * by[1]["rows_examined"]
    # ...which shows up as lower response times, monotonically in batch size.
    means = [by[b]["mean_ms"] for b in (1, 4, 12, 24)]
    assert means[-1] < 0.5 * means[0]
    assert all(later <= earlier * 1.05 for earlier, later in zip(means, means[1:]))
