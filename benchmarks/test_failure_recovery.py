"""FAIL-REC — availability under backend crashes (paper §III).

"Even when the backend servers are not available, the requests of the
end users can be replied with the cached results of lower fidelity or
the indication of the unavailability of the service."

One broker runs the fault-tolerant stage plan over replica backends
while a FaultInjector crashes and restarts the first replica on an
exponential MTBF schedule (fixed MTTR). The curve sweeps MTBF at two
replicas — retries and breaker-steered failover keep answering at full
fidelity — and adds a single-replica point where the §III fallback
(stale-cache / busy replies) is the only thing left.
"""

from __future__ import annotations

from repro.metrics import render_table
from repro.workload import FailureRecoveryResult, run_failure_recovery_experiment

from .harness import SEED, print_artifact

#: MTBF values swept (seconds of virtual time); MTTR is fixed at 5 s.
MTBF_POINTS = (40.0, 20.0, 10.0)
MTTR = 5.0
DURATION = 120.0

#: The first crash is pinned so every point has at least one outage.
FIRST_CRASH_AT = 10.0


def run_point(mtbf: float, replicas: int) -> FailureRecoveryResult:
    return run_failure_recovery_experiment(
        mtbf=mtbf,
        mttr=MTTR,
        replicas=replicas,
        duration=DURATION,
        first_crash_at=FIRST_CRASH_AT,
        seed=SEED,
    )


def as_row(result: FailureRecoveryResult) -> dict:
    return {
        "replicas": result.replicas,
        "mtbf_s": result.mtbf,
        "outages": result.outages,
        "downtime_s": round(result.downtime, 1),
        "avail_pct": round(100.0 * result.availability, 2),
        "outage_avail_pct": round(100.0 * result.outage_availability, 2),
        "full_fid": result.ok,
        "degraded": result.degraded,
        "retries": result.retries,
        "breaker_opens": result.breaker_opens,
        "mean_ms": round(result.latency.mean * 1000, 1),
    }


def run_sweep():
    results = [run_point(mtbf, replicas=2) for mtbf in MTBF_POINTS]
    results.append(run_point(MTBF_POINTS[-1], replicas=1))
    return results


def test_failure_recovery(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [as_row(r) for r in results]
    print_artifact(
        "FAIL-REC — availability vs MTBF under backend crashes "
        f"(mttr={MTTR:g}s, duration={DURATION:g}s)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    replicated = results[:-1]
    solo = results[-1]

    for result in results:
        # The schedule actually produced outages to measure.
        assert result.outages >= 1
        assert result.outage_requests > 0
        # The §III availability claim: ≥ 99% of requests issued while a
        # backend is down still get a reply, full-fidelity or degraded.
        assert result.outage_availability >= 0.99
        # Nobody waits forever: no client-side timeouts, no error replies.
        assert result.timeouts == 0
        assert result.errors == 0

    for result in replicated:
        # With a surviving replica the pipeline recovers at full
        # fidelity: retries/failover re-route instead of degrading.
        assert result.outage_ok >= result.outage_degraded
        assert result.retries > 0
        assert result.breaker_opens > 0

    # With no surviving replica the broker falls back to §III degraded
    # replies (stale cache / busy), which dominate the outage windows.
    assert solo.degraded > 0
    assert solo.outage_degraded > solo.outage_ok
