"""ABL-LB — load balancing across replicated backends (paper §III).

"The service brokers can track the traffic and monitor their workload
and accurately distribute the workload among the backend servers to
achieve a balanced load."

Three replicas with heterogeneous speeds (1x / 2x / 4x service time)
behind one broker; compares round-robin (the API model's best case — it
"can only work in a speculative manner"), least-outstanding, and
EWMA-latency-aware balancing.
"""

from __future__ import annotations

from repro import (
    BackendWebServer,
    BrokerClient,
    HttpAdapter,
    LatencyAwareBalancer,
    LeastOutstandingBalancer,
    Link,
    Network,
    QoSPolicy,
    RoundRobinBalancer,
    ServiceBroker,
    Simulation,
    SummaryStats,
)
from repro.metrics import render_table

from .harness import SEED, print_artifact

SERVICE_TIMES = (0.05, 0.10, 0.20)  # heterogeneous replicas
N_REQUESTS = 400


def run_point(balancer_name: str):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    servers = []
    for i, service_time in enumerate(SERVICE_TIMES):
        server = BackendWebServer(sim, net.node(f"r{i}"), max_clients=4)

        def cgi(server, request, _t=service_time):
            yield server.sim.timeout(_t)
            return "ok"

        server.add_cgi("/work", cgi)
        servers.append(server)

    balancer = {
        "round-robin": RoundRobinBalancer,
        "least-outstanding": LeastOutstandingBalancer,
        "latency-aware": LatencyAwareBalancer,
    }[balancer_name]()
    broker = ServiceBroker(
        sim,
        web_node,
        service="web",
        adapters=[
            HttpAdapter(sim, web_node, s.address, name=f"r{i}")
            for i, s in enumerate(servers)
        ],
        qos=QoSPolicy(levels=1, threshold=10_000),
        balancer=balancer,
        pool_size=4,
        dispatchers=12,
    )
    client = BrokerClient(sim, web_node, {"web": broker.address})
    times = SummaryStats()

    def one(i):
        started = sim.now
        reply = yield from client.call("web", "get", ("/work", {"i": i}), cacheable=False)
        assert reply.ok
        times.add(sim.now - started)

    def driver():
        rng = sim.rng("arrivals")
        for i in range(N_REQUESTS):
            yield sim.timeout(rng.expovariate(40.0))
            sim.process(one(i))

    sim.process(driver())
    sim.run()
    shares = [int(s.metrics.counter("http.requests")) for s in servers]
    return {
        "balancer": balancer_name,
        "mean_ms": times.mean * 1000,
        "p95_ms": times.p95 * 1000,
        "fast_share": shares[0],
        "mid_share": shares[1],
        "slow_share": shares[2],
    }


def run_sweep():
    return [
        run_point(name)
        for name in ("round-robin", "least-outstanding", "latency-aware")
    ]


def test_ablation_load_balancing(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact(
        "Ablation — balancer policies over heterogeneous replicas "
        "(0.05s / 0.10s / 0.20s)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    by = {r["balancer"]: r for r in rows}
    # Load-aware policies beat blind round-robin on tail latency.
    assert by["least-outstanding"]["p95_ms"] <= by["round-robin"]["p95_ms"]
    assert by["latency-aware"]["p95_ms"] <= by["round-robin"]["p95_ms"]
    # The latency-aware policy routes more work to the fast replica.
    assert by["latency-aware"]["fast_share"] > by["round-robin"]["fast_share"]
    assert by["latency-aware"]["fast_share"] > by["latency-aware"]["slow_share"]
    # Nothing is lost.
    for row in rows:
        assert row["fast_share"] + row["mid_share"] + row["slow_share"] == N_REQUESTS
