"""ABL-TXN — transaction integrity ablation (paper §III supply chain).

"The broker would put more weight on those accesses whose transactions
are in step 3 and selectively drop those whose transactions are in
step 1 if the load is high. In API-based access models ... access in
step 3 is treated the same as that in step 1."

Runs 3-step purchase transactions through an overloaded broker with
transaction tracking off and on, and measures how many transactions
complete and — critically — how much work is *wasted* on transactions
that abort after investing steps.
"""

from __future__ import annotations

from collections import Counter

from repro import (
    BackendWebServer,
    BrokerClient,
    HttpAdapter,
    Link,
    Network,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
    Simulation,
    TransactionTracker,
)
from repro.metrics import render_table

from .harness import SEED, print_artifact

N_TRANSACTIONS = 150


def run_point(tracking: bool):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("agency")
    vendor = BackendWebServer(sim, net.node("vendor"), max_clients=3)

    def quote_cgi(server, request):
        yield server.sim.timeout(0.12)
        return "quote"

    vendor.add_cgi("/quote", quote_cgi)
    tracker = (
        TransactionTracker(escalation_per_step=1, protect_from_step=3)
        if tracking
        else None
    )
    broker = ServiceBroker(
        sim,
        web_node,
        service="vendor",
        adapters=[HttpAdapter(sim, web_node, vendor.address)],
        qos=QoSPolicy(levels=3, threshold=8),
        transactions=tracker,
        pool_size=3,
    )
    client = BrokerClient(sim, web_node, {"vendor": broker.address})

    outcomes: Counter = Counter()
    wasted_steps = {"n": 0}

    def purchase(txn_id: str):
        completed_steps = 0
        for step in (1, 2, 3):
            reply = yield from client.call(
                "vendor",
                "get",
                ("/quote", {"t": txn_id, "s": step}),
                qos_level=3,
                txn_id=txn_id,
                txn_step=step,
                cacheable=False,
            )
            if reply.status is not ReplyStatus.OK:
                outcomes[f"abort@{step}"] += 1
                wasted_steps["n"] += completed_steps
                return
            completed_steps += 1
            yield sim.timeout(0.05)
        if tracker is not None:
            tracker.complete(txn_id)
        outcomes["booked"] += 1

    def driver():
        rng = sim.rng("arrivals")
        for i in range(N_TRANSACTIONS):
            yield sim.timeout(rng.expovariate(15.0))
            sim.process(purchase(f"txn-{i}"))

    sim.process(driver())
    sim.run()
    return {
        "tracking": "on" if tracking else "off",
        "booked": outcomes["booked"],
        "abort_step1": outcomes["abort@1"],
        "abort_step2": outcomes["abort@2"],
        "abort_step3": outcomes["abort@3"],
        "wasted_steps": wasted_steps["n"],
    }


def run_sweep():
    return [run_point(False), run_point(True)]


def test_ablation_transaction_integrity(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact(
        "Ablation — transaction step escalation under overload "
        f"({N_TRANSACTIONS} three-step purchases, threshold 8)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    off, on = rows
    # Without tracking, transactions abort even at their final step,
    # wasting all the work already invested.
    late_aborts_off = off["abort_step2"] + off["abort_step3"]
    late_aborts_on = on["abort_step2"] + on["abort_step3"]
    assert late_aborts_off > 0
    assert late_aborts_on < late_aborts_off
    # Escalation sheds step-1 work instead, so less work is wasted...
    assert on["wasted_steps"] < off["wasted_steps"]
    # ...and at least as many transactions complete.
    assert on["booked"] >= off["booked"]
