"""ABL-CACHE — result caching ablation (paper §III, "Caching of query results").

The movie-schedule scenario: Zipf-popular schedule queries against an
unindexed table. Sweeps the cache off/on (several TTLs) and reports
response time, database load, and hit ratio.

Expected: caching cuts both mean response time and backend query count
by several x at peak popularity skew; longer TTLs help until entries
outlive the popularity window.
"""

from __future__ import annotations

from typing import Optional

from repro import (
    BrokerClient,
    Database,
    DatabaseAdapter,
    DatabaseServer,
    Link,
    Network,
    QoSPolicy,
    ResultCache,
    ServiceBroker,
    Simulation,
    SummaryStats,
    zipf_sampler,
)
from repro.metrics import render_table

from .harness import SEED, print_artifact

N_MOVIES = 400
N_REQUESTS = 1200


def run_point(cache_ttl: Optional[float]):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    database = Database()
    table = database.create_table(
        "schedule", [("movie_id", int), ("showtime", str)]
    )
    for movie in range(N_MOVIES):
        for slot in range(6):
            table.insert((movie, f"{12 + slot * 2}:00"))
    db_server = DatabaseServer(sim, net.node("dbhost"), database, max_workers=4)
    web_node = net.node("web")
    cache = (
        ResultCache(capacity=128, ttl=cache_ttl, clock=lambda: sim.now)
        if cache_ttl is not None
        else None
    )
    broker = ServiceBroker(
        sim,
        web_node,
        service="db",
        adapters=[DatabaseAdapter(sim, web_node, db_server.address)],
        qos=QoSPolicy(levels=1, threshold=1000),
        cache=cache,
        pool_size=4,
    )
    client = BrokerClient(sim, web_node, {"db": broker.address})
    sample = zipf_sampler(sim.rng("popularity"), N_MOVIES, skew=1.1)
    times = SummaryStats()

    def one():
        movie = sample()
        started = sim.now
        reply = yield from client.call(
            "db", "query", f"SELECT showtime FROM schedule WHERE movie_id = {movie}"
        )
        assert reply.ok
        times.add(sim.now - started)

    def driver():
        rng = sim.rng("arrivals")
        for _ in range(N_REQUESTS):
            yield sim.timeout(rng.expovariate(40.0))
            sim.process(one())

    sim.process(driver())
    sim.run()
    hit_ratio = cache.stats.hit_ratio if cache is not None else 0.0
    return {
        "cache": "off" if cache_ttl is None else f"ttl={cache_ttl:g}s",
        "mean_ms": times.mean * 1000,
        "p95_ms": times.p95 * 1000,
        "db_queries": int(db_server.metrics.counter("db.queries")),
        "hit_ratio": round(hit_ratio, 3),
    }


def run_sweep():
    return [run_point(ttl) for ttl in (None, 5.0, 30.0, 120.0)]


def test_ablation_result_cache(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact("Ablation — broker result cache (Zipf movie schedules)",
                   render_table(rows))
    benchmark.extra_info["rows"] = rows

    off, *on = rows
    best = min(on, key=lambda r: r["mean_ms"])
    assert best["mean_ms"] < 0.5 * off["mean_ms"], "caching should cut latency 2x+"
    assert best["db_queries"] < 0.5 * off["db_queries"]
    # Longer TTL -> fewer backend queries (monotone in this workload).
    queries = [r["db_queries"] for r in on]
    assert queries == sorted(queries, reverse=True)
