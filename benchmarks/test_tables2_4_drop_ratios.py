"""TAB-2/3/4 — drop ratios per QoS class at brokers 1-3 (paper Tables II-IV).

Regenerates the three drop-ratio tables: for each broker (fronting the
1 s / 2 s / 3 s backend respectively) the fraction of each class's
arrivals rejected by admission control, across the client sweep.

Expected shape (paper): "when traffic was light (number of clients <
20), no drops occurred. When the traffic intensified, more lower
priority requests were dropped. The drop ratios were mostly consistent
with their associated QoS levels."
"""

from __future__ import annotations

from repro.metrics import render_table

from .harness import CLIENT_COUNTS, print_artifact, qos_sweep


def run_broker_sweep():
    return qos_sweep("broker")


def test_tables_2_3_4_drop_ratios(benchmark):
    results = benchmark.pedantic(run_broker_sweep, rounds=1, iterations=1)

    broker_names = sorted(results[0].drop_ratios)
    for table_number, broker_name in zip(("II", "III", "IV"), broker_names):
        rows = [
            {
                "clients": n,
                "qos1": r.drop_ratios[broker_name][1],
                "qos2": r.drop_ratios[broker_name][2],
                "qos3": r.drop_ratios[broker_name][3],
            }
            for n, r in zip(CLIENT_COUNTS, results)
        ]
        print_artifact(
            f"Table {table_number} — drop ratios at {broker_name}",
            render_table(rows),
        )
    benchmark.extra_info["drop_ratios"] = {
        str(n): {b: dict(d) for b, d in r.drop_ratios.items()}
        for n, r in zip(CLIENT_COUNTS, results)
    }

    # No drops at the lightest load, anywhere.
    for drops in results[0].drop_ratios.values():
        assert all(ratio == 0.0 for ratio in drops.values())

    # Heavy load: drops occur, and at every broker the *cumulative*
    # sheds are ordered by class (lower priority sheds at least as much).
    heavy = results[-1]
    assert any(
        ratio > 0 for drops in heavy.drop_ratios.values() for ratio in drops.values()
    )
    for broker_name, drops in heavy.drop_ratios.items():
        assert drops[3] > 0, f"{broker_name} should shed class 3 under overload"

    # Aggregated over all brokers and loads, class ordering holds strictly.
    totals = {level: 0.0 for level in (1, 2, 3)}
    for result in results:
        for drops in result.drop_ratios.values():
            for level in (1, 2, 3):
                totals[level] += drops[level]
    assert totals[3] > totals[2] > totals[1]
