"""AUTOSCALE — elastic pool through a 10x diurnal swing, plus scale chaos.

Two artifacts:

* **AUTOSCALE** — the headline elastic-pool run: three diurnal QoS
  classes sweep an order-of-magnitude arrival swing while the
  target-tracking autoscaler grows and drains the broker pool. The
  premium p99 SLO must hold, the time-mean pool size must stay within
  1.5x the steady-state unit count (static provisioning would need the
  peak count), the burst tenant must be throttled while premium never
  is, and no request may be lost across any drain.
* **SCALE-CHAOS** — the soak that crashes brokers *while* they drain:
  a square-wave load forces a scale-out/scale-in cycle per period and
  a drain sniper kills every 2nd draining broker mid-protocol. At
  least 20 scale-ins and 3 mid-drain kills must complete with zero
  lost requests and zero residue on every unit ever provisioned.
"""

from __future__ import annotations

from repro.metrics import render_table
from repro.workload import (
    AutoscaleResult,
    ScaleChaosResult,
    run_autoscale_experiment,
    run_scale_chaos_experiment,
)

from .harness import SEED, print_artifact

HEADLINE_DURATION = 240.0
SOAK_DURATION = 264.0
MIN_SCALE_INS = 20
MIN_MID_DRAIN_KILLS = 3


def run_headline() -> AutoscaleResult:
    return run_autoscale_experiment(duration=HEADLINE_DURATION, seed=SEED)


def test_autoscale_headline(benchmark):
    result = benchmark.pedantic(run_headline, rounds=1, iterations=1)
    rows = [
        {
            "requests": result.requests,
            "ok": result.ok,
            "throttled": result.throttled,
            "dropped": result.dropped,
            "avail_pct": round(100.0 * result.availability, 3),
            "premium_p99_ms": round(result.premium_p99() * 1000, 1),
            "steady": result.steady_size,
            "mean_size": round(result.mean_size, 2),
            "peak_size": result.peak_size,
            "outs": result.scale_outs,
            "ins": result.scale_ins,
            "drains": result.drains_completed,
        }
    ]
    verdicts = "\n".join(
        f"INVARIANT {check.name:<24} "
        f"{'PASS' if check.passed else 'FAIL'} — {check.detail}"
        for check in result.invariants
    )
    print_artifact(
        f"AUTOSCALE — {HEADLINE_DURATION:g}s, 10x diurnal swing, "
        "target-tracking pool with graceful drain",
        render_table(rows) + "\n\n" + verdicts,
    )
    benchmark.extra_info["rows"] = rows

    # The pool actually worked for a living: it tracked the swing up
    # and back down, retiring every drained unit cleanly.
    assert result.scale_outs >= 3
    assert result.scale_ins >= 3
    assert result.drains_completed == result.scale_ins
    assert result.peak_size > result.min_size

    # Tenant isolation: the flash-crowd tenant was refused, the premium
    # tenant never was, and refusals never count as lost requests.
    assert result.tenants["burst"]["throttled"] > 0
    assert result.tenants["premium"]["throttled"] == 0

    # Every invariant holds: premium p99 within SLO, mean pool size
    # within 1.5x steady state, elasticity, containment, no loss.
    for check in result.invariants:
        assert check.passed, f"{check.name}: {check.detail}"


def run_soak() -> ScaleChaosResult:
    return run_scale_chaos_experiment(
        duration=SOAK_DURATION,
        min_scale_ins=MIN_SCALE_INS,
        min_mid_drain_kills=MIN_MID_DRAIN_KILLS,
        seed=SEED,
    )


def test_scale_chaos_soak(benchmark):
    result = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    rows = [
        {
            "requests": result.requests,
            "ok": result.ok,
            "dropped": result.dropped,
            "timeouts": result.timeouts,
            "avail_pct": round(100.0 * result.availability, 3),
            "ins": result.scale_ins,
            "drains": result.drains_completed,
            "mid_kills": result.mid_drain_kills,
            "interrupted": result.drain_interrupted,
            "crashes": result.crashes,
            "restarts": result.restarts,
            "p99_ms": round(result.latency.percentile(99) * 1000, 1),
        }
    ]
    verdicts = "\n".join(
        f"INVARIANT {check.name:<24} "
        f"{'PASS' if check.passed else 'FAIL'} — {check.detail}"
        for check in result.invariants
    )
    print_artifact(
        f"SCALE-CHAOS — {SOAK_DURATION:g}s square wave, drain sniper "
        "crashing every 2nd draining broker mid-protocol",
        render_table(rows) + "\n\n" + verdicts,
    )
    benchmark.extra_info["rows"] = rows

    # The schedule actually produced the events under test.
    assert result.scale_ins >= MIN_SCALE_INS
    assert result.mid_drain_kills >= MIN_MID_DRAIN_KILLS
    assert result.drain_interrupted >= MIN_MID_DRAIN_KILLS
    assert result.crashes == result.restarts

    # Every invariant holds — most importantly no-lost-request across
    # every drain, including the ones interrupted by a crash.
    for check in result.invariants:
        assert check.passed, f"{check.name}: {check.detail}"
