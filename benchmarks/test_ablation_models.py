"""ABL-CENT — centralized vs distributed broker models (paper §IV).

Two predictions from the paper:

1. Under overload, the centralized model rejects at the front door
   (cheap 503s before any processing) while the distributed model
   rejects at the brokers; both protect the backend.
2. "When the number of brokers or the update frequency of load
   information increase, the listener thread ... could be overwhelmed
   with update messages": listener staleness grows with the update rate
   times the broker count.
"""

from __future__ import annotations

from repro import (
    BackendWebServer,
    BrokerClient,
    CentralizedController,
    ClosedLoopClient,
    FrontendWebServer,
    HttpAdapter,
    HttpClient,
    HttpRequest,
    HttpResponse,
    Link,
    LoadListener,
    Network,
    QoSPolicy,
    ResourceProfileRegistry,
    ReplyStatus,
    ServiceBroker,
    WebApplication,
    qos_of,
)
from repro.frontend.app import QOS_HEADER
from repro.metrics import render_table
from repro.sim import Simulation

from .harness import SEED, print_artifact

N_CLIENTS = 24
DURATION = 40.0


def run_overload(mode: str):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    backend = BackendWebServer(sim, net.node("backend"), max_clients=3)

    def slow_cgi(server, request):
        yield server.sim.timeout(1.0)
        return "content"

    backend.add_cgi("/work", slow_cgi)
    policy = QoSPolicy(levels=3, threshold=8)
    broker = ServiceBroker(
        sim,
        web_node,
        service="backend",
        adapters=[HttpAdapter(sim, web_node, backend.address)],
        qos=policy,
        pool_size=3,
        priority_queueing=False,
    )
    client = BrokerClient(sim, web_node, {"backend": broker.address})

    admission = None
    if mode == "centralized":
        listener = LoadListener(sim, web_node, process_time=0.001)
        broker.report_load_to(listener.address, interval=0.05)
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["backend"])
        admission = CentralizedController(listener, profiles, policy).admit

    frontend = FrontendWebServer(sim, web_node, admission=admission)

    def page_app(frontend_server, request):
        reply = yield from client.call(
            "backend", "get", ("/work", {}),
            qos_level=qos_of(request), cacheable=False,
        )
        return HttpResponse.text("full" if reply.status is ReplyStatus.OK else "low")

    frontend.register_app(WebApplication(path="/page", handler=page_app))

    stagger = sim.rng("stagger")
    for i in range(N_CLIENTS):
        level = 1 + i % 3
        node = net.node(f"client{i}")

        def one(_c, _i, _node=node, _level=level):
            yield from HttpClient.fetch(
                sim, _node, frontend.address,
                HttpRequest(method="GET", path="/page",
                            headers={QOS_HEADER: str(_level)}),
            )

        ClosedLoopClient(
            sim, f"c{i}", one, think_time=0.1,
            start_delay=stagger.uniform(0, 2),
        ).start(until=DURATION)

    sim.run(until=DURATION + 20)
    return {
        "model": mode,
        "frontend_503": int(frontend.metrics.counter("frontend.rejected")),
        "broker_drops": int(broker.metrics.counter("broker.drops")),
        "served_full": int(broker.metrics.counter("broker.served")),
        "backend_requests": int(backend.metrics.counter("http.requests")),
    }


def run_listener_scaling(n_brokers: int, interval: float):
    """Measure listener lag with n_brokers reporting every `interval`s."""
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    listener = LoadListener(sim, web_node, process_time=0.002)
    for i in range(n_brokers):
        backend = BackendWebServer(sim, net.node(f"b{i}"), max_clients=1)
        broker = ServiceBroker(
            sim,
            web_node,
            service=f"svc{i}",
            port=7200 + i,
            adapters=[HttpAdapter(sim, web_node, backend.address)],
            qos=QoSPolicy(levels=1, threshold=10),
        )
        broker.report_load_to(listener.address, interval=interval)
    sim.run(until=20.0)
    lag = listener.metrics.sample("listener.update_lag")
    return {
        "brokers": n_brokers,
        "interval_s": interval,
        "updates": int(listener.metrics.counter("listener.updates")),
        "mean_lag_ms": lag.mean * 1000,
        "max_lag_ms": lag.maximum * 1000,
    }


def run_all():
    overload = [run_overload(mode) for mode in ("distributed", "centralized")]
    scaling = [
        run_listener_scaling(n, interval)
        for n, interval in ((3, 0.1), (10, 0.1), (30, 0.1), (30, 0.01))
    ]
    return overload, scaling


def test_ablation_centralized_vs_distributed(benchmark):
    overload, scaling = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_artifact("Ablation — overload handling by deployment model",
                   render_table(overload))
    print_artifact("Ablation — listener saturation (centralized model)",
                   render_table(scaling))
    benchmark.extra_info["overload"] = overload
    benchmark.extra_info["scaling"] = scaling

    by_model = {r["model"]: r for r in overload}
    # Both models protect the backend to the same service level.
    assert by_model["distributed"]["served_full"] > 0
    assert 0.7 < (
        by_model["centralized"]["served_full"]
        / by_model["distributed"]["served_full"]
    ) < 1.3
    # But they shed in different places.
    assert by_model["distributed"]["frontend_503"] == 0
    assert by_model["centralized"]["frontend_503"] > 100
    assert by_model["centralized"]["broker_drops"] < by_model["distributed"]["broker_drops"]

    # Listener lag grows with update load; the fastest configuration
    # (30 brokers at 10ms) saturates the listener thread.
    lags = [row["mean_lag_ms"] for row in scaling]
    assert lags[1] >= lags[0] * 0.9
    assert scaling[-1]["mean_lag_ms"] > 10 * scaling[0]["mean_lag_ms"]
