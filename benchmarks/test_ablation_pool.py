"""ABL-POOL — persistent connections ablation (paper §III multiplexing).

"For a database access, database connection and tear-down, which are
required in API model for each access, would be more expensive than
inter-process communication. In the proposed approach, DB brokers
maintain persistent connection thus saving the cost of connection
setup."

Compares per-request connections (the API baseline) against the broker's
pooled persistent connections, on a LAN and on a WAN, for keyed lookups
where connection setup dominates real work.
"""

from __future__ import annotations

from repro import (
    ApiBackendGateway,
    BrokerClient,
    Database,
    DatabaseAdapter,
    DatabaseServer,
    Link,
    Network,
    QoSPolicy,
    ServiceBroker,
    Simulation,
    SummaryStats,
)
from repro.metrics import render_table

from .harness import SEED, print_artifact

N_CALLS = 300


def run_point(link: Link, mode: str):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=link)
    database = Database()
    table = database.create_table("kv", [("k", int), ("v", str)])
    for i in range(5000):
        table.insert((i, f"v{i}"))
    table.create_index("k", "hash")
    db_server = DatabaseServer(sim, net.node("dbhost"), database, max_workers=8)
    web_node = net.node("web")
    times = SummaryStats()
    rng = sim.rng("keys")

    if mode == "api":
        gateway = ApiBackendGateway(sim, web_node)

        def one():
            key = rng.randrange(5000)
            started = sim.now
            yield from gateway.db_query(
                db_server.address, f"SELECT v FROM kv WHERE k = {key}"
            )
            times.add(sim.now - started)

    else:
        broker = ServiceBroker(
            sim,
            web_node,
            service="db",
            adapters=[DatabaseAdapter(sim, web_node, db_server.address)],
            qos=QoSPolicy(levels=1, threshold=1000),
            pool_size=2,
        )
        client = BrokerClient(sim, web_node, {"db": broker.address})

        def one():
            key = rng.randrange(5000)
            started = sim.now
            reply = yield from client.call(
                "db", "query", f"SELECT v FROM kv WHERE k = {key}", cacheable=False
            )
            assert reply.ok
            times.add(sim.now - started)

    def driver():
        for _ in range(N_CALLS):
            yield from one()

    sim.run(sim.process(driver()))
    return {
        "link": "LAN" if link.latency < 0.01 else "WAN",
        "mode": mode,
        "mean_ms": times.mean * 1000,
        "connections": int(db_server.metrics.counter("db.connections")),
    }


def run_sweep():
    rows = []
    for link in (Link.lan(), Link.wan(jitter=0.0)):
        for mode in ("api", "broker"):
            rows.append(run_point(link, mode))
    return rows


def test_ablation_connection_pooling(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact(
        "Ablation — per-request connections (API) vs persistent pool (broker)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    by = {(r["link"], r["mode"]): r for r in rows}
    # The pool wins on both link types...
    assert by[("LAN", "broker")]["mean_ms"] < by[("LAN", "api")]["mean_ms"]
    assert by[("WAN", "broker")]["mean_ms"] < by[("WAN", "api")]["mean_ms"]
    # ...and the saving is dramatically larger over the WAN, where each
    # handshake costs full round trips (the loosely-coupled case).
    lan_saving = by[("LAN", "api")]["mean_ms"] - by[("LAN", "broker")]["mean_ms"]
    wan_saving = by[("WAN", "api")]["mean_ms"] - by[("WAN", "broker")]["mean_ms"]
    assert wan_saving > 10 * lan_saving
    # Connection counts tell the story directly.
    assert by[("WAN", "api")]["connections"] == N_CALLS
    assert by[("WAN", "broker")]["connections"] <= 2
