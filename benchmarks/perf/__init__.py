"""Hot-path performance suite (micro + macro) and its baseline.

The benchmark implementations live in :mod:`repro.bench` so the
``repro bench`` CLI works from an installed package; this directory
holds the committed baseline (``baseline.json``) and the pytest
wrapper that gates regressions in CI.

Run directly::

    python -m repro bench            # full suite (~20 s)
    python -m repro bench --quick    # CI smoke (~3 s)
    python -m repro bench --profile  # + cProfile top-25 of the macro run

or through pytest::

    pytest benchmarks/perf -s
"""
