"""Perf-regression gate: quick suite vs the committed baseline.

Throughput numbers are machine-dependent, so the gate is generous (a
benchmark fails only when it drops more than 30% below baseline) and
the committed baseline should be refreshed whenever the hot path is
deliberately changed::

    python -m repro bench --quick --out /dev/null  # sanity-check first
    python - <<'EOF'
    import json, pathlib
    from repro.bench import run_suite
    baseline = {}
    for quick in (False, True):
        results = run_suite(quick=quick, suite="all")
        baseline[results["mode"]] = {
            b: results[b]
            for b in ("kernel", "pipeline", "macro", "parallel")
        }
    pathlib.Path("benchmarks/perf/baseline.json").write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    EOF

The parallel sweep's *speedup* assertions are core-count aware: wall
clock scaling is physically impossible on a single-core runner (the
sweep still runs there and gates correctness + the serial-point
throughput), so the speedup floor only applies when the host exposes
enough cores. See EXPERIMENTS.md PERF2.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import compare_to_baseline, render_report, run_suite
from repro.sim.parallel import available_workers

BASELINE = Path(__file__).resolve().parent / "baseline.json"


def test_quick_suite_within_regression_budget():
    """The quick suite must stay within 30% of the committed baseline."""
    results = run_suite(quick=True)
    print()
    print(render_report(results))
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    lines = compare_to_baseline(results, baseline, max_regression=0.30)
    for line in lines:
        print(line)
    regressions = [line for line in lines if line.startswith("REGRESSION")]
    assert not regressions, "\n".join(regressions)


def test_macro_reports_wall_percentiles():
    """The macro result document carries p50/p99 wall statistics."""
    results = run_suite(quick=True)
    macro = results["macro"]
    assert macro["wall_p50_s"] <= macro["wall_p99_s"]
    assert macro["requests"] > 0
    assert macro["requests_per_sec"] > 0


def test_kernel_tracks_both_wait_idioms():
    """The kernel point measures float-yield AND timeout spellings."""
    results = run_suite(quick=True, suite="kernel")
    kernel = results["kernel"]
    assert kernel["events_per_sec"] > 0
    assert kernel["timeout_events_per_sec"] > 0


def test_parallel_sweep_within_regression_budget():
    """The parallel suite's serial point gates like the other suites."""
    results = run_suite(quick=True, suite="parallel")
    print()
    print(render_report(results))
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    lines = compare_to_baseline(results, baseline, max_regression=0.30)
    for line in lines:
        print(line)
    regressions = [line for line in lines if line.startswith("REGRESSION")]
    assert not regressions, "\n".join(regressions)

    parallel = results["parallel"]
    assert parallel["points"][0]["workers"] == 1
    assert all(point["pages"] > 0 for point in parallel["points"])
    # Wall-clock speedup needs physical cores; on a multi-core host the
    # forked points must at least not lose to serial. Single-core
    # runners (cores == 1) measure fork + barrier overhead only, so no
    # speedup floor applies there — see EXPERIMENTS.md PERF2.
    if available_workers() >= 4:
        assert parallel["best_speedup"] >= 1.0, parallel


def test_telemetry_overhead_under_two_percent():
    """In-flight scraping must cost <2% of the macro scenario's wall.

    Gates ``scrape_frac`` — the summed ``perf_counter`` wall of every
    ``scrape()`` call divided by the run's wall, min over repeats —
    because differencing two full-run walls (``overhead_frac``) is
    dominated by run-to-run jitter larger than the true overhead. The
    differenced number is still recorded and only sanity-checked
    against gross blowups.
    """
    results = run_suite(quick=True, suite="telemetry")
    print()
    print(render_report(results))
    telemetry = results["telemetry"]
    assert telemetry["scrapes"] > 0
    assert telemetry["scrape_frac"] < 0.02, telemetry
    # Machine-noise tolerance, not the real gate: a quick-mode macro
    # wall is ~0.5 s, so 25% is a few jitter standard deviations while
    # still catching an accidentally quadratic scrape path.
    assert telemetry["overhead_frac"] < 0.25, telemetry
