"""TAB-1 — completed requests per QoS class (paper Table I).

Regenerates Table I: the number of completed requests in each QoS class
(the web server's access-log count) at each client count, in the broker
model, plus the API-baseline totals the paper quotes alongside ("the
numbers of completed requests in API based settings ranged between 740
and 750" — a narrow band, since the API system is throughput-bound).

Expected shape (paper): "since WebStone clients were best-effort based,
with shorter processing time, more number of requests were initiated.
As a result, more requests were processed from lower QoS levels."
"""

from __future__ import annotations

from repro.metrics import render_table

from .harness import CLIENT_COUNTS, print_artifact, qos_sweep


def run_modes():
    return qos_sweep("broker"), qos_sweep("api")


def test_table1_completions_per_class(benchmark):
    broker, api = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    rows = [
        {
            "clients": n,
            "qos1": b.completions[1],
            "qos2": b.completions[2],
            "qos3": b.completions[3],
            "api_total": sum(a.completions.values()),
        }
        for n, b, a in zip(CLIENT_COUNTS, broker, api)
    ]
    print_artifact(
        "Table I — completed requests per QoS class (broker model)",
        render_table(rows),
    )
    benchmark.extra_info["completions"] = {
        str(n): dict(b.completions) for n, b in zip(CLIENT_COUNTS, broker)
    }

    # Light load: no drops, so classes complete comparable counts.
    light = broker[0].completions
    assert max(light.values()) < 2 * min(light.values())

    # Overload: the lower the class, the more (fast, low-fidelity)
    # completions it accumulates.
    heavy = broker[-1].completions
    assert heavy[3] > heavy[2] > heavy[1]
    assert heavy[3] > 5 * heavy[1]

    # The API system is throughput-bound: totals sit in a narrow band
    # regardless of client count (paper: 740-750).
    api_totals = [sum(a.completions.values()) for a in api]
    assert max(api_totals) < 1.5 * min(api_totals)
