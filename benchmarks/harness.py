"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts
(Figure 7, Figure 9, Figure 10, Tables I-IV) or an ablation of a design
choice from DESIGN.md. Results print as aligned text tables so they can
be compared side by side with the paper; EXPERIMENTS.md records the
comparison.

The QoS-differentiation artifacts (FIG-9, FIG-10, TAB-1, TAB-2/3/4) all
derive from the *same* sweep of the §V.B testbed, so sweep points are
memoized here and shared across benchmark modules.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.workload import (
    ClusteringResult,
    QosResult,
    run_clustering_experiment,
    run_qos_experiment,
)

#: Client counts swept in the §V.B experiments (paper: 10..60).
CLIENT_COUNTS: Tuple[int, ...] = (10, 20, 30, 40, 50, 60)

#: Degrees of clustering swept for Figure 7 (paper x-axis: 0..40).
CLUSTERING_DEGREES: Tuple[int, ...] = (1, 2, 4, 5, 8, 10, 16, 20, 30, 40)

#: Virtual seconds each QoS sweep point runs (WebStone run length).
QOS_DURATION = 120.0

#: Seed shared by all benchmark runs (results are fully deterministic).
SEED = 2026


@lru_cache(maxsize=None)
def qos_point(mode: str, n_clients: int) -> QosResult:
    """One memoized point of the §V.B sweep."""
    return run_qos_experiment(
        n_clients, mode=mode, duration=QOS_DURATION, seed=SEED
    )


@lru_cache(maxsize=None)
def clustering_point(degree: int) -> ClusteringResult:
    """One memoized point of the §V.A sweep."""
    return run_clustering_experiment(degree, seed=SEED)


def qos_sweep(mode: str) -> List[QosResult]:
    return [qos_point(mode, n) for n in CLIENT_COUNTS]


def print_artifact(title: str, body: str) -> None:
    """Print one reproduced artifact with a banner (visible with -s)."""
    banner = "=" * max(len(title), 40)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
