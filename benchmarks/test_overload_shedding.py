"""OVERLOAD — goodput under saturation and broker-crash chaos.

Two artifacts:

* **OVERLOAD** — premium (class 1) goodput at 2.5x saturation with a
  bounded, QoS-shedding broker queue versus the unbounded FCFS baseline
  (the paper's binary forward-or-drop testbed). Backpressure must keep
  premium goodput within 10% of the uncontended run while the unbounded
  queue collapses (premium p99 at least 5x worse).
* **CHAOS-SOAK** — the 300 s seeded chaos soak (broker crashes at
  MTBF <= 30 s, link flaps, load spikes) with 2 broker replicas; every
  invariant must hold and availability must stay >= 99%.
"""

from __future__ import annotations

from repro.metrics import render_table
from repro.workload import (
    ChaosResult,
    OverloadResult,
    run_chaos_experiment,
    run_overload_experiment,
)

from .harness import SEED, print_artifact

#: Offered load relative to backend capacity for the saturated points.
SATURATION = 2.5

#: Bounded broker queue capacity and shedding policy under test.
CAPACITY = 40
SHED_POLICY = "drop-lowest"

OVERLOAD_DURATION = 30.0
SOAK_DURATION = 300.0
SOAK_MTBF = 25.0
SOAK_MTTR = 2.0
AVAILABILITY_FLOOR = 0.99


def overload_point(saturation: float, bounded: bool) -> OverloadResult:
    return run_overload_experiment(
        saturation=saturation,
        bounded=bounded,
        capacity=CAPACITY,
        shed_policy=SHED_POLICY,
        duration=OVERLOAD_DURATION,
        seed=SEED,
    )


def overload_row(label: str, result: OverloadResult) -> dict:
    return {
        "config": label,
        "saturation": result.saturation,
        "premium_goodput_rps": round(result.premium_goodput, 2),
        "premium_p99_ms": round(result.premium_p99() * 1000, 1),
        "shed": result.shed,
        "peak_depth": result.peak_depth,
        "bp_engaged": result.backpressure_engaged,
    }


def run_overload_points():
    uncontended = overload_point(0.5, bounded=True)
    bounded = overload_point(SATURATION, bounded=True)
    unbounded = overload_point(SATURATION, bounded=False)
    return uncontended, bounded, unbounded


def test_overload_shedding(benchmark):
    uncontended, bounded, unbounded = benchmark.pedantic(
        run_overload_points, rounds=1, iterations=1
    )
    rows = [
        overload_row("uncontended 0.5x (bounded)", uncontended),
        overload_row(f"bounded {SATURATION:g}x", bounded),
        overload_row(f"unbounded FCFS {SATURATION:g}x", unbounded),
    ]
    print_artifact(
        "OVERLOAD — premium goodput at saturation: bounded QoS shedding "
        f"vs unbounded FCFS (capacity={CAPACITY}, policy={SHED_POLICY})",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    # The bounded queue never exceeds its capacity and actually shed
    # work; backpressure engaged at least once under 2.5x saturation.
    assert bounded.peak_depth <= CAPACITY
    assert bounded.shed > 0
    assert bounded.backpressure_engaged >= 1

    # Premium goodput under 2.5x saturation stays within 10% of the
    # uncontended run: shedding sacrifices the lower classes instead.
    assert bounded.premium_goodput >= 0.9 * uncontended.premium_goodput

    # The unbounded FCFS baseline collapses: the queue grows without
    # bound and premium latency is at least 5x worse than bounded.
    assert unbounded.peak_depth > CAPACITY
    assert unbounded.premium_p99() >= 5.0 * bounded.premium_p99()
    assert unbounded.premium_goodput < bounded.premium_goodput


def run_soak() -> ChaosResult:
    return run_chaos_experiment(
        duration=SOAK_DURATION,
        mtbf=SOAK_MTBF,
        mttr=SOAK_MTTR,
        availability_floor=AVAILABILITY_FLOOR,
        seed=SEED,
    )


def test_chaos_soak(benchmark):
    result = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    rows = [
        {
            "requests": result.requests,
            "ok": result.ok,
            "degraded": result.degraded,
            "timeouts": result.timeouts,
            "failovers": result.failovers,
            "avail_pct": round(100.0 * result.availability, 3),
            "crashes": result.crashes,
            "restarts": result.restarts,
            "replayed": result.replayed,
            "shed": result.shed_total,
            "p99_ms": round(result.latency.percentile(99) * 1000, 1),
        }
    ]
    verdicts = "\n".join(
        f"INVARIANT {check.name:<24} "
        f"{'PASS' if check.passed else 'FAIL'} — {check.detail}"
        for check in result.invariants
    )
    print_artifact(
        f"CHAOS-SOAK — {SOAK_DURATION:g}s, broker MTBF {SOAK_MTBF:g}s, "
        f"MTTR {SOAK_MTTR:g}s, 2 broker replicas",
        render_table(rows) + "\n\n" + verdicts,
    )
    benchmark.extra_info["rows"] = rows

    # The schedule actually produced chaos to survive.
    assert result.crashes >= 5
    assert result.link_faults >= 1
    assert result.spike_requests > 0

    # Every invariant holds: no lost requests, post-crash consistency,
    # queue bound respected, availability floor met.
    for check in result.invariants:
        assert check.passed, f"{check.name}: {check.detail}"
    assert result.availability >= AVAILABILITY_FLOOR

    # Both recovery paths were exercised: supervisor fail-fast on slow
    # crashes and journal replay on sub-detection blips.
    assert result.failed_fast > 0
    assert result.replayed > 0
