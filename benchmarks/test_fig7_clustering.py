"""FIG-7 — request clustering (paper §V.A, Figure 7).

Regenerates the Figure-7 curve: average response time of 40 simultaneous
front-end requests versus the broker's degree of clustering, against a
capacity-5 backend web server whose CGI queries a 42,000-record table.

Expected shape (paper): response time *falls* as clustering reduces the
number of simultaneous backend accesses below the capacity limit,
reaches its minimum near degree ≈ 40/5, then *rises* as the serially
repeated workload dominates.
"""

from __future__ import annotations

from repro.metrics import render_table

from .harness import CLUSTERING_DEGREES, clustering_point, print_artifact


def run_sweep():
    return [clustering_point(degree) for degree in CLUSTERING_DEGREES]


def test_fig7_request_clustering(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        {
            "degree": r.degree,
            "mean_response_ms": r.mean_response_time * 1000,
            "max_response_ms": r.max_response_time * 1000,
            "backend_calls": r.backend_calls,
        }
        for r in results
    ]
    print_artifact(
        "Figure 7 — response time vs degree of clustering "
        "(40 simultaneous requests, backend capacity 5)",
        render_table(rows),
    )

    by_degree = {r.degree: r.mean_response_time for r in results}
    benchmark.extra_info["mean_response_ms_by_degree"] = {
        d: round(t * 1000, 2) for d, t in by_degree.items()
    }

    # Shape assertions: the U-curve of Figure 7.
    assert all(r.errors == 0 for r in results)
    sweet_spot = min(by_degree, key=by_degree.get)
    assert 2 <= sweet_spot <= 16, f"minimum at degree {sweet_spot}, expected mid-range"
    assert by_degree[sweet_spot] < by_degree[1], "clustering must beat no clustering"
    assert by_degree[40] > by_degree[sweet_spot], "over-clustering must hurt"
    # The paper's headline: the benefit is significant (~25%+ at the knee).
    assert by_degree[sweet_spot] < 0.8 * by_degree[1]
