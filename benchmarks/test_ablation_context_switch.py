"""ABL-CSW — amortized context switching (paper §II/§III).

"Accesses to backend servers usually means I/O operations which incur
context switch between heterogeneous codes ... Accesses to backend
servers are done in bulk at service brokers to reduce the number of
context switchings."

Models one front-end host CPU executing the CPU-side work of N backend
accesses (marshalling, socket I/O, result parsing) two ways:

* **API model** — each access belongs to a different server process;
  slices from different processes interleave on the core, so nearly
  every slice pays a context switch.
* **Broker model** — the broker performs the same slices in bulk from
  one process, paying (almost) no switches.

Total useful work is identical; the measured difference is pure
switching overhead, plus its queueing amplification.
"""

from __future__ import annotations

from repro.sim import HostCpu, Simulation
from repro.metrics import render_table

from .harness import SEED, print_artifact

N_ACCESSES = 200
SLICES_PER_ACCESS = 4
SLICE_TIME = 0.0002  # 200 us of CPU per slice
SWITCH_COST = 0.0001  # 100 us per context switch (2003-era, cache refill)


def run_point(mode: str):
    sim = Simulation(seed=SEED)
    cpu = HostCpu(sim, context_switch_cost=SWITCH_COST)
    rng = sim.rng("io")

    if mode == "api":
        # One process per access, all interleaving on the core.
        def access(i):
            for _ in range(SLICES_PER_ACCESS):
                yield from cpu.run(f"process-{i}", SLICE_TIME)
                yield sim.timeout(rng.uniform(0.0001, 0.0005))  # I/O wait

        processes = [sim.process(access(i)) for i in range(N_ACCESSES)]
        sim.run(sim.all_of(processes))
    else:
        # The broker executes accesses in bulk batches from one process.
        def broker():
            for batch_start in range(0, N_ACCESSES, 10):
                for i in range(batch_start, batch_start + 10):
                    for _ in range(SLICES_PER_ACCESS):
                        yield from cpu.run("broker", SLICE_TIME)
                yield sim.timeout(rng.uniform(0.0001, 0.0005))  # batched I/O

        sim.run(sim.process(broker()))

    useful = N_ACCESSES * SLICES_PER_ACCESS * SLICE_TIME
    return {
        "mode": mode,
        "completion_ms": sim.now * 1000,
        "switches": cpu.switches,
        "switch_overhead_ms": cpu.switches * SWITCH_COST * 1000,
        "useful_work_ms": useful * 1000,
    }


def run_sweep():
    return [run_point("api"), run_point("broker")]


def test_ablation_context_switching(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact(
        "Ablation — context switching: interleaved API processes vs "
        "bulk broker processing (same useful work)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    api, broker = rows
    assert api["useful_work_ms"] == broker["useful_work_ms"]
    # The API model switches on a large share of its slices...
    assert api["switches"] > 0.5 * N_ACCESSES * SLICES_PER_ACCESS
    # ...the broker almost never does.
    assert broker["switches"] <= 1
    # And the switching overhead shows up as real completion-time loss.
    assert broker["completion_ms"] < api["completion_ms"]
