"""ABL-PF — prefetching ablation (paper §III, news-headline example).

"A news provider website periodically updates the online headlines.
Service brokers can be synchronized to prefetch them when the server
load is not high. So the requests for the news can be served
immediately without accessing the backend servers."

A WAN news provider regenerates headlines every 10 s; readers poll at
~8 req/s. Compares no cache / cache only / cache + prefetch.
"""

from __future__ import annotations

from repro import (
    BackendWebServer,
    BrokerClient,
    HttpAdapter,
    Link,
    Network,
    Prefetcher,
    PrefetchRule,
    QoSPolicy,
    ResultCache,
    ServiceBroker,
    Simulation,
    SummaryStats,
)
from repro.metrics import render_table

from .harness import SEED, print_artifact

HEADLINE_PERIOD = 10.0
DURATION = 120.0


def run_point(mode: str):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.wan(latency=0.06, jitter=0.01))
    web_node = net.node("portal")
    provider_node = net.node("news")
    server = BackendWebServer(sim, provider_node, max_clients=4)
    edition = {"n": 0}

    def headlines_cgi(server, request):
        yield server.sim.timeout(0.08)  # render the headline page
        return f"edition-{edition['n']}"

    server.add_cgi("/headlines", headlines_cgi)

    def editor():
        while True:
            yield sim.timeout(HEADLINE_PERIOD)
            edition["n"] += 1

    sim.process(editor())

    cache = None
    if mode != "no-cache":
        # TTL matches the edition period: entries go stale exactly when
        # new headlines appear.
        cache = ResultCache(capacity=16, ttl=HEADLINE_PERIOD, clock=lambda: sim.now)
    broker = ServiceBroker(
        sim,
        web_node,
        service="news",
        adapters=[HttpAdapter(sim, web_node, server.address)],
        qos=QoSPolicy(levels=1, threshold=1000),
        cache=cache,
        pool_size=2,
    )
    client = BrokerClient(sim, web_node, {"news": broker.address})
    cache_key = "news:get:('/headlines', {})"
    if mode == "prefetch":
        Prefetcher(
            broker,
            [
                PrefetchRule(
                    operation="get",
                    payload=("/headlines", {}),
                    cache_key=cache_key,
                    period=HEADLINE_PERIOD,
                    ttl=HEADLINE_PERIOD,
                )
            ],
            idle_threshold=1,
        )
    times = SummaryStats()

    def reader():
        started = sim.now
        reply = yield from client.call("news", "get", ("/headlines", {}))
        assert reply.ok
        times.add(sim.now - started)

    def driver():
        rng = sim.rng("arrivals")
        while sim.now < DURATION:
            yield sim.timeout(rng.expovariate(8.0))
            sim.process(reader())

    sim.process(driver())
    sim.run(until=DURATION + 5)
    return {
        "mode": mode,
        "mean_ms": times.mean * 1000,
        "p95_ms": times.p95 * 1000,
        "backend_fetches": int(server.metrics.counter("http.requests")),
        "cache_replies": int(broker.metrics.counter("broker.cache_replies")),
    }


def run_sweep():
    return [run_point(mode) for mode in ("no-cache", "cache", "prefetch")]


def test_ablation_prefetching(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact("Ablation — prefetching periodic headlines over a WAN",
                   render_table(rows))
    benchmark.extra_info["rows"] = rows

    by = {r["mode"]: r for r in rows}
    assert by["cache"]["mean_ms"] < by["no-cache"]["mean_ms"]
    # Prefetch removes the cold-miss spikes the plain cache still pays
    # after every edition change: better mean, no worse tail, and fewer
    # reader-facing backend trips.
    assert by["prefetch"]["mean_ms"] < by["cache"]["mean_ms"]
    assert by["prefetch"]["p95_ms"] <= by["cache"]["p95_ms"]
    assert by["prefetch"]["backend_fetches"] <= by["cache"]["backend_fetches"]
    # Reader-facing backend traffic collapses to ~1 fetch per edition.
    assert by["prefetch"]["backend_fetches"] < 0.1 * by["no-cache"]["backend_fetches"]
