"""CACHE — the cross-request optimization tier at 10x the §V.B scale.

Runs the 600-client testbed (ten times the paper's §V.B maximum of 60)
twice at the same seed: once with only per-broker result caches, once
with the shared cache tier, cross-broker query combining, and the
materialized view enabled. Reports backend statement counts, cache hit
ratios, and latency for both modes.

Expected: the shared tier cuts backend load by at least 2x over
single-broker caching — a popular result is fetched once for the whole
deployment instead of once per broker, and the grouped-aggregate view
absorbs the COUNT(*) shape entirely.
"""

from __future__ import annotations

from repro.metrics import render_table
from repro.workload import run_cache_tier_experiment

from .harness import SEED, print_artifact

N_CLIENTS = 600
BROKERS = 4
DURATION = 30.0


def run_modes():
    return {
        enabled: run_cache_tier_experiment(
            n_clients=N_CLIENTS,
            brokers=BROKERS,
            duration=DURATION,
            tier=enabled,
            seed=SEED,
        )
        for enabled in (False, True)
    }


def test_cache_tier_backend_load_reduction(benchmark):
    runs = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    base, tier = runs[False], runs[True]
    reduction = base.backend_queries / max(tier.backend_queries, 1)
    rows = [
        {
            "mode": "shared-tier" if r.tier_enabled else "local-caches",
            "requests": r.requests,
            "ok": r.ok,
            "backend_q": r.backend_queries,
            "cache_srv_pct": round(100.0 * r.cache_served_ratio, 1),
            "tier_hits": r.tier_hits,
            "view_hits": r.view_hits,
            "mean_ms": round(r.latency.mean * 1000, 2),
            "p99_ms": round(r.latency.p99 * 1000, 2),
        }
        for r in (base, tier)
    ]
    print_artifact(
        f"CACHE — cross-request optimization tier "
        f"({N_CLIENTS} clients, {BROKERS} brokers, reduction {reduction:.2f}x)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["reduction"] = reduction

    assert base.errors == 0 and tier.errors == 0
    # Acceptance bar: >= 2x backend-load reduction over per-broker caching.
    assert reduction >= 2.0, (
        f"shared tier should at least halve backend load, got {reduction:.2f}x"
    )
    # The tier serves the bulk of local misses once warm.
    assert tier.tier_hit_ratio > 0.5
    # The materialized view absorbed the aggregate shape.
    assert tier.view_hits > 0
    # Write-behind drained (overflowed writes fell back to write-through).
    assert tier.write_behind_flushed > 0
