"""ABL-DISK — clustering by disk layout at the file server (paper §II).

"The file servers may cluster requests whose accesses are in adjacent
disk layout" — the backend-specific QoS notion the paper uses to argue
that heterogeneous backends need per-service brokers rather than one
end-to-end QoS scheme.

Concurrent reads of fragmented files under three configurations:

* FCFS disk scheduling, per-request dispatch (no layout awareness);
* elevator (C-SCAN) disk scheduling, per-request dispatch;
* elevator scheduling + broker-side read batching
  (:class:`FileBatchCombiner`), giving the sweep a full queue to order.
"""

from __future__ import annotations

from typing import Optional

from repro import (
    BrokerClient,
    ClusteringConfig,
    FileAdapter,
    FileBatchCombiner,
    Link,
    Network,
    QoSPolicy,
    ServiceBroker,
    Simulation,
    SummaryStats,
)
from repro.fileserver import FileServer, FileSystem
from repro.metrics import render_table

from .harness import SEED, print_artifact

N_FILES = 60
WAVES = 6
READS_PER_WAVE = 20


def run_point(scheduler: str, batching: bool):
    sim = Simulation(seed=SEED)
    net = Network(sim, default_link=Link.lan())
    fs = FileSystem(total_blocks=200_000)
    layout_rng = sim.rng("layout")
    for i in range(N_FILES):
        fs.create(f"doc{i}", 16, fragmented=True, extent_size=16, rng=layout_rng)
    server = FileServer(sim, net.node("nfs"), filesystem=fs, scheduler=scheduler)
    node = net.node("web")
    clustering: Optional[ClusteringConfig] = None
    if batching:
        clustering = ClusteringConfig(
            combiner=FileBatchCombiner(), max_batch=READS_PER_WAVE, window=0.002
        )
    broker = ServiceBroker(
        sim,
        node,
        service="files",
        adapters=[FileAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=1, threshold=1000),
        clustering=clustering,
        # Enough concurrency that the disk scheduler sees a real queue.
        dispatchers=10,
        pool_size=10,
    )
    client = BrokerClient(sim, node, {"files": broker.address})
    times = SummaryStats()

    def one(name):
        started = sim.now
        reply = yield from client.call("files", "read", name, cacheable=False)
        assert reply.ok
        times.add(sim.now - started)

    def driver():
        pick = sim.rng("picks")
        for _wave in range(WAVES):
            for _ in range(READS_PER_WAVE):
                sim.process(one(f"doc{pick.randrange(N_FILES)}"))
            yield sim.timeout(2.0)  # wave spacing

    sim.process(driver())
    sim.run()
    return {
        "config": f"{scheduler}{'+batch' if batching else ''}",
        "mean_ms": times.mean * 1000,
        "p95_ms": times.p95 * 1000,
        "seek_travel_blocks": server.disk.total_seek_distance,
        "reads": int(server.metrics.counter("file.reads")),
    }


def run_sweep():
    return [
        run_point("fcfs", batching=False),
        run_point("elevator", batching=False),
        run_point("elevator", batching=True),
    ]


def test_ablation_disk_layout_clustering(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_artifact(
        "Ablation — disk-layout clustering: FCFS vs elevator vs "
        "elevator + broker batching (fragmented files)",
        render_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    fcfs, elevator, batched = rows
    assert fcfs["reads"] == elevator["reads"] == batched["reads"]
    # The elevator shortens head travel...
    assert elevator["seek_travel_blocks"] < fcfs["seek_travel_blocks"]
    # ...and broker batching, which hands the sweep the whole wave at
    # once, shortens it further. (Batching trades a little per-request
    # waiting for disk efficiency, so the win shows in travel and tail,
    # not necessarily in the mean.)
    assert batched["seek_travel_blocks"] <= elevator["seek_travel_blocks"]
    assert batched["p95_ms"] <= fcfs["p95_ms"] * 1.05
