"""FIG-10 — per-QoS-class processing time (paper Figure 10).

Regenerates the Figure-10 curves: mean processing time of each QoS class
versus the number of clients, in the distributed broker model, with the
API baseline alongside for reference (as in the paper's figure).

Expected shape (paper): every class's curve rises and then declines;
"requests with higher QoS level experienced longer processing time,
which means that the fidelity of the response is higher" — the peak of
class 1 is the highest and occurs at the highest load, class 3's peak is
the lowest and earliest.
"""

from __future__ import annotations

from repro.metrics import render_table

from .harness import CLIENT_COUNTS, print_artifact, qos_sweep


def run_modes():
    return qos_sweep("broker"), qos_sweep("api")


def test_fig10_processing_time_per_class(benchmark):
    broker, api = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    rows = [
        {
            "clients": n,
            "qos1_s": b.mean_response_of(1),
            "qos2_s": b.mean_response_of(2),
            "qos3_s": b.mean_response_of(3),
            "api_s": a.mean_response_time,
        }
        for n, b, a in zip(CLIENT_COUNTS, broker, api)
    ]
    print_artifact(
        "Figure 10 — mean processing time (s) per QoS class vs clients",
        render_table(rows),
    )
    for level in (1, 2, 3):
        benchmark.extra_info[f"qos{level}_seconds"] = [
            round(r.mean_response_of(level), 2) for r in broker
        ]

    curves = {
        level: [r.mean_response_of(level) for r in broker] for level in (1, 2, 3)
    }
    peaks = {level: max(curve) for level, curve in curves.items()}
    peak_load = {
        level: CLIENT_COUNTS[curve.index(max(curve))]
        for level, curve in curves.items()
    }

    # Peak fidelity (processing time) ordered by priority.
    assert peaks[1] > peaks[3], "class 1 sustains the highest processing time"
    # Low classes collapse (decline) earlier than high classes.
    assert peak_load[3] <= peak_load[2] <= peak_load[1]
    # Class 3 declines: its final point is well below its peak.
    assert curves[3][-1] < 0.5 * peaks[3]
    # At the lightest load all classes receive identical full service.
    first = [curves[level][0] for level in (1, 2, 3)]
    assert max(first) - min(first) < 0.5
