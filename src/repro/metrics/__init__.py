"""Metrics: online statistics, counters, histograms, report rendering."""

from .collector import Counter, MetricsRegistry
from .histogram import DEFAULT_LATENCY_EDGES, LatencyHistogram
from .report import (
    format_cell,
    render_histogram,
    render_histograms,
    render_series,
    render_table,
)
from .stats import SummaryStats

__all__ = [
    "MetricsRegistry",
    "Counter",
    "SummaryStats",
    "LatencyHistogram",
    "DEFAULT_LATENCY_EDGES",
    "render_table",
    "render_series",
    "render_histograms",
    "render_histogram",
    "format_cell",
]
