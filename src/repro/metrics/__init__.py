"""Metrics: online statistics, counters, and report rendering."""

from .collector import Counter, MetricsRegistry
from .report import format_cell, render_series, render_table
from .stats import SummaryStats

__all__ = [
    "MetricsRegistry",
    "Counter",
    "SummaryStats",
    "render_table",
    "render_series",
    "format_cell",
]
