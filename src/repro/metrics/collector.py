"""Hierarchical metrics registry: counters and timing samples.

Components record into a shared :class:`MetricsRegistry` using dotted
names (``"broker.db.dropped.qos3"``). The registry is deliberately
simulation-agnostic — callers pass the timestamp where one is relevant —
so the same registry serves unit tests and full experiments.

Two access styles coexist:

* **By name** — ``increment(name)`` / ``observe(name, value)``: one dict
  lookup per call. Fine for cold paths and tests.
* **By handle** — ``handle(name)`` returns the underlying
  :class:`Counter` once; hot paths keep it and call ``.inc()``, which is
  a plain attribute add with no string hashing. ``sample_handle(name)``
  does the same for :class:`~repro.metrics.stats.SummaryStats` (call
  ``.add(value)`` directly). The stage pipeline and the network layer
  pre-resolve their handles at construction time (see
  ``DESIGN.md`` §Performance).

``counters(prefix)`` / ``samples(prefix)`` use a lazily maintained
sorted-name index, so reporting loops that repeatedly filter by prefix
cost ``O(log n + matches)`` instead of a scan over every metric ever
recorded.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple, Union

from .histogram import LatencyHistogram
from .stats import SummaryStats

__all__ = ["MetricsRegistry", "Counter", "DEFAULT_EVENT_CAPACITY"]

#: Default ring-buffer length for :meth:`MetricsRegistry.record_event`.
DEFAULT_EVENT_CAPACITY = 4096


class Counter:
    """A single named counter, usable as a zero-hash hot-path handle.

    Obtained from :meth:`MetricsRegistry.handle`; ``inc`` adds to the
    value without touching the registry's name table.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def inc(self, by: float = 1.0) -> None:
        """Add *by* to the counter."""
        self.value += by

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class MetricsRegistry:
    """Named counters and samples.

    * ``increment(name, by)`` — monotonically counts events.
    * ``observe(name, value)`` — accumulates a :class:`SummaryStats` sample.
    * ``handle(name)`` / ``sample_handle(name)`` — pre-resolved hot-path
      handles (no per-call string hashing).
    * ``record_event(name, time)`` — keeps a bounded ring buffer of raw
      time-stamped events (for time-series inspection); call
      :meth:`retain_events` to opt a name into unbounded retention.
    """

    __slots__ = (
        "_counters",
        "_samples",
        "_histograms",
        "_events",
        "_event_capacity",
        "_retained",
        "_counter_index",
        "_sample_index",
    )

    def __init__(self, event_capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if event_capacity < 1:
            raise ValueError(f"event_capacity must be >= 1: {event_capacity!r}")
        self._counters: Dict[str, Counter] = {}
        self._samples: Dict[str, SummaryStats] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._events: Dict[str, Union[Deque[float], List[float]]] = {}
        self._event_capacity = event_capacity
        self._retained: Set[str] = set()
        # Sorted-name indexes for prefix queries; None marks them stale
        # (rebuilt lazily on the next prefix lookup).
        self._counter_index: Optional[List[str]] = None
        self._sample_index: Optional[List[str]] = None

    # -- counters ------------------------------------------------------

    def handle(self, name: str) -> Counter:
        """The :class:`Counter` for *name*, created on first use.

        Hot paths resolve the handle once and call ``.inc()`` on it;
        the registry sees the updated value through the shared object.
        """
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
            self._counter_index = None
        return counter

    def increment(self, name: str, by: float = 1.0) -> None:
        """Add *by* to the counter *name*."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
            self._counter_index = None
        counter.value += by

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose name starts with *prefix*.

        Uses the sorted-name index: cost is ``O(log n + matches)``, not
        a scan over every counter in the registry.
        """
        counters = self._counters
        if not prefix:
            return {name: counter.value for name, counter in counters.items()}
        index = self._counter_index
        if index is None:
            index = self._counter_index = sorted(counters)
        result: Dict[str, float] = {}
        for i in range(bisect_left(index, prefix), len(index)):
            name = index[i]
            if not name.startswith(prefix):
                break
            result[name] = counters[name].value
        return result

    # -- samples -------------------------------------------------------

    def sample_handle(self, name: str) -> SummaryStats:
        """The :class:`SummaryStats` for *name*, created on first use.

        The stats object doubles as the hot-path handle: keep it and
        call ``.add(value)`` directly.
        """
        stats = self._samples.get(name)
        if stats is None:
            stats = SummaryStats()
            self._samples[name] = stats
            self._sample_index = None
        return stats

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the sample *name*."""
        stats = self._samples.get(name)
        if stats is None:
            stats = SummaryStats()
            self._samples[name] = stats
            self._sample_index = None
        stats.add(value)

    def sample(self, name: str) -> SummaryStats:
        """The sample for *name* (an empty one if nothing was observed)."""
        return self._samples.get(name, SummaryStats())

    def samples(self, prefix: str = "") -> Dict[str, SummaryStats]:
        """All samples whose name starts with *prefix* (indexed lookup)."""
        samples = self._samples
        if not prefix:
            return dict(samples)
        index = self._sample_index
        if index is None:
            index = self._sample_index = sorted(samples)
        result: Dict[str, SummaryStats] = {}
        for i in range(bisect_left(index, prefix), len(index)):
            name = index[i]
            if not name.startswith(prefix):
                break
            result[name] = samples[name]
        return result

    # -- histograms ----------------------------------------------------

    def histogram_handle(
        self, name: str, edges: Optional[List[float]] = None
    ) -> LatencyHistogram:
        """The :class:`~repro.metrics.histogram.LatencyHistogram` for
        *name*, created on first use.

        Like :meth:`sample_handle`, the histogram object doubles as the
        hot-path handle: keep it and call ``.add(value)`` directly.
        *edges* only applies on creation; later callers share whatever
        bucket layout the first caller chose.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = LatencyHistogram(edges)
            self._histograms[name] = histogram
        return histogram

    def histogram(self, name: str) -> LatencyHistogram:
        """The histogram for *name* (an empty one if never recorded)."""
        histogram = self._histograms.get(name)
        return histogram if histogram is not None else LatencyHistogram()

    def histograms(self, prefix: str = "") -> Dict[str, LatencyHistogram]:
        """All histograms whose name starts with *prefix*, sorted by name.

        Histograms are few (one per instrumented stage/class/backend),
        so this is a plain scan — no index like the counter/sample maps.
        """
        return {
            name: self._histograms[name]
            for name in sorted(self._histograms)
            if name.startswith(prefix)
        }

    # -- raw events ----------------------------------------------------

    def retain_events(self, *names: str) -> None:
        """Opt *names* into unbounded event retention.

        By default :meth:`record_event` keeps only the most recent
        ``event_capacity`` timestamps per name (a ring buffer), so
        long experiments cannot grow without bound. Reports and tests
        that need the full time series opt in per name — existing ring
        contents are preserved on conversion.
        """
        for name in names:
            self._retained.add(name)
            existing = self._events.get(name)
            if isinstance(existing, deque):
                self._events[name] = list(existing)

    def record_event(self, name: str, time: float) -> None:
        """Append a raw timestamped event under *name* (ring-buffered)."""
        series = self._events.get(name)
        if series is None:
            if name in self._retained:
                series = []
            else:
                series = deque(maxlen=self._event_capacity)
            self._events[name] = series
        series.append(time)

    def events(self, name: str) -> List[float]:
        """The timestamps recorded under *name* (oldest retained first)."""
        series = self._events.get(name)
        return list(series) if series is not None else []

    # -- misc ----------------------------------------------------------

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counter(numerator) / counter(denominator)``, 0 when empty."""
        denom = self.counter(denominator)
        return self.counter(numerator) / denom if denom else 0.0

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(
            sorted((name, c.value) for name, c in self._counters.items())
        )

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"samples={len(self._samples)}>"
        )
