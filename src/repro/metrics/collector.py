"""Hierarchical metrics registry: counters and timing samples.

Components record into a shared :class:`MetricsRegistry` using dotted
names (``"broker.db.dropped.qos3"``). The registry is deliberately
simulation-agnostic — callers pass the timestamp where one is relevant —
so the same registry serves unit tests and full experiments.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

from .stats import SummaryStats

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters and samples.

    * ``increment(name, by)`` — monotonically counts events.
    * ``observe(name, value)`` — accumulates a :class:`SummaryStats` sample.
    * ``record_event(name, time)`` — keeps a raw time-stamped event list
      (for time-series inspection in tests and reports).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._samples: Dict[str, SummaryStats] = {}
        self._events: Dict[str, List[float]] = defaultdict(list)

    # -- counters ------------------------------------------------------

    def increment(self, name: str, by: float = 1.0) -> None:
        """Add *by* to the counter *name*."""
        self._counters[name] += by

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose name starts with *prefix*."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    # -- samples -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the sample *name*."""
        stats = self._samples.get(name)
        if stats is None:
            stats = SummaryStats()
            self._samples[name] = stats
        stats.add(value)

    def sample(self, name: str) -> SummaryStats:
        """The sample for *name* (an empty one if nothing was observed)."""
        return self._samples.get(name, SummaryStats())

    def samples(self, prefix: str = "") -> Dict[str, SummaryStats]:
        """All samples whose name starts with *prefix*."""
        return {
            name: stats
            for name, stats in self._samples.items()
            if name.startswith(prefix)
        }

    # -- raw events ----------------------------------------------------

    def record_event(self, name: str, time: float) -> None:
        """Append a raw timestamped event under *name*."""
        self._events[name].append(time)

    def events(self, name: str) -> List[float]:
        """The timestamps recorded under *name*."""
        return list(self._events.get(name, []))

    # -- misc ----------------------------------------------------------

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counter(numerator) / counter(denominator)``, 0 when empty."""
        denom = self.counter(denominator)
        return self.counter(numerator) / denom if denom else 0.0

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"samples={len(self._samples)}>"
        )
