"""Fixed-bucket latency histograms.

:class:`~repro.metrics.stats.SummaryStats` keeps every observation so it
can answer exact percentiles; that is the right trade-off for experiment
results but not for always-on observability, where a single run records
millions of latencies across dozens of metric names.
:class:`LatencyHistogram` is the constant-memory complement: a fixed set
of log-spaced bucket boundaries (default ``DEFAULT_LATENCY_EDGES``,
100 µs – 100 s in a 1-2-5 progression), an overflow bucket, and
quantile estimates (p50/p90/p99/p999) by linear interpolation inside
the covering bucket, clamped to the observed min/max so single-bucket
distributions report exact values.

Bucket semantics: bucket *i* counts values ``edges[i-1] < v <=
edges[i]`` — a value landing exactly on a boundary belongs to the
bucket whose upper edge it is. Values above the last edge go to the
overflow bucket; quantiles that fall in the overflow bucket report the
observed maximum.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

__all__ = ["LatencyHistogram", "DEFAULT_LATENCY_EDGES"]

#: Default bucket upper edges in seconds: a 1-2-5 progression per decade
#: from 100 µs to 100 s (19 buckets plus the overflow bucket).
DEFAULT_LATENCY_EDGES: Tuple[float, ...] = tuple(
    base * scale
    for base in (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for scale in (1.0, 2.0, 5.0)
) + (100.0,)

_NAN = float("nan")


class LatencyHistogram:
    """A fixed-bucket histogram with interpolated quantiles.

    Memory is ``O(len(edges))`` regardless of how many values are
    added; ``add`` costs one binary search over the (small) edge list.
    """

    __slots__ = ("edges", "counts", "overflow", "count", "total", "_min", "_max")

    def __init__(self, edges: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(edges) if edges is not None else DEFAULT_LATENCY_EDGES
        if not chosen:
            raise ValueError("at least one bucket edge is required")
        if any(b <= a for a, b in zip(chosen, chosen[1:])):
            raise ValueError(f"edges must be strictly increasing: {chosen!r}")
        self.edges: Tuple[float, ...] = chosen
        self.counts: List[int] = [0] * len(chosen)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self._min = _NAN
        self._max = _NAN

    def add(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.edges, value)
        if index == len(self.edges):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.count += 1
        self.total += value
        if not (self._min <= value):  # also true on the first add (NaN)
            self._min = value
        if not (self._max >= value):
            self._max = value

    # -- summary values ------------------------------------------------

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else _NAN

    @property
    def minimum(self) -> float:
        """Smallest observed value (NaN when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observed value (NaN when empty)."""
        return self._max

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (``0 <= q <= 100``), NaN when empty.

        Linear interpolation between the covering bucket's edges,
        clamped to the observed min/max; quantiles falling in the
        overflow bucket report the observed maximum.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q!r}")
        if self.count == 0:
            return _NAN
        target = (q / 100.0) * self.count
        if target <= 0:
            return self._min
        cumulative = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count:
                reached = cumulative + bucket_count
                if reached >= target:
                    upper = self.edges[index]
                    fraction = (target - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
                cumulative = reached
            lower = self.edges[index]
        return self._max  # target falls in the overflow bucket

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.percentile(90.0)

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        """99.9th-percentile estimate."""
        return self.percentile(99.9)

    # -- combination ---------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram holding this one's observations plus *other*'s.

        Both histograms must share the exact same bucket edges — merged
        counts are meaningless otherwise, so a mismatch raises
        :class:`ValueError` instead of silently re-bucketing. Neither
        operand is mutated; the parallel experiment driver uses this to
        combine per-worker-slice histograms into fleet-wide percentiles
        (mirroring :meth:`SummaryStats.merge
        <repro.metrics.stats.SummaryStats.merge>`).
        """
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{len(self.edges)} vs {len(other.edges)} buckets"
            )
        merged = LatencyHistogram(self.edges)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.overflow = self.overflow + other.overflow
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        for value in (self._min, other._min):
            # Skip NaN (an empty operand) without poisoning the result.
            if value == value and not (merged._min <= value):
                merged._min = value
        for value in (self._max, other._max):
            if value == value and not (merged._max >= value):
                merged._max = value
        return merged

    # -- inspection ----------------------------------------------------

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_edge, count)`` pairs; the overflow bucket reports
        ``float('inf')`` as its edge."""
        pairs = list(zip(self.edges, self.counts))
        pairs.append((float("inf"), self.overflow))
        return pairs

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"<LatencyHistogram n={self.count} "
            f"buckets={len(self.edges)}+overflow>"
        )
