"""Online summary statistics.

:class:`SummaryStats` accumulates observations one at a time and exposes
count/mean/variance (Welford's algorithm) plus exact percentiles (the
sample is retained; experiment sample sizes here are small enough that
exactness beats a sketch).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

__all__ = ["SummaryStats"]


class SummaryStats:
    """Accumulates numeric observations and summarizes them.

    >>> s = SummaryStats()
    >>> for v in [1.0, 2.0, 3.0]:
    ...     s.add(v)
    >>> s.mean
    2.0
    """

    def __init__(self, values: Optional[Iterable[float]] = None) -> None:
        self._values: List[float] = []
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        if values is not None:
            for value in values:
                self.add(value)

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._values.append(value)
        n = len(self._values)
        delta = value - self._mean
        self._mean += delta / n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Return a new :class:`SummaryStats` over both samples."""
        return SummaryStats(self._values + other._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Sample mean; ``nan`` when empty."""
        return self._mean if self._values else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance; ``nan`` with fewer than 2 samples."""
        n = len(self._values)
        return self._m2 / (n - 1) if n > 1 else math.nan

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._values else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._values else math.nan

    def percentile(self, q: float) -> float:
        """Exact percentile with linear interpolation; *q* in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q!r}")
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return ordered[lower]
        frac = rank - lower
        return ordered[lower] * (1.0 - frac) + ordered[upper] * frac

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def values(self) -> List[float]:
        """A copy of the raw sample, in insertion order."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        if not self._values:
            return "<SummaryStats empty>"
        return (
            f"<SummaryStats n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}>"
        )
