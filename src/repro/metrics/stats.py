"""Online summary statistics.

:class:`SummaryStats` accumulates observations one at a time and exposes
count/mean/variance (Welford's algorithm) plus exact percentiles (the
sample is retained; experiment sample sizes here are small enough that
exactness beats a sketch).

``add`` sits on the simulator's hot path (every response time and stage
latency lands here), so it only appends to the sample; the Welford
moments and min/max are folded in lazily, on first read, by replaying
the exact same recurrence over the retained values. Replaying the
identical sequence of float operations makes the lazy results
bit-for-bit equal to eager accumulation.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

__all__ = ["SummaryStats"]


class SummaryStats:
    """Accumulates numeric observations and summarizes them.

    >>> s = SummaryStats()
    >>> for v in [1.0, 2.0, 3.0]:
    ...     s.add(v)
    >>> s.mean
    2.0
    """

    __slots__ = ("_values", "_mean", "_m2", "_min", "_max", "_reduced")

    def __init__(self, values: Optional[Iterable[float]] = None) -> None:
        self._values: List[float] = []
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: How many leading values are folded into the moments already.
        self._reduced = 0
        if values is not None:
            for value in values:
                self._values.append(float(value))

    def add(self, value: float) -> None:
        """Record one observation (hot path: just an append)."""
        self._values.append(float(value))

    def _reduce(self) -> None:
        """Fold not-yet-seen observations into the running moments."""
        values = self._values
        n = len(values)
        index = self._reduced
        if index == n:
            return
        mean = self._mean
        m2 = self._m2
        minimum = self._min
        maximum = self._max
        while index < n:
            value = values[index]
            index += 1
            delta = value - mean
            mean += delta / index
            m2 += delta * (value - mean)
            if value < minimum:
                minimum = value
            if value > maximum:
                maximum = value
        self._mean = mean
        self._m2 = m2
        self._min = minimum
        self._max = maximum
        self._reduced = n

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Return a new :class:`SummaryStats` over both samples."""
        return SummaryStats(self._values + other._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Sample mean; ``nan`` when empty."""
        if not self._values:
            return math.nan
        self._reduce()
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance; ``nan`` with fewer than 2 samples."""
        n = len(self._values)
        if n <= 1:
            return math.nan
        self._reduce()
        return self._m2 / (n - 1)

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        if not self._values:
            return math.nan
        self._reduce()
        return self._min

    @property
    def maximum(self) -> float:
        if not self._values:
            return math.nan
        self._reduce()
        return self._max

    def percentile(self, q: float) -> float:
        """Exact percentile with linear interpolation; *q* in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q!r}")
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return ordered[lower]
        frac = rank - lower
        lo = ordered[lower]
        hi = ordered[upper]
        if lo == hi:
            return lo
        result = lo * (1.0 - frac) + hi * frac
        # Interpolating subnormal values can underflow below the
        # bracketing order statistics; clamp so the percentile always
        # lies within [lo, hi] (and hence within [minimum, maximum]).
        if result < lo:
            return lo
        if result > hi:
            return hi
        return result

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def values(self) -> List[float]:
        """A copy of the raw sample, in insertion order."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        if not self._values:
            return "<SummaryStats empty>"
        return (
            f"<SummaryStats n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}>"
        )
