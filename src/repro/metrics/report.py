"""Plain-text table rendering for the benchmark harness.

The paper's evaluation consists of small tables and x/y series; these
helpers render them with aligned columns so benchmark output can be
compared side by side with the paper's tables. The observability layer
adds latency-distribution views: :func:`render_histograms` summarizes a
set of :class:`~repro.metrics.histogram.LatencyHistogram` objects as a
p50/p90/p99/p99.9 table and :func:`render_histogram` shows one
histogram's bucket shape as ASCII bars.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence

from .histogram import LatencyHistogram

__all__ = [
    "render_table",
    "render_series",
    "render_histograms",
    "render_histogram",
    "format_cell",
]


def format_cell(value: Any) -> str:
    """Render one table cell: floats get 4 significant digits."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render *rows* (list of dicts) as an aligned text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = list(columns)
    body: List[List[str]] = [
        [format_cell(row.get(col, "")) for col in header] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histograms(
    histograms: Mapping[str, LatencyHistogram],
    title: str = "",
    scale: float = 1000.0,
    unit: str = "ms",
) -> str:
    """Render named histograms as one quantile table.

    Values are multiplied by *scale* (default: seconds → milliseconds);
    empty histograms render their quantile cells as ``-``.
    """
    rows = [
        {
            "name": name,
            "count": hist.count,
            f"p50_{unit}": hist.p50 * scale,
            f"p90_{unit}": hist.p90 * scale,
            f"p99_{unit}": hist.p99 * scale,
            f"p99.9_{unit}": hist.p999 * scale,
            f"max_{unit}": hist.maximum * scale,
        }
        for name, hist in histograms.items()
    ]
    return render_table(rows, title=title)


def render_histogram(
    hist: LatencyHistogram,
    width: int = 40,
    scale: float = 1000.0,
    unit: str = "ms",
) -> str:
    """Render one histogram's non-empty buckets as ASCII bars."""
    if hist.count == 0:
        return "(empty histogram)"
    peak = max(count for _, count in hist.buckets())
    lines = []
    for edge, count in hist.buckets():
        if not count:
            continue
        label = "overflow" if edge == float("inf") else f"<= {edge * scale:g} {unit}"
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"{label:>16}  {bar} {count}")
    return "\n".join(lines)


def render_series(
    xs: Iterable[Any],
    ys: Iterable[Any],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render a two-column x/y series (one figure curve)."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return render_table(rows, [x_label, y_label], title=title)
