"""In-flight time-series telemetry: the scraper and its ring buffers.

PR 4's observability is post-hoc — spans, waterfalls, and end-of-run
histogram tables only exist after ``sim.run()`` returns. This module
adds the *in-flight* half: a :class:`TelemetryScraper` simulation
process that wakes every ``interval`` simulated seconds and samples

* **counters** from watched :class:`~repro.metrics.MetricsRegistry`
  instances (stored cumulatively; windows are answered as deltas/rates),
* **gauges** — arbitrary zero-argument callables such as broker
  outstanding counts and bounded-queue depths (see
  :meth:`~repro.core.broker.ServiceBroker.load_gauges` and
  :meth:`~repro.core.queueing.BrokerQueue.gauges`), plus dynamic gauge
  sources like the centralized :class:`~repro.core.centralized.LoadListener`'s
  leader-only shard table, and
* **histograms** — :class:`~repro.metrics.histogram.LatencyHistogram`
  snapshots turned into *windowed* percentiles ("premium p99 over the
  last 30 simulated seconds"), the signal a one-shot report cannot give,

into bounded ring-buffer :class:`TimeSeries` plus a bounded deque of
per-scrape :class:`ScrapeRecord` rows (the JSONL export unit — see
:func:`repro.obs.export.write_telemetry_jsonl`).

Determinism contract: the scraper draws **no** random numbers, sends
**no** simulation messages, and mutates **no** workload state — each
scrape is a pure read of the registries and gauges at an
already-determined instant. Scheduling the scraper consumes event
sequence numbers, but the 3-tuple heap keys preserve the relative
order of all other same-time events, so workload results are identical
with telemetry on or off, and the scrape series itself is a pure
function of ``(seed, scrape_interval)``. With telemetry disabled
nothing here is constructed at all, keeping seeded golden outputs
byte-identical.

The SLO engine (:mod:`repro.obs.slo`) subscribes at scrape boundaries;
the terminal dashboard (:mod:`repro.obs.dashboard`) renders the ring
buffers live or replayed. This layer is the metrics bus the elastic
autoscaler (ROADMAP item 3) will consume.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..metrics import MetricsRegistry
from ..metrics.histogram import LatencyHistogram

__all__ = [
    "TimeSeries",
    "ScrapeRecord",
    "TelemetryScraper",
    "describe_telemetry",
    "run_telemetry_command",
]

#: Default ring-buffer capacity: 720 points at the default 1 s interval
#: is 12 simulated minutes of history — comfortably more than any
#: scenario run while keeping memory bounded for soak loops.
DEFAULT_CAPACITY = 720

#: Percentiles computed per watched histogram per scrape.
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 99.0)

#: Rolling windows (simulated seconds) for windowed percentiles.
DEFAULT_WINDOWS: Tuple[float, ...] = (5.0, 30.0)


class TimeSeries:
    """A bounded ring buffer of ``(time, value)`` points.

    Appends must be time-ordered (the scraper only ever appends "now").
    When the buffer is full the oldest point is evicted and ``dropped``
    incremented, so windowed queries silently clip to retained history
    — :meth:`delta_over` falls back to the oldest retained point as its
    baseline in that case rather than inventing a zero that predates
    eviction.
    """

    __slots__ = ("name", "capacity", "_points", "dropped")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.name = name
        self.capacity = capacity
        self._points: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        #: Points evicted by the ring bound.
        self.dropped = 0

    def append(self, t: float, value: float) -> None:
        """Record *value* at time *t* (must not precede the last point)."""
        if self._points and t < self._points[-1][0]:
            raise ValueError(
                f"non-monotonic append to {self.name!r}: "
                f"{t} < {self._points[-1][0]}"
            )
        if len(self._points) == self.capacity:
            self.dropped += 1
        self._points.append((t, value))

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> List[Tuple[float, float]]:
        """All retained points, oldest first."""
        return list(self._points)

    def last(self) -> Optional[Tuple[float, float]]:
        """The newest point, or ``None`` when empty."""
        return self._points[-1] if self._points else None

    def value_at(self, at: float) -> Optional[float]:
        """Value of the newest point with ``t <= at`` (``None`` if none)."""
        for t, value in reversed(self._points):
            if t <= at:
                return value
        return None

    def window(
        self, since: float, until: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Retained points with ``since < t <= until``, oldest first.

        *until* defaults to the newest retained point's time.
        """
        if not self._points:
            return []
        if until is None:
            until = self._points[-1][0]
        out: List[Tuple[float, float]] = []
        for t, value in reversed(self._points):
            if t > until:
                continue
            if t <= since:
                break
            out.append((t, value))
        out.reverse()
        return out

    def delta_over(self, window: float, at: Optional[float] = None) -> float:
        """Increase over ``(at - window, at]`` for a cumulative series.

        The baseline is the newest point with ``t <= at - window``. If
        no retained point is that old, the baseline is ``0.0`` when the
        window genuinely reaches back before the first scrape (counters
        start at zero at t=0), or the oldest *retained* value when the
        ring has already evicted history — the honest answer for a
        clipped window.
        """
        if not self._points:
            return 0.0
        if at is None:
            at = self._points[-1][0]
        current = self.value_at(at)
        if current is None:
            return 0.0
        cutoff = at - window
        baseline: Optional[float] = None
        for t, value in reversed(self._points):
            if t <= cutoff:
                baseline = value
                break
        if baseline is None:
            baseline = self._points[0][1] if self.dropped else 0.0
        return current - baseline

    def rate_over(self, window: float, at: Optional[float] = None) -> float:
        """Per-second rate over the window (``delta_over / window``)."""
        if window <= 0:
            raise ValueError(f"window must be > 0: {window!r}")
        return self.delta_over(window, at) / window

    def __repr__(self) -> str:
        return (
            f"<TimeSeries {self.name!r} n={len(self._points)}"
            f"/{self.capacity} dropped={self.dropped}>"
        )


class _HistogramTrack:
    """Ring of cumulative histogram snapshots for windowed percentiles.

    Registry histograms are cumulative over the whole run; subtracting
    the snapshot nearest ``now - window`` from the current one yields
    the histogram of *just that window's* observations, from which
    bucket-interpolated percentiles follow. The delta histogram's
    min/max are reconstructed from its occupied bucket bounds (the
    exact per-window extremes are not recoverable from cumulative
    counts), so windowed percentiles are bucket-resolution estimates —
    deterministic and bounded, which is what the SLO math needs.
    """

    __slots__ = ("edges", "_snaps", "dropped")

    def __init__(self, edges: Tuple[float, ...], capacity: int) -> None:
        self.edges = edges
        # (t, counts, overflow, count, total) cumulative snapshots.
        self._snaps: Deque[Tuple[float, Tuple[int, ...], int, int, float]] = (
            deque(maxlen=capacity)
        )
        self.dropped = 0

    def record(self, t: float, histogram: LatencyHistogram) -> None:
        if len(self._snaps) == self._snaps.maxlen:
            self.dropped += 1
        self._snaps.append(
            (
                t,
                tuple(histogram.counts),
                histogram.overflow,
                histogram.count,
                histogram.total,
            )
        )

    def windowed(
        self, window: float, at: Optional[float] = None
    ) -> Optional[LatencyHistogram]:
        """Delta histogram covering ``(at - window, at]`` (None if no data)."""
        if not self._snaps:
            return None
        if at is None:
            at = self._snaps[-1][0]
        newest: Optional[Tuple[float, Tuple[int, ...], int, int, float]] = None
        for snap in reversed(self._snaps):
            if snap[0] <= at:
                newest = snap
                break
        if newest is None:
            return None
        cutoff = at - window
        base: Optional[Tuple[float, Tuple[int, ...], int, int, float]] = None
        for snap in reversed(self._snaps):
            if snap[0] <= cutoff:
                base = snap
                break
        delta = LatencyHistogram(self.edges)
        if base is None:
            counts = list(newest[1])
            overflow, count, total = newest[2], newest[3], newest[4]
        else:
            counts = [a - b for a, b in zip(newest[1], base[1])]
            overflow = newest[2] - base[2]
            count = newest[3] - base[3]
            total = newest[4] - base[4]
        delta.counts = counts
        delta.overflow = overflow
        delta.count = count
        delta.total = total
        if count > 0:
            occupied = [i for i, c in enumerate(counts) if c]
            if occupied:
                first, last = occupied[0], occupied[-1]
                delta._min = 0.0 if first == 0 else self.edges[first - 1]
                delta._max = (
                    self.edges[-1] if overflow > 0 else self.edges[last]
                )
            else:  # everything landed in the overflow bucket
                delta._min = self.edges[-1]
                delta._max = self.edges[-1]
        return delta


class ScrapeRecord:
    """One scrape's worth of samples — the JSONL export unit."""

    __slots__ = ("t", "counters", "gauges", "percentiles")

    def __init__(
        self,
        t: float,
        counters: Dict[str, float],
        gauges: Dict[str, float],
        percentiles: Dict[str, Optional[float]],
    ) -> None:
        self.t = t
        self.counters = counters
        self.gauges = gauges
        self.percentiles = percentiles

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (``kind`` discriminates against the header)."""
        return {
            "kind": "scrape",
            "t": self.t,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "percentiles": dict(self.percentiles),
        }

    def __repr__(self) -> str:
        return (
            f"<ScrapeRecord t={self.t:.3f} counters={len(self.counters)} "
            f"gauges={len(self.gauges)}>"
        )


class TelemetryScraper:
    """Periodic sampler of registries, gauges, and histograms.

    Construct it unattached, point it at sources (:meth:`watch_registry`,
    :meth:`watch_broker`, :meth:`watch_listener`, :meth:`add_gauge`,
    :meth:`add_counter`), optionally bind an SLO engine
    (:meth:`use_slo`), then :meth:`attach` to a simulation and
    :meth:`start` the scrape loop. Every sample lands in a named
    :class:`TimeSeries` in :attr:`series` and in the bounded
    :attr:`records` deque; subscribers run after each scrape (the live
    dashboard hook).

    Scrapes happen at ``k * interval`` for ``k = 1..`` up to the
    ``until`` horizon — purely observational, so the workload is
    byte-identical with the scraper present or absent.
    """

    def __init__(
        self,
        interval: float = 1.0,
        capacity: int = DEFAULT_CAPACITY,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
        windows: Sequence[float] = DEFAULT_WINDOWS,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"scrape interval must be > 0: {interval!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.interval = interval
        self.capacity = capacity
        self.percentiles = tuple(percentiles)
        self.windows = tuple(windows)
        self.sim: Optional[Any] = None
        self.slo: Optional[Any] = None
        #: All ring buffers, keyed by series name.
        self.series: Dict[str, TimeSeries] = {}
        #: Bounded per-scrape records (the JSONL export unit).
        self.records: Deque[ScrapeRecord] = deque(maxlen=capacity)
        #: Total scrapes performed.
        self.scrapes = 0
        # (label, registry, prefix) triples enumerated each scrape.
        self._registries: List[Tuple[str, MetricsRegistry, str]] = []
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._counter_fns: Dict[str, Callable[[], float]] = {}
        self._gauge_sources: List[Callable[[], Mapping[str, float]]] = []
        self._tracks: Dict[str, _HistogramTrack] = {}
        self._subscribers: List[Callable[["TelemetryScraper", ScrapeRecord], None]] = []
        self._started = False

    # -- wiring --------------------------------------------------------

    def attach(self, sim: Any) -> "TelemetryScraper":
        """Bind to *sim* (required before :meth:`start`); returns self."""
        self.sim = sim
        return self

    def watch_registry(
        self, registry: MetricsRegistry, prefix: str = "", label: str = ""
    ) -> "TelemetryScraper":
        """Sample every counter and histogram under *prefix* each scrape.

        *label* is prepended to series names — use it to disambiguate
        identically-named counters from per-broker registries
        (``"broker1:"`` etc.). New counters/histograms appearing
        mid-run are picked up automatically on the next scrape.
        """
        self._registries.append((label, registry, prefix))
        return self

    def add_gauge(self, name: str, fn: Callable[[], float]) -> "TelemetryScraper":
        """Register an instantaneous reading sampled each scrape."""
        self._gauges[name] = fn
        return self

    def add_counter(self, name: str, fn: Callable[[], float]) -> "TelemetryScraper":
        """Register a *cumulative* reading (e.g. a shed count).

        Stored under counters so deltas/rates over windows are
        meaningful, unlike a point-in-time gauge.
        """
        self._counter_fns[name] = fn
        return self

    def add_gauge_source(
        self, fn: Callable[[], Mapping[str, float]]
    ) -> "TelemetryScraper":
        """Register a dynamic gauge source returning ``{name: value}``.

        Evaluated fresh each scrape — for tables whose key set changes
        at runtime, like the load listener's shard map.
        """
        self._gauge_sources.append(fn)
        return self

    def watch_broker(self, broker: Any) -> "TelemetryScraper":
        """Sample a broker's load/queue gauges and shed counter.

        Uses :meth:`ServiceBroker.load_gauges
        <repro.core.broker.ServiceBroker.load_gauges>`: outstanding
        admissions and queue depths are gauges; the cumulative
        ``.shed`` reading is registered as a counter so burn-rate
        windows can ask "sheds in the last 5 s".
        """
        for name, fn in broker.load_gauges().items():
            if name.endswith(".shed"):
                self.add_counter(name, fn)
            else:
                self.add_gauge(name, fn)
        return self

    def watch_listener(
        self, listener: Any, prefix: str = "shard.load."
    ) -> "TelemetryScraper":
        """Sample the centralized listener's leader-only shard table.

        Rides the existing :class:`~repro.core.centralized.ShardLoadReport`
        path: only the current leader of each replica group reports, so
        the scraped ``shard.load.<service>.s<shard>`` gauges are the
        leader-only aggregation for free — no extra messages.
        """

        def source() -> Dict[str, float]:
            out: Dict[str, float] = {}
            for (service, shard), report in sorted(listener.shards.items()):
                base = f"{prefix}{service}.s{shard}"
                out[base] = float(report.outstanding)
                out[base + ".queue_depth"] = float(report.queue_depth)
            return out

        return self.add_gauge_source(source)

    def use_slo(self, engine: Any) -> "TelemetryScraper":
        """Evaluate *engine* at every scrape boundary.

        The engine's budget/burn gauges are folded into each
        :class:`ScrapeRecord` (and its alerts fire as deterministic
        timestamped events — see :class:`repro.obs.slo.SloEngine`).
        """
        self.slo = engine
        return self

    def subscribe(
        self, fn: Callable[["TelemetryScraper", ScrapeRecord], None]
    ) -> "TelemetryScraper":
        """Call ``fn(scraper, record)`` after every scrape (live hooks)."""
        self._subscribers.append(fn)
        return self

    # -- the scrape loop -----------------------------------------------

    def start(self, until: float) -> "TelemetryScraper":
        """Spawn the scrape process, sampling up to time *until*."""
        if self.sim is None:
            raise RuntimeError("attach(sim) before start()")
        if self._started:
            raise RuntimeError("scraper already started")
        self._started = True
        self.sim.process(self._loop(until), name="telemetry:scraper")
        return self

    def _loop(self, until: float):
        interval = self.interval
        while self.sim.now + interval <= until + 1e-9:
            yield interval
            self.scrape()

    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name, self.capacity)
        return series

    def scrape(self) -> ScrapeRecord:
        """Sample every source once, at the current simulated time."""
        if self.sim is None:
            raise RuntimeError("attach(sim) before scrape()")
        now = self.sim.now
        counters: Dict[str, float] = {}
        percentiles: Dict[str, Optional[float]] = {}
        for label, registry, prefix in self._registries:
            for name, value in registry.counters(prefix).items():
                counters[label + name] = value
            for name, histogram in registry.histograms(prefix).items():
                full = label + name
                track = self._tracks.get(full)
                if track is None or track.edges != histogram.edges:
                    track = self._tracks[full] = _HistogramTrack(
                        histogram.edges, self.capacity
                    )
                track.record(now, histogram)
                for window in self.windows:
                    delta = track.windowed(window, at=now)
                    for q in self.percentiles:
                        key = f"{full}.p{q:g}.{window:g}s"
                        if delta is not None and delta.count > 0:
                            percentiles[key] = delta.percentile(q)
                        else:
                            percentiles[key] = None
        for name, fn in self._counter_fns.items():
            counters[name] = float(fn())
        gauges: Dict[str, float] = {}
        for name, fn in self._gauges.items():
            gauges[name] = float(fn())
        for source in self._gauge_sources:
            for name, value in source().items():
                gauges[name] = float(value)
        record = ScrapeRecord(now, counters, gauges, percentiles)
        for name, value in counters.items():
            self._series(name).append(now, value)
        for name, value in gauges.items():
            self._series(name).append(now, value)
        for name, maybe in percentiles.items():
            if maybe is not None:
                self._series(name).append(now, maybe)
        self.records.append(record)
        self.scrapes += 1
        if self.slo is not None:
            slo_gauges = self.slo.evaluate(self, now)
            record.gauges.update(slo_gauges)
            for name, value in slo_gauges.items():
                self._series(name).append(now, value)
        for fn in self._subscribers:
            fn(self, record)
        return record

    # -- queries (the SLO engine's read surface) -----------------------

    def counter_delta(
        self,
        names: Iterable[str],
        window: float,
        at: Optional[float] = None,
    ) -> float:
        """Summed increase of the named counter series over the window.

        Missing series contribute ``0.0`` — a counter that never
        incremented simply has no budget impact yet.
        """
        total = 0.0
        for name in names:
            series = self.series.get(name)
            if series is not None:
                total += series.delta_over(window, at)
        return total

    def windowed_percentile(
        self, name: str, q: float, window: float, at: Optional[float] = None
    ) -> Optional[float]:
        """Percentile of *name*'s observations in ``(at-window, at]``."""
        track = self._tracks.get(name)
        if track is None:
            return None
        delta = track.windowed(window, at=at)
        if delta is None or delta.count == 0:
            return None
        return delta.percentile(q)

    def __repr__(self) -> str:
        return (
            f"<TelemetryScraper interval={self.interval} "
            f"scrapes={self.scrapes} series={len(self.series)}>"
        )


# ---------------------------------------------------------------------------
# CLI driver (`repro telemetry`)
# ---------------------------------------------------------------------------

#: Scenarios the telemetry CLI can run.
SCENARIOS: Tuple[str, ...] = ("qos", "chaos", "shard")


def describe_telemetry() -> str:
    """The `repro telemetry --describe` text."""
    lines = [
        "in-flight telemetry layer",
        "=========================",
        "",
        "TelemetryScraper (obs/telemetry.py)",
        "  A simulation process sampling watched sources every",
        "  `--interval` simulated seconds into bounded ring-buffer",
        "  TimeSeries: registry counters (cumulative; windows answered",
        "  as deltas/rates), broker load and bounded-queue gauges, the",
        "  centralized listener's leader-only shard table, and",
        "  LatencyHistogram snapshots as windowed percentiles",
        "  (p50/p99 over 5 s and 30 s windows by default).",
        "",
        "SLO engine (obs/slo.py)",
        "  Declarative per-QoS-class objectives with rolling error",
        "  budgets and multi-window burn-rate alerts (fast 5 s/1 min",
        "  and slow 30 s/6 min pairs). Alerts fire as timestamped,",
        "  deterministic events at scrape boundaries.",
        "",
        "Dashboard (obs/dashboard.py)",
        "  Terminal sparkline panels per stage/QoS/shard, rendered",
        "  live (subscribe) or replayed from the ring buffers.",
        "",
        "Exporters (obs/export.py)",
        "  Per-scrape JSONL (schema-validated) and a Prometheus text",
        "  exposition snapshot of the final scrape.",
        "",
        "Determinism: the scraper draws no RNG and sends no messages;",
        "workload outputs are identical with telemetry on or off, and",
        "the scrape series is a pure function of (seed, interval).",
        "",
        "scenarios: " + ", ".join(SCENARIOS),
    ]
    return "\n".join(lines)


def _print(emit: Optional[Callable[[str], None]], text: str) -> None:
    if emit is not None:
        emit(text)


def run_telemetry_command(
    scenario: str = "qos",
    clients: int = 60,
    duration: float = 120.0,
    interval: float = 1.0,
    seed: int = 2026,
    shards: int = 4,
    replicas: int = 2,
    slo: bool = False,
    dashboard: bool = False,
    export: Optional[str] = None,
    quick: bool = False,
    emit: Optional[Callable[[str], None]] = print,
) -> Dict[str, Any]:
    """Drive one telemetry-instrumented scenario end to end.

    Returns a summary dict (scraper, engine, result, export paths) so
    tests can assert on it; all human-facing output goes through
    *emit*.
    """
    from ..workload.chaos import run_chaos_experiment
    from ..workload.scenarios import (
        run_qos_experiment,
        run_sharded_qos_experiment,
    )
    from .slo import (
        SloEngine,
        chaos_slos,
        qos_slos,
        render_alert_timeline,
        render_slo_table,
    )
    from .spans import TraceCollector

    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown telemetry scenario {scenario!r}; expected one of "
            f"{SCENARIOS}"
        )
    if quick:
        clients = min(clients, 12)
        duration = min(duration, 30.0)

    scraper = TelemetryScraper(interval=interval)
    engine = SloEngine(chaos_slos() if scenario == "chaos" else qos_slos())
    scraper.use_slo(engine)

    _print(
        emit,
        f"telemetry: scenario={scenario} seed={seed} "
        f"duration={duration:g}s interval={interval:g}s",
    )
    if scenario == "qos":
        obs = TraceCollector(sample=1000, limit=64)
        result: Any = run_qos_experiment(
            clients,
            mode="broker",
            duration=duration,
            seed=seed,
            obs=obs,
            telemetry=scraper,
        )
    elif scenario == "chaos":
        result = run_chaos_experiment(
            duration=max(duration, 90.0),
            seed=seed,
            telemetry=scraper,
        )
    else:  # shard
        result = run_sharded_qos_experiment(
            clients,
            shards=shards,
            replicas=replicas,
            mode="centralized",
            duration=duration,
            seed=seed,
            telemetry=scraper,
        )

    _print(
        emit,
        f"scrapes={scraper.scrapes} series={len(scraper.series)} "
        f"alerts={len(engine.alerts)}",
    )

    out: Dict[str, Any] = {
        "scenario": scenario,
        "scraper": scraper,
        "engine": engine,
        "result": result,
        "exports": {},
    }

    if dashboard:
        from .dashboard import render_dashboard

        _print(emit, "")
        _print(emit, render_dashboard(scraper, engine=engine))
    if slo:
        _print(emit, "")
        _print(emit, render_slo_table(engine, scraper))
        _print(emit, "")
        _print(emit, render_alert_timeline(engine))
    if export:
        from .export import write_prometheus, write_telemetry_jsonl

        jsonl_path = export
        if jsonl_path.endswith(".jsonl"):
            prom_path = jsonl_path[: -len(".jsonl")] + ".prom"
        else:
            prom_path = jsonl_path + ".prom"
        lines = write_telemetry_jsonl(scraper, jsonl_path)
        write_prometheus(scraper, prom_path)
        out["exports"] = {"jsonl": jsonl_path, "prometheus": prom_path}
        _print(emit, "")
        _print(emit, f"wrote {lines} JSONL lines to {jsonl_path}")
        _print(emit, f"wrote Prometheus snapshot to {prom_path}")
    return out
