"""Terminal operator dashboard: sparkline panels over the ring buffers.

Renders the :class:`~repro.obs.telemetry.TelemetryScraper`'s
:class:`~repro.obs.telemetry.TimeSeries` as unicode sparklines, grouped
into panels per stage/QoS/shard. Two modes share one code path:

* **live** — subscribe :func:`live_panel` to the scraper; each scrape
  re-renders the current frame (useful under ``repro telemetry
  --dashboard`` while a long soak runs);
* **replay** — pass ``at=`` to :func:`render_dashboard` to rewind the
  ring buffers to any retained instant; the frame is a pure function
  of the buffers, so replayed frames are deterministic and testable.

Rendering reads the buffers only — it never touches the simulation, so
drawing a dashboard (or not) cannot perturb a seeded run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "sparkline",
    "Panel",
    "default_panels",
    "render_dashboard",
    "live_panel",
]

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """The last *width* values as a unicode sparkline.

    A flat series renders at the lowest level; an empty one renders
    empty. NaNs render as spaces.
    """
    tail = list(values)[-width:] if width > 0 else []
    if not tail:
        return ""
    finite = [v for v in tail if v == v]
    if not finite:
        return " " * len(tail)
    low = min(finite)
    high = max(finite)
    span = high - low
    top = len(SPARK_CHARS) - 1
    chars = []
    for value in tail:
        if value != value:
            chars.append(" ")
        elif span <= 0:
            chars.append(SPARK_CHARS[0])
        else:
            level = int((value - low) / span * top + 0.5)
            chars.append(SPARK_CHARS[level])
    return "".join(chars)


@dataclass(frozen=True)
class Panel:
    """One dashboard panel: labelled rows over named series.

    ``kind`` selects how a series is drawn: ``"value"`` plots the raw
    points (gauges, percentiles); ``"rate"`` plots successive deltas
    divided by the scrape interval (cumulative counters).
    """

    title: str
    rows: Tuple[Tuple[str, str], ...]  # (label, series name)
    kind: str = "value"

    def __post_init__(self) -> None:
        if self.kind not in ("value", "rate"):
            raise ValueError(f"panel kind must be value|rate: {self.kind!r}")


#: Cap rows per auto-built panel so wide fleets stay readable.
MAX_PANEL_ROWS = 12


def _panel_from(
    title: str,
    names: List[str],
    kind: str,
    label_of: Callable[[str], str],
) -> Optional[Panel]:
    if not names:
        return None
    rows = tuple((label_of(name), name) for name in sorted(names)[:MAX_PANEL_ROWS])
    return Panel(title=title, rows=rows, kind=kind)


def default_panels(scraper: Any) -> List[Panel]:
    """Derive a sensible panel set from the series the scraper holds.

    Groups by name family: per-QoS completion rates, windowed p99s,
    broker outstanding load, queue depths, shard table, chaos workload
    outcomes, and SLO budgets. Families with no series are omitted.
    """
    names = sorted(scraper.series)
    panels: List[Panel] = []

    def tail(name: str) -> str:
        return name.split(".", 1)[1] if "." in name else name

    candidates: List[Optional[Panel]] = [
        _panel_from(
            "full-fidelity completions (req/s)",
            [n for n in names if n.startswith("app.fullfid.")],
            "rate",
            tail,
        ),
        _panel_from(
            "chaos workload outcomes (req/s)",
            [
                n
                for n in names
                if n.startswith("workload.")
                and not n.startswith("workload.done.")
                and n.count(".") == 1
            ],
            "rate",
            tail,
        ),
        _panel_from(
            "windowed p99 latency (s)",
            [n for n in names if ".p99." in n],
            "value",
            lambda n: n.replace("obs.latency.", ""),
        ),
        _panel_from(
            "broker outstanding load",
            [
                n
                for n in names
                if n.startswith("broker.load.") and n.count(".") == 2
            ],
            "value",
            lambda n: n.rsplit(".", 1)[-1],
        ),
        _panel_from(
            "broker queue depth",
            [n for n in names if n.endswith(".queue_depth") and n.startswith("broker.load.")],
            "value",
            lambda n: n.split(".")[2],
        ),
        _panel_from(
            "queue sheds (req/s)",
            [n for n in names if n.startswith("broker.load.") and n.endswith(".shed")],
            "rate",
            lambda n: n.split(".")[2],
        ),
        _panel_from(
            "shard load (leader-reported)",
            [
                n
                for n in names
                if n.startswith("shard.load.") and not n.endswith(".queue_depth")
            ],
            "value",
            lambda n: n[len("shard.load."):],
        ),
        # "We refused" (throttle 429s / admission 503s) vs "we lost"
        # (backpressure sheds, admission drops): one panel so an
        # operator can tell deliberate refusal from capacity loss.
        _panel_from(
            "refused vs shed vs dropped (req/s)",
            [
                n
                for n in names
                if n in (
                    "frontend.throttle.rejected",
                    "frontend.throttled",
                    "frontend.rejected",
                    "broker.throttle.rejected",
                    "broker.shed",
                    "broker.drops",
                )
            ],
            "rate",
            lambda n: n,
        ),
        _panel_from(
            "autoscaler pool (units)",
            [
                n
                for n in names
                if n in (
                    "autoscaler.pool_size",
                    "autoscaler.draining",
                    "autoscaler.retired",
                )
            ],
            "value",
            tail,
        ),
        _panel_from(
            "autoscaler events (per s)",
            [
                n
                for n in names
                if n in (
                    "autoscaler.scale_out",
                    "autoscaler.scale_in",
                    "autoscaler.drained",
                    "autoscaler.drain.handoff",
                )
            ],
            "rate",
            tail,
        ),
        _panel_from(
            "SLO error budget remaining",
            [n for n in names if n.startswith("slo.") and n.endswith(".budget")],
            "value",
            lambda n: n[len("slo."):-len(".budget")],
        ),
    ]
    for panel in candidates:
        if panel is not None:
            panels.append(panel)
    return panels


def _series_values(
    scraper: Any, name: str, kind: str, at: Optional[float]
) -> Tuple[List[float], Optional[float]]:
    """(plotted values, last value) for one series up to time *at*."""
    series = scraper.series.get(name)
    if series is None:
        return [], None
    points = series.points()
    if at is not None:
        points = [(t, v) for t, v in points if t <= at]
    if not points:
        return [], None
    if kind == "rate":
        interval = scraper.interval
        values = [
            (b - a) / interval
            for (_, a), (_, b) in zip(points, points[1:])
        ]
        if not values:
            values = [0.0]
    else:
        values = [v for _, v in points]
    return values, values[-1]


def render_dashboard(
    scraper: Any,
    panels: Optional[Sequence[Panel]] = None,
    engine: Any = None,
    at: Optional[float] = None,
    width: int = 40,
) -> str:
    """One full dashboard frame as a string.

    ``at=None`` renders the newest state; an explicit ``at`` replays
    the frame as of that instant (limited to what the ring buffers
    still retain).
    """
    if panels is None:
        panels = default_panels(scraper)
    last = scraper.records[-1] if scraper.records else None
    now = at if at is not None else (last.t if last is not None else 0.0)
    mode = "replay" if at is not None else "live"
    lines = [
        f"┌─ telemetry dashboard ─ t={now:g}s ─ {mode} ─ "
        f"{scraper.scrapes} scrapes @ {scraper.interval:g}s ─┐"
    ]
    for panel in panels:
        lines.append("")
        lines.append(f"── {panel.title} " + "─" * max(0, 46 - len(panel.title)))
        for label, name in panel.rows:
            values, last_value = _series_values(scraper, name, panel.kind, at)
            spark = sparkline(values, width)
            shown = "-" if last_value is None else f"{last_value:g}"
            lines.append(f"  {label:<22} {spark:<{width}} {shown:>10}")
    if engine is not None:
        active = engine.active_alerts() if at is None else [
            alert
            for alert in engine.alerts
            if alert.fired_at <= now
            and (alert.resolved_at is None or alert.resolved_at > now)
        ]
        fired = (
            len(engine.alerts)
            if at is None
            else sum(1 for alert in engine.alerts if alert.fired_at <= now)
        )
        lines.append("")
        lines.append(
            f"── alerts: {fired} fired, {len(active)} active "
            + "─" * 24
        )
        for alert in active:
            lines.append(
                f"  ⚠ {alert.severity:<5} {alert.slo:<20} "
                f"since t={alert.fired_at:g}s"
            )
    lines.append("└" + "─" * 64 + "┘")
    return "\n".join(lines)


def live_panel(
    emit: Callable[[str], None],
    panels: Optional[Sequence[Panel]] = None,
    engine: Any = None,
    every: int = 1,
    width: int = 40,
) -> Callable[[Any, Any], None]:
    """A scraper subscriber that re-renders the dashboard as it runs.

    ``scraper.subscribe(live_panel(print))`` emits a frame every
    *every* scrapes. Rendering is read-only, so the live view cannot
    perturb the seeded run.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1: {every!r}")

    def on_scrape(scraper: Any, record: Any) -> None:
        if scraper.scrapes % every == 0:
            emit(render_dashboard(scraper, panels, engine=engine, width=width))

    return on_scrape
