"""Trace exporters: Chrome ``trace_event`` JSON and JSONL span dumps.

Two machine-readable views of collected traces:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  Trace Event Format ("JSON Object Format": a ``traceEvents`` list of
  complete ``"X"`` events with microsecond ``ts``/``dur``, plus
  instant ``"i"`` events for folded span events and ``"M"`` metadata
  naming each request's lane). The file loads directly in
  ``chrome://tracing`` and in Perfetto.
* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per span,
  flat, for ad-hoc analysis with line-oriented tools.

:func:`validate_chrome_trace` is the schema check CI runs against the
exported file; :func:`write_chrome_trace` applies it before writing so
a malformed export fails loudly at the source.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .spans import Trace

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
]

#: Simulated seconds → Chrome trace microseconds.
_US = 1_000_000.0

#: Event phases the exporter emits (and the validator accepts).
_PHASES = ("X", "i", "M")


def _jsonable(value: Any) -> Any:
    """A JSON-safe rendering of one attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def to_chrome_trace(traces: Iterable[Trace]) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from *traces*.

    Each trace gets its own thread lane (``tid``) named after the
    request; spans become complete ``"X"`` events and folded span
    events become instant ``"i"`` events.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro service-broker simulation"},
        }
    ]
    for tid, trace in enumerate(traces, 1):
        identity = (
            f"req {trace.request_id}"
            if trace.request_id is not None
            else f"trace {trace.trace_id}"
        )
        label = f"{identity} {trace.origin or '?'} qos{trace.qos_level}"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
        )
        for span in trace.root.walk():
            event: Dict[str, Any] = {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 1,
                "tid": tid,
            }
            if span.attrs:
                event["args"] = {
                    key: _jsonable(value) for key, value in span.attrs.items()
                }
            events.append(event)
            for span_event in span.events:
                events.append(
                    {
                        "ph": "i",
                        "name": span_event.name,
                        "cat": span.category,
                        "ts": span_event.time * _US,
                        "pid": 1,
                        "tid": tid,
                        "s": "t",
                        "args": {
                            key: _jsonable(value)
                            for key, value in span_event.fields.items()
                        },
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro obs"},
    }


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a Chrome trace document; returns problems (empty = ok).

    Checks the shape CI relies on: a dict with a non-empty
    ``traceEvents`` list whose entries carry a string ``name``, a known
    phase, integer ``pid``/``tid``, non-negative numeric ``ts`` (for
    non-metadata events), and — for ``"X"`` events — a non-negative
    numeric ``dur``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name missing or not a string")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} missing or not an int")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts missing or negative")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur missing or negative")
    return problems


def write_chrome_trace(
    traces: Iterable[Trace], path: Union[str, Path]
) -> Dict[str, Any]:
    """Validate and write the Chrome trace for *traces*; returns the doc.

    Raises :class:`ValueError` when the built document fails
    :func:`validate_chrome_trace` — the exporter never writes a file
    the schema check would reject.
    """
    doc = to_chrome_trace(traces)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(
            f"refusing to write invalid chrome trace: {problems[:5]}"
        )
    Path(path).write_text(
        json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8"
    )
    return doc


def to_jsonl(traces: Iterable[Trace]) -> List[str]:
    """One JSON line per span, flat (trace id, parent name, timings)."""
    lines: List[str] = []
    for trace in traces:
        for span in trace.root.walk():
            record = {
                "trace": trace.trace_id,
                "request": trace.request_id,
                "span": span.name,
                "category": span.category,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "parent": span.parent.name if span.parent is not None else None,
                "attrs": {
                    key: _jsonable(value) for key, value in span.attrs.items()
                },
                "events": len(span.events),
            }
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_jsonl(traces: Iterable[Trace], path: Union[str, Path]) -> int:
    """Write the JSONL span dump; returns the number of lines written."""
    lines = to_jsonl(traces)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)
