"""Exporters: Chrome traces, span JSONL, telemetry JSONL, Prometheus.

Machine-readable views of collected traces and telemetry:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  Trace Event Format ("JSON Object Format": a ``traceEvents`` list of
  complete ``"X"`` events with microsecond ``ts``/``dur``, plus
  instant ``"i"`` events for folded span events and ``"M"`` metadata
  naming each request's lane). The file loads directly in
  ``chrome://tracing`` and in Perfetto.
* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per span,
  flat, for ad-hoc analysis with line-oriented tools.
* :func:`telemetry_to_jsonl` / :func:`write_telemetry_jsonl` — one
  JSON object per scrape from a
  :class:`~repro.obs.telemetry.TelemetryScraper` (after a header
  line), the archival form of the in-flight time series.
* :func:`to_prometheus` / :func:`write_prometheus` — a Prometheus
  text-exposition snapshot of the *final* scrape (counters, gauges,
  and cumulative histogram buckets), for tooling that speaks the
  exposition format.

Each writer validates before writing (``validate_*``) so a malformed
export fails loudly at the source; CI re-runs the same validators on
the produced artifacts.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .spans import Trace

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
    "telemetry_to_jsonl",
    "write_telemetry_jsonl",
    "validate_telemetry_jsonl",
    "to_prometheus",
    "write_prometheus",
    "validate_prometheus",
    "TELEMETRY_SCHEMA_VERSION",
]

#: Simulated seconds → Chrome trace microseconds.
_US = 1_000_000.0

#: Event phases the exporter emits (and the validator accepts).
_PHASES = ("X", "i", "M")


def _jsonable(value: Any) -> Any:
    """A JSON-safe rendering of one attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def to_chrome_trace(traces: Iterable[Trace]) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from *traces*.

    Each trace gets its own thread lane (``tid``) named after the
    request; spans become complete ``"X"`` events and folded span
    events become instant ``"i"`` events.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro service-broker simulation"},
        }
    ]
    for tid, trace in enumerate(traces, 1):
        identity = (
            f"req {trace.request_id}"
            if trace.request_id is not None
            else f"trace {trace.trace_id}"
        )
        label = f"{identity} {trace.origin or '?'} qos{trace.qos_level}"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
        )
        for span in trace.root.walk():
            event: Dict[str, Any] = {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 1,
                "tid": tid,
            }
            if span.attrs:
                event["args"] = {
                    key: _jsonable(value) for key, value in span.attrs.items()
                }
            events.append(event)
            for span_event in span.events:
                events.append(
                    {
                        "ph": "i",
                        "name": span_event.name,
                        "cat": span.category,
                        "ts": span_event.time * _US,
                        "pid": 1,
                        "tid": tid,
                        "s": "t",
                        "args": {
                            key: _jsonable(value)
                            for key, value in span_event.fields.items()
                        },
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro obs"},
    }


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a Chrome trace document; returns problems (empty = ok).

    Checks the shape CI relies on: a dict with a non-empty
    ``traceEvents`` list whose entries carry a string ``name``, a known
    phase, integer ``pid``/``tid``, non-negative numeric ``ts`` (for
    non-metadata events), and — for ``"X"`` events — a non-negative
    numeric ``dur``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name missing or not a string")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} missing or not an int")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts missing or negative")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur missing or negative")
    return problems


def write_chrome_trace(
    traces: Iterable[Trace], path: Union[str, Path]
) -> Dict[str, Any]:
    """Validate and write the Chrome trace for *traces*; returns the doc.

    Raises :class:`ValueError` when the built document fails
    :func:`validate_chrome_trace` — the exporter never writes a file
    the schema check would reject.
    """
    doc = to_chrome_trace(traces)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(
            f"refusing to write invalid chrome trace: {problems[:5]}"
        )
    Path(path).write_text(
        json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8"
    )
    return doc


def to_jsonl(traces: Iterable[Trace]) -> List[str]:
    """One JSON line per span, flat (trace id, parent name, timings)."""
    lines: List[str] = []
    for trace in traces:
        for span in trace.root.walk():
            record = {
                "trace": trace.trace_id,
                "request": trace.request_id,
                "span": span.name,
                "category": span.category,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "parent": span.parent.name if span.parent is not None else None,
                "attrs": {
                    key: _jsonable(value) for key, value in span.attrs.items()
                },
                "events": len(span.events),
            }
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_jsonl(traces: Iterable[Trace], path: Union[str, Path]) -> int:
    """Write the JSONL span dump; returns the number of lines written."""
    lines = to_jsonl(traces)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


# ---------------------------------------------------------------------------
# Telemetry JSONL
# ---------------------------------------------------------------------------

#: Bumped whenever the telemetry JSONL record shape changes.
TELEMETRY_SCHEMA_VERSION = 1


def _null_nan(value: Any) -> Any:
    """NaN → None so the JSON stays strict (``allow_nan=False``)."""
    if isinstance(value, float) and value != value:
        return None
    return value


def telemetry_to_jsonl(scraper: Any) -> List[str]:
    """The scraper's retained scrapes as JSONL lines.

    Line 1 is a ``kind: "header"`` record (schema version, scrape
    interval, totals); each following line is one scrape's
    :class:`~repro.obs.telemetry.ScrapeRecord` with strictly
    increasing ``t``. All values are numbers or ``null`` — NaN is
    mapped to ``null`` and the dump uses ``allow_nan=False`` so a
    stray infinity fails at export time rather than at the consumer.
    """
    header = {
        "kind": "header",
        "schema": TELEMETRY_SCHEMA_VERSION,
        "interval": scraper.interval,
        "capacity": scraper.capacity,
        "scrapes": scraper.scrapes,
        "retained": len(scraper.records),
        "series": len(scraper.series),
    }
    lines = [json.dumps(header, sort_keys=True, allow_nan=False)]
    for record in scraper.records:
        doc = record.to_dict()
        for section in ("counters", "gauges", "percentiles"):
            doc[section] = {
                name: _null_nan(value)
                for name, value in doc[section].items()
            }
        lines.append(json.dumps(doc, sort_keys=True, allow_nan=False))
    return lines


def validate_telemetry_jsonl(lines: Iterable[str]) -> List[str]:
    """Schema-check telemetry JSONL lines; returns problems (empty = ok).

    Checks: line 1 is a header with a known schema version and positive
    interval; every other line is a ``kind: "scrape"`` record whose
    ``t`` values strictly increase and whose counter/gauge/percentile
    maps hold only finite numbers (or ``null`` for percentiles with no
    data in the window).
    """
    problems: List[str] = []
    last_t: float = float("-inf")
    saw_header = False
    for index, line in enumerate(lines):
        where = f"line {index + 1}"
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"{where}: invalid JSON ({error.msg})")
            continue
        if not isinstance(doc, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = doc.get("kind")
        if index == 0:
            if kind != "header":
                problems.append(f"{where}: first record must be the header")
                continue
            saw_header = True
            if doc.get("schema") != TELEMETRY_SCHEMA_VERSION:
                problems.append(
                    f"{where}: unknown schema version {doc.get('schema')!r}"
                )
            interval = doc.get("interval")
            if not isinstance(interval, (int, float)) or interval <= 0:
                problems.append(f"{where}: interval missing or not positive")
            continue
        if kind != "scrape":
            problems.append(f"{where}: unknown record kind {kind!r}")
            continue
        t = doc.get("t")
        if not isinstance(t, (int, float)):
            problems.append(f"{where}: t missing or not a number")
            continue
        if t <= last_t:
            problems.append(
                f"{where}: t={t} does not increase (previous {last_t})"
            )
        last_t = t
        for section in ("counters", "gauges", "percentiles"):
            table = doc.get(section)
            if not isinstance(table, dict):
                problems.append(f"{where}: {section} missing or not an object")
                continue
            nullable = section == "percentiles"
            for name, value in table.items():
                if value is None:
                    if not nullable:
                        problems.append(
                            f"{where}: {section}[{name!r}] is null"
                        )
                    continue
                if not isinstance(value, (int, float)) or (
                    isinstance(value, float)
                    and (value != value or value in (float("inf"), float("-inf")))
                ):
                    problems.append(
                        f"{where}: {section}[{name!r}] is not a finite number"
                    )
    if not saw_header:
        problems.append("no header record")
    return problems


def write_telemetry_jsonl(scraper: Any, path: Union[str, Path]) -> int:
    """Validate and write the telemetry JSONL; returns the line count.

    Raises :class:`ValueError` when the built lines fail
    :func:`validate_telemetry_jsonl` — never writes a file its own
    schema check would reject.
    """
    lines = telemetry_to_jsonl(scraper)
    problems = validate_telemetry_jsonl(lines)
    if problems:
        raise ValueError(
            f"refusing to write invalid telemetry JSONL: {problems[:5]}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$"
)


def _prom_name(name: str) -> str:
    """A metric name into Prometheus form, under the ``repro_`` prefix."""
    return "repro_" + _PROM_INVALID.sub("_", name)


def _prom_value(value: float) -> str:
    return repr(float(value))


def to_prometheus(scraper: Any) -> str:
    """The final scrape as Prometheus text exposition.

    Counters and gauges come from the newest retained
    :class:`~repro.obs.telemetry.ScrapeRecord`; watched histograms are
    emitted as classic cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``, from their newest snapshot. Metric names are
    sanitized (dots → underscores) under a ``repro_`` prefix.
    """
    lines: List[str] = []
    record = scraper.records[-1] if scraper.records else None
    if record is not None:
        for name in sorted(record.counters):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(record.counters[name])}")
        for name in sorted(record.gauges):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(record.gauges[name])}")
    for name in sorted(scraper._tracks):
        track = scraper._tracks[name]
        snaps = track._snaps
        if not snaps:
            continue
        _, counts, overflow, count, total = snaps[-1]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for edge, bucket in zip(track.edges, counts):
            cumulative += bucket
            lines.append(
                f'{prom}_bucket{{le="{edge:g}"}} {_prom_value(cumulative)}'
            )
        lines.append(
            f'{prom}_bucket{{le="+Inf"}} {_prom_value(cumulative + overflow)}'
        )
        lines.append(f"{prom}_sum {_prom_value(total)}")
        lines.append(f"{prom}_count {_prom_value(count)}")
    return "\n".join(lines) + "\n"


def validate_prometheus(text: str) -> List[str]:
    """Check Prometheus exposition text; returns problems (empty = ok).

    Every non-comment line must be ``name[{labels}] value`` with a
    legal metric name and a finite parseable value; ``# TYPE`` comments
    must name a known metric type.
    """
    problems: List[str] = []
    saw_sample = False
    for index, line in enumerate(text.splitlines()):
        where = f"line {index + 1}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"{where}: malformed TYPE comment")
                elif not _PROM_NAME.match(parts[2]):
                    problems.append(f"{where}: bad metric name {parts[2]!r}")
                elif parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(f"{where}: unknown type {parts[3]!r}")
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            problems.append(f"{where}: not a valid sample line")
            continue
        saw_sample = True
        try:
            value = float(match.group(3))
        except ValueError:
            problems.append(f"{where}: unparseable value {match.group(3)!r}")
            continue
        if value != value or value in (float("inf"), float("-inf")):
            problems.append(f"{where}: non-finite value")
    if not saw_sample:
        problems.append("no samples")
    return problems


def write_prometheus(scraper: Any, path: Union[str, Path]) -> str:
    """Validate and write the Prometheus snapshot; returns the text."""
    text = to_prometheus(scraper)
    problems = validate_prometheus(text)
    if problems:
        raise ValueError(
            f"refusing to write invalid Prometheus snapshot: {problems[:5]}"
        )
    Path(path).write_text(text, encoding="utf-8")
    return text
