"""Span-based request tracing over the broker's request contexts.

Every request already records a per-stage timeline on its
:class:`~repro.core.pipeline.RequestContext` (the ``stages`` list of
:class:`~repro.core.pipeline.StageRecord`, plus the
created/received/enqueued/dispatched/completed timestamps). This module
turns that timeline — at the moment a request *finishes* — into a tree
of :class:`Span` objects: client wait, network transit, per-stage
ingress and dispatch work, queue residency, backend service time, and
reply propagation, with retry/failover attribution carried as span
attributes.

The overhead contract (see DESIGN.md §10):

* **Disabled** (the default): the only cost on any hot path is one
  attribute check — ``sim.obs is None`` — at the few completion hooks.
  Nothing is allocated, recorded, or branched beyond that, so PR 3's
  throughput and the byte-identical seeded outputs are preserved.
* **Enabled**: trace building is purely observational. It never creates
  simulation events, advances the clock, or draws randomness, so seeded
  runs produce identical results with tracing on or off; only wall-clock
  time changes.

Enable tracing by attaching a :class:`TraceCollector` to a simulation
(``collector.attach(sim)``) before the workload runs; every scenario in
:mod:`repro.workload.scenarios` accepts an ``obs=`` collector argument.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from ..metrics import MetricsRegistry
from ..sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.pipeline import RequestContext
    from ..sim.core import Simulation

__all__ = [
    "SpanEvent",
    "Span",
    "Hop",
    "Trace",
    "TraceCollector",
    "trace_from_context",
]

#: Containment tolerance when nesting spans (sim-clock floats).
_EPS = 1e-9


class SpanEvent:
    """A timestamped point event attached to a span.

    Folded from the legacy free-text tracer (see
    :meth:`TraceCollector.fold_events`): each
    :class:`~repro.sim.trace.TraceRecord` carrying a ``request_id``
    field becomes one event on that request's span.
    """

    __slots__ = ("time", "name", "fields")

    def __init__(
        self, time: float, name: str, fields: Optional[Dict[str, Any]] = None
    ) -> None:
        self.time = time
        self.name = name
        self.fields: Dict[str, Any] = fields if fields is not None else {}

    def __repr__(self) -> str:
        return f"<SpanEvent {self.name} @ {self.time:.6f}>"


class Span:
    """One named interval of a request's life, in simulated seconds.

    Spans nest: ``children`` are fully contained sub-intervals (a
    dispatch stage inside the broker span, a broker call inside a
    front-end application span). ``attrs`` carries attribution (stage
    decision, request id); ``events`` the folded tracer records.
    """

    __slots__ = (
        "name",
        "category",
        "start",
        "end",
        "parent",
        "children",
        "attrs",
        "events",
    )

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.parent: Optional["Span"] = None
        self.children: List["Span"] = []
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.events: List[SpanEvent] = []

    @property
    def duration(self) -> float:
        """Simulated seconds covered by the span."""
        return self.end - self.start

    def add_child(self, span: "Span") -> "Span":
        """Append *span* as a child (setting its parent) and return it."""
        span.parent = self
        self.children.append(span)
        return span

    def walk(self) -> Iterator["Span"]:
        """Pre-order iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def contains(self, other: "Span") -> bool:
        """Whether *other*'s interval lies within this span's."""
        return (
            self.start - _EPS <= other.start and other.end <= self.end + _EPS
        )

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} [{self.start:.6f}, {self.end:.6f}] "
            f"children={len(self.children)}>"
        )


class Hop:
    """One segment of a request's end-to-end waterfall.

    A trace's hops partition ``[trace.start, trace.end]`` with no gaps
    or overlaps — consecutive hops share a boundary timestamp — so the
    hop durations telescope: their sum equals the end-to-end latency
    (within float tolerance).
    """

    __slots__ = ("name", "start", "end")

    def __init__(self, name: str, start: float, end: float) -> None:
        self.name = name
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        """Simulated seconds covered by the hop."""
        return self.end - self.start

    def __repr__(self) -> str:
        return f"<Hop {self.name} {self.duration * 1000:.3f}ms>"


class Trace:
    """A single request's complete trace: span tree, hops, metadata.

    ``root`` spans the request's whole life; ``hops`` is the flattened
    waterfall (see :class:`Hop`); ``children`` holds the traces of
    nested broker calls when the request originated at the front end
    (their root spans also appear inside this trace's span tree).
    """

    __slots__ = (
        "trace_id",
        "request_id",
        "origin",
        "broker",
        "backend",
        "qos_level",
        "status",
        "from_cache",
        "fidelity",
        "root",
        "hops",
        "children",
        "annotations",
    )

    def __init__(
        self,
        trace_id: int,
        root: Span,
        hops: List[Hop],
        request_id: Optional[int] = None,
        origin: str = "",
        broker: str = "",
        backend: str = "",
        qos_level: int = 1,
        status: str = "",
        from_cache: bool = False,
        fidelity: float = 1.0,
        annotations: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.root = root
        self.hops = hops
        self.request_id = request_id
        self.origin = origin
        self.broker = broker
        self.backend = backend
        self.qos_level = qos_level
        self.status = status
        self.from_cache = from_cache
        self.fidelity = fidelity
        self.children: List["Trace"] = []
        self.annotations: Dict[str, Any] = (
            annotations if annotations is not None else {}
        )

    @property
    def start(self) -> float:
        """When the request entered the system."""
        return self.root.start

    @property
    def end(self) -> float:
        """When the last span of the request closed."""
        return self.root.end

    @property
    def duration(self) -> float:
        """End-to-end simulated latency."""
        return self.root.end - self.root.start

    def spans(self) -> List[Span]:
        """Every span of the trace (pre-order, root first)."""
        return list(self.root.walk())

    def find(self, name: str) -> Optional[Span]:
        """The first span called *name*, if any."""
        for span in self.root.walk():
            if span.name == name:
                return span
        return None

    def validate(self) -> List[str]:
        """Check the span-tree invariants; returns violations (empty = ok).

        Invariants: every span is closed with ``end >= start``, every
        child lies within its parent (so no span closes before its
        children), and siblings are ordered by start time.
        """
        problems: List[str] = []
        for span in self.root.walk():
            if span.end is None:  # pragma: no cover - constructor forbids it
                problems.append(f"{span.name}: never closed")
                continue
            if span.end < span.start - _EPS:
                problems.append(
                    f"{span.name}: closes before it opens "
                    f"({span.end} < {span.start})"
                )
            previous_start = None
            for child in span.children:
                if not span.contains(child):
                    problems.append(
                        f"{span.name}: closes before child {child.name} "
                        f"([{span.start}, {span.end}] vs "
                        f"[{child.start}, {child.end}])"
                    )
                if previous_start is not None and child.start < previous_start:
                    problems.append(
                        f"{span.name}: children out of order at {child.name}"
                    )
                previous_start = child.start
        return problems

    def __repr__(self) -> str:
        return (
            f"<Trace #{self.trace_id} {self.origin or '?'} "
            f"{self.duration * 1000:.3f}ms spans={len(self.spans())}>"
        )


def _cut(hops: List[Hop], name: str, prev: float, at: Optional[float]) -> float:
    """Append one telescoping hop ending at *at*; returns the new prev."""
    if at is None:
        return prev
    if at < prev:
        at = prev
    hops.append(Hop(name, prev, at))
    return at


def _broker_hops(ctx: "RequestContext", end: float) -> List[Hop]:
    """The waterfall for a request that traversed a broker pipeline."""
    hops: List[Hop] = []
    prev = ctx.created_at
    prev = _cut(hops, "net.request", prev, ctx.received_at)
    if ctx.enqueued_at is not None:
        prev = _cut(hops, "ingress", prev, ctx.enqueued_at)
        if ctx.dispatched_at is not None:
            prev = _cut(hops, "queued", prev, ctx.dispatched_at)
            prev = _cut(hops, "service", prev, ctx.completed_at)
        else:
            # Never dispatched (breaker open, deadline): retry backoff
            # and the fidelity fallback happened between these cuts.
            prev = _cut(hops, "dispatch", prev, ctx.completed_at)
    else:
        # Answered at ingress: cache hit, admission drop, validation.
        prev = _cut(hops, "broker", prev, ctx.completed_at)
    if end > prev:
        _cut(hops, "net.reply", prev, end)
    return hops


def _frontend_hops(ctx: "RequestContext", end: float) -> List[Hop]:
    """The waterfall for a front-end-originated (HTTP) request."""
    hops: List[Hop] = []
    prev = ctx.created_at
    for record in ctx.stages:
        if record.stage == "client":
            continue
        if record.exited <= prev:
            continue
        if record.entered > prev:
            hops.append(Hop("idle", prev, record.entered))
            prev = record.entered
        hops.append(Hop(record.stage, prev, record.exited))
        prev = record.exited
    if end > prev or not hops:
        hops.append(Hop("tail" if hops else "request", prev, end))
    return hops


def trace_from_context(ctx: "RequestContext", trace_id: int = 0) -> Trace:
    """Build a :class:`Trace` from a finished request context.

    A pure function over the context's already-recorded timeline: it
    derives spans (network transit, broker residency, per-stage work,
    queue wait, reply propagation), nests them by interval containment,
    attaches the traces of nested broker calls (stored by the collector
    under the ``"obs.children"`` annotation), and computes the
    telescoping waterfall hops.
    """
    records = ctx.stages
    client_record = None
    for record in reversed(records):
        if record.stage == "client":
            client_record = record
            break
    completed = ctx.completed_at
    if client_record is not None:
        end = client_record.exited
    elif completed is not None:
        end = completed
    else:
        end = max((r.exited for r in records), default=ctx.created_at)

    spans: List[Span] = []
    if ctx.received_at is not None:
        # A broker-side context: net transit, broker residency, stages.
        # A shard-routed request records one "net" stage per hop — the
        # original send plus one broker→broker leg per forward.
        net_records = [r for r in records if r.stage == "net"]
        # Relay residencies (ShardRouteStage notes each forwarding
        # broker on the context). Each relay's span runs from its
        # arrival to the request's arrival at the next broker, so the
        # broker→broker net.forward leg nests inside the relay that
        # sent it — cross-shard hops get a span parentage path. Relays
        # are emitted before the net legs: the nesting sort breaks
        # equal-interval ties by emission order, and a zero-time relay
        # makes its span and its forward leg exactly coincide.
        shard_path = ctx.annotations.get("shard.path") or ()
        for index, (hop_broker, hop_received, hop_forwarded) in enumerate(
            shard_path
        ):
            leg_end = hop_forwarded
            if index + 1 < len(net_records):
                leg_end = max(leg_end, net_records[index + 1].exited)
            spans.append(
                Span(
                    hop_broker,
                    "broker",
                    hop_received,
                    leg_end,
                    attrs={"forwarded_at": hop_forwarded},
                )
            )
        for index, record in enumerate(net_records):
            spans.append(
                Span(
                    "net.request" if index == 0 else "net.forward",
                    "net",
                    record.entered,
                    record.exited,
                )
            )
        broker_end = completed if completed is not None else end
        # The broker's name is used verbatim (default names already read
        # "broker:<service>").
        spans.append(
            Span(ctx.broker or "broker", "broker", ctx.received_at, broker_end)
        )
        for record in records:
            if record.stage in ("net", "client"):
                continue
            attrs = {"decision": record.decision} if record.decision else None
            spans.append(
                Span(
                    f"stage.{record.stage}",
                    "stage",
                    record.entered,
                    record.exited,
                    attrs=attrs,
                )
            )
        if ctx.enqueued_at is not None:
            queue_end = (
                ctx.dispatched_at if ctx.dispatched_at is not None else broker_end
            )
            spans.append(Span("queue", "queue", ctx.enqueued_at, queue_end))
        if completed is not None and end > completed + _EPS:
            spans.append(Span("net.reply", "net", completed, end))
        hops = _broker_hops(ctx, end)
    else:
        # A front-end HTTP context: admission/process-wait/app records.
        for record in records:
            if record.stage == "client":
                continue
            attrs = {"decision": record.decision} if record.decision else None
            spans.append(
                Span(
                    record.stage,
                    "frontend",
                    record.entered,
                    record.exited,
                    attrs=attrs,
                )
            )
        hops = _frontend_hops(ctx, end)

    annotations: Dict[str, Any] = {}
    child_traces: List[Trace] = []
    for key, value in ctx.annotations.items():
        if key == "obs.children":
            child_traces = value
        else:
            annotations[key] = value
    for record in records:
        if record.decision.startswith("depth="):
            try:
                annotations["queue_depth"] = int(record.decision[6:])
            except ValueError:  # pragma: no cover - labels are generated
                pass
            break

    request_id = ctx.request.request_id if ctx.request is not None else None
    reply = ctx.reply
    if reply is not None:
        status = reply.status.value
        from_cache = reply.from_cache
        fidelity = reply.fidelity
    else:
        status = str(annotations.get("obs.status", ""))
        from_cache = False
        fidelity = 1.0

    lo = min([ctx.created_at] + [span.start for span in spans])
    hi = max([end] + [span.end for span in spans])
    for child in child_traces:
        lo = min(lo, child.root.start)
        hi = max(hi, child.root.end)
        spans.append(child.root)
    root_attrs: Dict[str, Any] = {"origin": ctx.origin}
    if request_id is not None:
        root_attrs["request_id"] = request_id
    root = Span("request", "request", lo, hi, attrs=root_attrs)

    # Nest by interval containment: sorted by (start, -duration), a
    # stack of enclosing spans assigns each span the tightest parent.
    # Zero-width spans never adopt children (ingress stages all record
    # the same instant; they are siblings, not a chain).
    order = sorted(
        range(len(spans)),
        key=lambda i: (spans[i].start, spans[i].start - spans[i].end, i),
    )
    stack: List[Span] = [root]
    for index in order:
        span = spans[index]
        while len(stack) > 1 and not stack[-1].contains(span):
            stack.pop()
        stack[-1].add_child(span)
        if span.end > span.start:
            stack.append(span)

    trace = Trace(
        trace_id,
        root,
        hops,
        request_id=request_id,
        origin=ctx.origin,
        broker=ctx.broker,
        backend=ctx.backend,
        qos_level=ctx.qos_level,
        status=status,
        from_cache=from_cache,
        fidelity=fidelity,
        annotations=annotations,
    )
    trace.children = list(child_traces)
    return trace


class TraceCollector:
    """Collects finished request traces, histograms, and span events.

    Attach to a simulation with :meth:`attach`; the instrumented
    completion points (broker client replies, front-end responses) then
    call :meth:`finish` with the finished context. Roots are sampled
    deterministically — every ``sample``-th root request is retained,
    counted from the first — and retention is bounded by ``limit`` so
    long runs cannot exhaust memory (``dropped`` counts the overflow).

    Histograms are fed for *every* finished request regardless of
    sampling: per stage (``obs.stage.<name>``), per QoS class
    (``obs.latency.qos<level>`` plus ``obs.latency.all``), and per
    backend (``obs.backend.<name>``), all in the collector's
    ``metrics`` registry.
    """

    def __init__(
        self,
        sample: int = 1,
        limit: int = 10_000,
        metrics: Optional[MetricsRegistry] = None,
        capture_events: bool = True,
    ) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1: {sample!r}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit!r}")
        self.sample = sample
        self.limit = limit
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Legacy free-text tracer folded into spans after the run; the
        #: one observability surface (see :meth:`fold_events`).
        self.tracer: Optional[Tracer] = Tracer() if capture_events else None
        self.traces: List[Trace] = []
        self.roots_seen = 0
        self.dropped = 0
        self._next_id = 1

    def attach(self, sim: "Simulation") -> "TraceCollector":
        """Enable tracing on *sim* and return self.

        Sets ``sim.obs`` (the one-attribute-check hook the hot paths
        test) and, when event capture is on and the simulation has no
        tracer yet, installs the collector's tracer as ``sim.tracer``
        so category records can be folded into spans after the run.
        """
        sim.obs = self
        if self.tracer is not None and sim.tracer is None:
            sim.tracer = self.tracer
        return self

    def finish(
        self, ctx: "RequestContext", status: Optional[str] = None
    ) -> Optional[Trace]:
        """Record a finished request context.

        Called from the instrumented completion points (only when
        tracing is enabled — the hot path guards with ``sim.obs is not
        None``). Contexts with a ``parent`` are nested broker calls:
        their trace is stashed on the parent context and folded into
        the parent's trace when it finishes. Returns the built trace
        for retained roots, else ``None``.
        """
        if status is not None:
            ctx.annotations["obs.status"] = status
        self._observe(ctx)
        parent = ctx.parent
        if parent is not None:
            trace = trace_from_context(ctx)
            children = parent.annotations.get("obs.children")
            if children is None:
                children = parent.annotations["obs.children"] = []
            children.append(trace)
            return None
        self.roots_seen += 1
        if (self.roots_seen - 1) % self.sample != 0:
            return None
        if len(self.traces) >= self.limit:
            self.dropped += 1
            return None
        trace = trace_from_context(ctx, trace_id=self._next_id)
        self._next_id += 1
        self.traces.append(trace)
        return trace

    def _observe(self, ctx: "RequestContext") -> None:
        """Feed the per-stage / per-QoS / per-backend histograms."""
        metrics = self.metrics
        for record in ctx.stages:
            if record.stage == "client":
                continue
            metrics.histogram_handle(f"obs.stage.{record.stage}").add(
                record.duration
            )
        completed = ctx.completed_at
        if completed is not None:
            elapsed = completed - ctx.created_at
            metrics.histogram_handle("obs.latency.all").add(elapsed)
            metrics.histogram_handle(f"obs.latency.qos{ctx.qos_level}").add(
                elapsed
            )
            if ctx.backend and ctx.dispatched_at is not None:
                metrics.histogram_handle(f"obs.backend.{ctx.backend}").add(
                    completed - ctx.dispatched_at
                )

    # -- inspection ----------------------------------------------------

    def slowest(self, k: int = 5) -> List[Trace]:
        """The *k* slowest retained traces, slowest first (stable)."""
        ranked = sorted(
            self.traces, key=lambda t: (-t.duration, t.trace_id)
        )
        return ranked[: max(0, k)]

    def span_count(self) -> int:
        """Total spans across all retained traces."""
        return sum(len(trace.spans()) for trace in self.traces)

    def fold_events(self, tracer: Optional[Tracer] = None) -> int:
        """Fold free-text tracer records into span events.

        Every :class:`~repro.sim.trace.TraceRecord` whose fields carry
        a ``request_id`` matching a retained trace becomes a
        :class:`SpanEvent` on that request's span (category and message
        join as the event name). Returns the number of events folded.
        """
        source = tracer if tracer is not None else self.tracer
        if source is None:
            return 0
        index: Dict[Any, Span] = {}
        for trace in self.traces:
            for span in trace.root.walk():
                request_id = span.attrs.get("request_id")
                if request_id is not None:
                    index[request_id] = span
        folded = 0
        for record in source.records:
            request_id = record.fields.get("request_id")
            if request_id is None:
                continue
            span = index.get(request_id)
            if span is None:
                continue
            span.events.append(
                SpanEvent(
                    record.time,
                    f"{record.category}.{record.message}",
                    dict(record.fields),
                )
            )
            folded += 1
        return folded

    def __len__(self) -> int:
        return len(self.traces)

    def __repr__(self) -> str:
        return (
            f"<TraceCollector traces={len(self.traces)} "
            f"roots={self.roots_seen} sample=1/{self.sample}>"
        )
