"""Latency histograms for the observability layer.

The histogram primitive itself lives in
:mod:`repro.metrics.histogram` so the
:class:`~repro.metrics.MetricsRegistry` can store histograms without
importing the (higher-level) obs package; this module re-exports it as
the obs-facing name and is where the
:class:`~repro.obs.spans.TraceCollector`'s histogram conventions are
documented:

* ``obs.stage.<name>`` — per-stage-record durations (every pipeline
  and front-end stage a request traversed);
* ``obs.latency.all`` / ``obs.latency.qos<level>`` — end-to-end
  request latency, overall and per QoS class;
* ``obs.backend.<name>`` — dispatch-to-completion service time per
  backend replica.

All use :data:`~repro.metrics.histogram.DEFAULT_LATENCY_EDGES`
(100 µs – 100 s, 1-2-5 per decade) and report p50/p90/p99/p999 via
:meth:`~repro.metrics.histogram.LatencyHistogram.percentile`.
"""

from ..metrics.histogram import DEFAULT_LATENCY_EDGES, LatencyHistogram

__all__ = ["LatencyHistogram", "DEFAULT_LATENCY_EDGES"]
