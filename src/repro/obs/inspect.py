"""The ``repro obs`` inspection toolkit.

Runs an existing scenario with tracing enabled and reports where the
time went: collection summary, per-stage / per-QoS / per-backend
latency histograms, the K slowest request waterfalls with per-hop
attribution, and optional Chrome-trace / JSONL exports. See DESIGN.md
§10 for the span model and the overhead contract.
"""

from __future__ import annotations

from typing import List, Optional

from ..metrics import render_histograms
from .export import validate_chrome_trace, write_chrome_trace, write_jsonl
from .histogram import DEFAULT_LATENCY_EDGES
from .spans import TraceCollector
from .timeline import render_trace

__all__ = ["describe_obs", "run_obs_command"]

#: Scenario names the CLI accepts, with their quick-mode parameters.
SCENARIOS = ("qos", "fig7", "faults")


def describe_obs() -> str:
    """Explain the span model, overhead contract, and exporters."""
    edges = DEFAULT_LATENCY_EDGES
    return "\n".join(
        [
            "repro obs — end-to-end request tracing",
            "",
            "Span model: each finished request's context timeline becomes a",
            "  trace of nested spans — net transit, broker residency, every",
            "  ingress/dispatch stage, queue wait, backend service, reply",
            "  propagation — plus telescoping waterfall hops whose durations",
            "  sum to the end-to-end latency. Front-end requests nest the",
            "  traces of their broker calls.",
            "",
            "Overhead contract: tracing disabled costs one attribute check",
            "  (`sim.obs is None`) per completion point; enabled tracing is",
            "  purely observational (no events, no clock, no RNG), so seeded",
            "  outputs are identical with tracing on or off.",
            "",
            "Histograms: fixed log-spaced buckets "
            f"({edges[0]:g}s .. {edges[-1]:g}s, {len(edges)} edges + overflow),",
            "  keyed obs.stage.<name>, obs.latency.qos<level>,",
            "  obs.backend.<name>; p50/p90/p99/p99.9 by interpolation.",
            "",
            "Exporters: --export FILE writes Chrome trace_event JSON",
            "  (open in chrome://tracing or Perfetto); --jsonl FILE writes",
            "  one JSON object per span; the terminal shows the --slowest K",
            "  waterfalls with per-hop attribution.",
            "",
            "Scenarios: --scenario qos (the §V.B macro testbed, default),",
            "  fig7 (request clustering), faults (failure recovery).",
            "  --trace-sample N keeps every Nth request; --quick shrinks",
            "  the run for smoke tests.",
        ]
    )


def _run_scenario(
    scenario: str,
    collector: TraceCollector,
    clients: int,
    duration: float,
    degree: int,
    seed: int,
) -> str:
    """Run one named scenario with *collector* attached; returns a label."""
    from ..workload.scenarios import (
        run_clustering_experiment,
        run_failure_recovery_experiment,
        run_qos_experiment,
    )

    if scenario == "qos":
        run_qos_experiment(
            clients, mode="broker", duration=duration, seed=seed, obs=collector
        )
        return f"qos (§V.B macro: {clients} clients, {duration:g}s)"
    if scenario == "fig7":
        run_clustering_experiment(degree, seed=seed, obs=collector)
        return f"fig7 (clustering, degree {degree})"
    if scenario == "faults":
        run_failure_recovery_experiment(
            duration=duration,
            first_crash_at=min(10.0, duration / 4.0),
            seed=seed,
            obs=collector,
        )
        return f"faults (failure recovery, {duration:g}s)"
    raise ValueError(
        f"unknown scenario {scenario!r}; expected one of {SCENARIOS}"
    )


def run_obs_command(
    scenario: str = "qos",
    clients: int = 60,
    duration: float = 120.0,
    degree: int = 8,
    trace_sample: int = 1,
    slowest: int = 5,
    export: Optional[str] = None,
    jsonl: Optional[str] = None,
    quick: bool = False,
    seed: int = 2026,
) -> str:
    """The ``repro obs`` implementation; returns the printed report.

    Runs *scenario* with a :class:`~repro.obs.spans.TraceCollector`
    attached (sampling every *trace_sample*-th root request), folds the
    legacy tracer's records into span events, and renders the report.
    """
    if quick:
        clients = min(clients, 12)
        duration = min(duration, 20.0)
        degree = min(degree, 4)
    collector = TraceCollector(sample=trace_sample)
    label = _run_scenario(scenario, collector, clients, duration, degree, seed)
    folded = collector.fold_events()

    lines: List[str] = [
        f"obs report — scenario {label}, seed {seed}, "
        f"sample 1/{trace_sample}",
        f"  traces: {len(collector)} retained of {collector.roots_seen} "
        f"root requests ({collector.span_count()} spans, "
        f"{folded} tracer events folded"
        + (f", {collector.dropped} dropped at limit" if collector.dropped else "")
        + ")",
    ]

    for prefix, title in (
        ("obs.latency.", "end-to-end latency per QoS class (ms)"),
        ("obs.stage.", "per-stage latency (ms)"),
        ("obs.backend.", "backend service time (ms)"),
    ):
        histograms = collector.metrics.histograms(prefix)
        if histograms:
            lines.append("")
            lines.append(render_histograms(histograms, title=title))

    ranked = collector.slowest(slowest)
    if ranked:
        lines.append("")
        lines.append(f"slowest {len(ranked)} request(s):")
        for trace in ranked:
            lines.append("")
            lines.append(render_trace(trace, events=False))

    if export:
        doc = write_chrome_trace(collector.traces, export)
        problems = validate_chrome_trace(doc)
        lines.append("")
        lines.append(
            f"chrome trace: {export} ({len(doc['traceEvents'])} events, "
            f"schema {'ok' if not problems else problems})"
        )
    if jsonl:
        written = write_jsonl(collector.traces, jsonl)
        lines.append(f"jsonl spans: {jsonl} ({written} lines)")
    return "\n".join(lines)
