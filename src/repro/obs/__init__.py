"""Observability: request tracing, latency histograms, exporters.

The obs package rides the existing per-request timeline
(:class:`~repro.core.pipeline.RequestContext`) to give every request a
trace of nested spans, feeds fixed-bucket latency histograms per stage
/ QoS class / backend, and exports Chrome ``trace_event`` JSON, JSONL
span dumps, and terminal waterfalls. ``python -m repro obs`` is the
CLI; DESIGN.md §10 documents the span model and the
one-attribute-check overhead contract.
"""

from .export import (
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .histogram import DEFAULT_LATENCY_EDGES, LatencyHistogram
from .inspect import describe_obs, run_obs_command
from .spans import Hop, Span, SpanEvent, Trace, TraceCollector, trace_from_context
from .timeline import (
    critical_path,
    render_attribution,
    render_trace,
    render_waterfall,
)

__all__ = [
    "Span",
    "SpanEvent",
    "Hop",
    "Trace",
    "TraceCollector",
    "trace_from_context",
    "LatencyHistogram",
    "DEFAULT_LATENCY_EDGES",
    "render_waterfall",
    "render_attribution",
    "render_trace",
    "critical_path",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
    "describe_obs",
    "run_obs_command",
]
