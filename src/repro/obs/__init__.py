"""Observability: tracing, histograms, in-flight telemetry, exporters.

The obs package rides the existing per-request timeline
(:class:`~repro.core.pipeline.RequestContext`) to give every request a
trace of nested spans, feeds fixed-bucket latency histograms per stage
/ QoS class / backend, and exports Chrome ``trace_event`` JSON, JSONL
span dumps, and terminal waterfalls. ``python -m repro obs`` is the
CLI; DESIGN.md §10 documents the span model and the
one-attribute-check overhead contract.

On top of that post-hoc layer sits the in-flight telemetry tier
(``python -m repro telemetry``): a
:class:`~repro.obs.telemetry.TelemetryScraper` sampling registries and
gauges into ring-buffer :class:`~repro.obs.telemetry.TimeSeries`, a
declarative :class:`~repro.obs.slo.SloEngine` with multi-window
burn-rate alerts, a terminal sparkline dashboard, and telemetry
JSONL / Prometheus exporters. DESIGN.md §15 documents the scrape
model and its determinism contract.
"""

from .dashboard import Panel, default_panels, live_panel, render_dashboard, sparkline
from .export import (
    telemetry_to_jsonl,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    validate_chrome_trace,
    validate_prometheus,
    validate_telemetry_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
    write_telemetry_jsonl,
)
from .histogram import DEFAULT_LATENCY_EDGES, LatencyHistogram
from .inspect import describe_obs, run_obs_command
from .slo import (
    BurnAlert,
    SloEngine,
    SloSpec,
    chaos_slos,
    qos_slos,
    render_alert_timeline,
    render_slo_table,
    shard_slos,
)
from .spans import Hop, Span, SpanEvent, Trace, TraceCollector, trace_from_context
from .telemetry import (
    ScrapeRecord,
    TelemetryScraper,
    TimeSeries,
    describe_telemetry,
    run_telemetry_command,
)
from .timeline import (
    critical_path,
    render_attribution,
    render_trace,
    render_waterfall,
)

__all__ = [
    "Span",
    "SpanEvent",
    "Hop",
    "Trace",
    "TraceCollector",
    "trace_from_context",
    "LatencyHistogram",
    "DEFAULT_LATENCY_EDGES",
    "render_waterfall",
    "render_attribution",
    "render_trace",
    "critical_path",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
    "describe_obs",
    "run_obs_command",
    "TimeSeries",
    "ScrapeRecord",
    "TelemetryScraper",
    "describe_telemetry",
    "run_telemetry_command",
    "SloSpec",
    "BurnAlert",
    "SloEngine",
    "qos_slos",
    "chaos_slos",
    "shard_slos",
    "render_slo_table",
    "render_alert_timeline",
    "sparkline",
    "Panel",
    "default_panels",
    "render_dashboard",
    "live_panel",
    "telemetry_to_jsonl",
    "write_telemetry_jsonl",
    "validate_telemetry_jsonl",
    "to_prometheus",
    "write_prometheus",
    "validate_prometheus",
]
