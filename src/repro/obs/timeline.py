"""Terminal waterfall and critical-path rendering for request traces.

The inspection side of the obs layer: given a
:class:`~repro.obs.spans.Trace`, :func:`render_waterfall` draws the
telescoping per-hop timeline as aligned ASCII bars (the hop durations
sum to the end-to-end latency by construction),
:func:`render_attribution` produces the one-line "where did the time
go" sentence (queue depth, broker, retries, failover, fidelity), and
:func:`critical_path` walks the span tree along its longest children.
``repro obs --slowest K`` prints :func:`render_trace` for the K
slowest retained traces.
"""

from __future__ import annotations

from typing import List

from .spans import Span, Trace

__all__ = [
    "render_waterfall",
    "render_attribution",
    "critical_path",
    "render_trace",
]


def _ms(seconds: float) -> str:
    """Milliseconds with enough precision for sub-ms hops."""
    return f"{seconds * 1000:.3f}"


def render_waterfall(trace: Trace, width: int = 40) -> str:
    """Render *trace*'s hops as an aligned ASCII waterfall.

    Each line shows one hop's name, duration, and a bar positioned at
    its offset within the request; the final line shows the hop sum,
    which equals the end-to-end latency within float tolerance.
    """
    total = trace.duration
    identity = (
        f"request {trace.request_id}"
        if trace.request_id is not None
        else f"trace {trace.trace_id}"
    )
    where = trace.origin or "?"
    if trace.broker:
        where += f" -> {trace.broker}"
    if trace.backend:
        where += f" -> {trace.backend}"
    lines = [
        f"{identity}  qos{trace.qos_level}  {trace.status or '-'}  "
        f"{_ms(total)} ms end-to-end  ({where})"
    ]
    for hop in trace.hops:
        if total > 0:
            lead = int(width * (hop.start - trace.start) / total)
            fill = round(width * hop.duration / total)
            if hop.duration > 0 and fill == 0:
                fill = 1
            bar = " " * lead + "#" * fill
        else:
            bar = ""
        lines.append(
            f"  {hop.name:<22} {_ms(hop.duration):>10} ms  |{bar}"
        )
    hop_sum = sum(hop.duration for hop in trace.hops)
    lines.append(f"  {'sum':<22} {_ms(hop_sum):>10} ms")
    return "\n".join(lines)


def render_attribution(trace: Trace) -> str:
    """One sentence attributing the request's latency.

    For example: ``queued 41.0 ms at depth 12 at broker broker2,
    2 retries, served stale (fidelity 0.5)``. Front-end traces with no
    broker of their own summarize their slowest nested broker call.
    """
    if not trace.broker and trace.children:
        slowest = max(trace.children, key=lambda child: child.duration)
        return f"slowest call: {render_attribution(slowest)}"
    parts: List[str] = []
    queued = next((hop for hop in trace.hops if hop.name == "queued"), None)
    if queued is not None and queued.duration > 0:
        clause = f"queued {queued.duration * 1000:.1f} ms"
        depth = trace.annotations.get("queue_depth")
        if depth:
            clause += f" at depth {depth}"
        parts.append(clause)
    if trace.broker:
        parts.append(f"at broker {trace.broker}")
    retries = trace.annotations.get("obs.retries")
    if retries:
        parts.append(f"{retries} retr" + ("y" if retries == 1 else "ies"))
    failover = trace.annotations.get("obs.failover")
    if failover in ("recovered", "failed"):
        parts.append(f"failover {failover}")
    status = trace.status
    if status == "ok":
        parts.append(
            "served from cache" if trace.from_cache else "served full-fidelity"
        )
    elif status == "degraded":
        parts.append(f"served stale (fidelity {trace.fidelity:g})")
    elif status == "dropped":
        parts.append("dropped (system busy)")
    elif status == "error":
        parts.append("error reply")
    elif status:
        parts.append(f"status {status}")
    return ", ".join(parts) if parts else "no attribution recorded"


def critical_path(trace: Trace) -> List[Span]:
    """The greedy longest-child chain from the root, root first.

    At each level the child with the largest duration is followed —
    the spans that, shortened, would most reduce the end-to-end
    latency.
    """
    span = trace.root
    path = [span]
    while span.children:
        best = max(span.children, key=lambda child: (child.duration, child.start))
        if best.duration <= 0:
            # Only zero-width children left (instantaneous ingress
            # stages); descending further adds no attribution.
            break
        span = best
        path.append(span)
    return path


def render_trace(trace: Trace, width: int = 40, events: bool = False) -> str:
    """The full terminal view of one trace.

    Waterfall, critical path, and the attribution sentence; pass
    ``events=True`` to also list folded span events (from the legacy
    tracer) in time order.
    """
    lines = [render_waterfall(trace, width=width)]
    path = critical_path(trace)
    if len(path) > 1:
        chain = " > ".join(span.name for span in path)
        lines.append(f"  critical path: {chain} ({_ms(path[-1].duration)} ms)")
    lines.append(f"  {render_attribution(trace)}")
    if events:
        all_events = [
            event for span in trace.root.walk() for event in span.events
        ]
        for event in sorted(all_events, key=lambda e: e.time):
            lines.append(f"    [{event.time:12.6f}] {event.name}")
    return "\n".join(lines)
