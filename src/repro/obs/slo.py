"""Declarative SLOs, rolling error budgets, and burn-rate alerts.

An :class:`SloSpec` names the counters that define "good" (or "bad")
and "total" events for one objective — e.g. *premium requests answered
at full fidelity* with a 90 % objective. The :class:`SloEngine`
evaluates every spec at each scrape boundary of a
:class:`~repro.obs.telemetry.TelemetryScraper`:

* **burn rate** over window *W* is ``bad_fraction(W) / (1 - objective)``
  — burn 1.0 consumes the error budget exactly at the sustainable
  pace; burn 10 exhausts a day's budget in ~2.4 hours (in wall-clock
  SRE terms; here everything is simulated seconds).
* **multi-window alerts**: a pair fires only when *both* its short and
  long windows exceed the pair's threshold — the short window gives
  fast detection, the long window suppresses blips. The defaults
  follow the classic fast (5 s / 1 min) + slow (30 s / 6 min) pairing,
  scaled to simulation time.
* **error budget**: ``1 - burn(budget_window)`` — the fraction of the
  rolling budget still unspent (can go negative when the objective is
  being missed outright).

Because evaluation happens only at scrape boundaries and reads only
ring-buffer deltas, every alert timestamp is deterministic in
``(seed, scrape_interval)`` — rerun the same scenario and the alert
timeline is identical, which the determinism tests assert.

Burn thresholds here are lower than Google-SRE production defaults
(14.4 / 6): those assume 99.9 %-class objectives where the budget is
tiny. The simulated broker's objectives are in the 0.75–0.95 range, so
the maximum possible burn is ``1 / (1 - objective)`` (4–20) and the
factories pick thresholds that are reachable yet ignore steady-state
noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SloSpec",
    "BurnAlert",
    "SloEngine",
    "qos_slos",
    "chaos_slos",
    "shard_slos",
    "autoscale_slos",
    "render_slo_table",
    "render_alert_timeline",
]


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over scraped counters.

    Exactly one of *good* or *bad* should be given (both are summed
    counter-name tuples): with *good*, ``bad = total - good``; with
    *bad*, it is used directly. Missing counters read as zero, so a
    spec can safely name counters that only exist in some modes (e.g.
    ``frontend.rejected.*`` only appears under admission control).
    """

    name: str
    objective: float
    total: Tuple[str, ...]
    good: Tuple[str, ...] = ()
    bad: Tuple[str, ...] = ()
    description: str = ""
    #: (short, long) windows in simulated seconds for the fast pair.
    fast: Tuple[float, float] = (5.0, 60.0)
    #: (short, long) windows for the slow pair.
    slow: Tuple[float, float] = (30.0, 360.0)
    #: Burn-rate thresholds; a pair fires when BOTH windows exceed it.
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    #: Window for the rolling error-budget gauge.
    budget_window: float = 360.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1): {self.objective!r}"
            )
        if bool(self.good) == bool(self.bad):
            raise ValueError(
                f"spec {self.name!r} needs exactly one of good= or bad="
            )
        if not self.total:
            raise ValueError(f"spec {self.name!r} needs total= counters")

    @property
    def budget(self) -> float:
        """The error budget fraction, ``1 - objective``."""
        return 1.0 - self.objective


@dataclass
class BurnAlert:
    """One burn-rate alert firing (and, eventually, resolving).

    Timestamps are scrape times — deterministic in
    ``(seed, scrape_interval)``.
    """

    slo: str
    severity: str  # "fast" or "slow"
    fired_at: float
    threshold: float
    short_window: float
    long_window: float
    short_burn: float
    long_burn: float
    resolved_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None


class SloEngine:
    """Evaluates a set of :class:`SloSpec` at scrape boundaries.

    Bind to a scraper with
    :meth:`TelemetryScraper.use_slo
    <repro.obs.telemetry.TelemetryScraper.use_slo>`; the scraper calls
    :meth:`evaluate` after appending each scrape's series points. The
    returned gauges (``slo.<name>.burn<W>s`` and ``slo.<name>.budget``)
    are folded into the scrape record, so the SLO state rides the JSONL
    export and the dashboard for free.
    """

    def __init__(self, specs: Sequence[SloSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names!r}")
        self.specs: Tuple[SloSpec, ...] = tuple(specs)
        #: Every alert ever fired, in firing order.
        self.alerts: List[BurnAlert] = []
        self._active: Dict[Tuple[str, str], BurnAlert] = {}
        #: Evaluations performed (one per scrape once bound).
        self.evaluations = 0

    def _burn(
        self, spec: SloSpec, scraper: Any, window: float, at: float
    ) -> float:
        total = scraper.counter_delta(spec.total, window, at)
        if total <= 0:
            return 0.0
        if spec.bad:
            bad = scraper.counter_delta(spec.bad, window, at)
        else:
            bad = total - scraper.counter_delta(spec.good, window, at)
        if bad < 0:
            bad = 0.0
        return (bad / total) / spec.budget

    def evaluate(self, scraper: Any, now: float) -> Dict[str, float]:
        """Compute burn/budget gauges and update alert state at *now*."""
        gauges: Dict[str, float] = {}
        self.evaluations += 1
        for spec in self.specs:
            windows = sorted(set(spec.fast) | set(spec.slow))
            burns = {
                window: self._burn(spec, scraper, window, now)
                for window in windows
            }
            for window in windows:
                gauges[f"slo.{spec.name}.burn{window:g}s"] = burns[window]
            gauges[f"slo.{spec.name}.budget"] = 1.0 - self._burn(
                spec, scraper, spec.budget_window, now
            )
            for severity, (short, long_), threshold in (
                ("fast", spec.fast, spec.fast_burn),
                ("slow", spec.slow, spec.slow_burn),
            ):
                firing = (
                    burns[short] > threshold and burns[long_] > threshold
                )
                key = (spec.name, severity)
                active = self._active.get(key)
                if firing and active is None:
                    alert = BurnAlert(
                        slo=spec.name,
                        severity=severity,
                        fired_at=now,
                        threshold=threshold,
                        short_window=short,
                        long_window=long_,
                        short_burn=burns[short],
                        long_burn=burns[long_],
                    )
                    self._active[key] = alert
                    self.alerts.append(alert)
                elif not firing and active is not None:
                    active.resolved_at = now
                    del self._active[key]
        return gauges

    def active_alerts(self) -> List[BurnAlert]:
        """Alerts currently firing, in firing order."""
        return [alert for alert in self.alerts if alert.active]

    def first_alert_time(self) -> Optional[float]:
        """When the earliest alert fired (None if none ever did)."""
        return self.alerts[0].fired_at if self.alerts else None

    def spec_named(self, name: str) -> SloSpec:
        """The spec called *name* (raises :class:`KeyError` if absent)."""
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def __repr__(self) -> str:
        return (
            f"<SloEngine specs={len(self.specs)} "
            f"alerts={len(self.alerts)}>"
        )


# ---------------------------------------------------------------------------
# Spec factories for the built-in scenarios
# ---------------------------------------------------------------------------

#: Per-class full-fidelity objectives for the §V.B QoS scenario. Under
#: the paper's overload the broker protects class 1 at the expense of
#: class 3, so the objectives step down accordingly; class 3's is set
#: where the §V.B overload (60 clients) measurably misses it while a
#: lightly-loaded run does not.
QOS_OBJECTIVES: Dict[int, float] = {1: 0.90, 2: 0.60, 3: 0.30}


def qos_slos(levels: Sequence[int] = (1, 2, 3)) -> List[SloSpec]:
    """Full-fidelity SLOs per QoS class for the §V.B scenario.

    Good = full-fidelity completions; total adds low-fidelity
    fallbacks and (under admission control) front-door rejections.
    """
    specs = []
    for level in levels:
        objective = QOS_OBJECTIVES.get(level, 0.5)
        specs.append(
            SloSpec(
                name=f"qos{level}-fullfid",
                description=(
                    f"class-{level} requests answered at full fidelity"
                ),
                objective=objective,
                good=(f"app.fullfid.qos{level}",),
                total=(
                    f"app.fullfid.qos{level}",
                    f"app.lowfid.qos{level}",
                    f"frontend.rejected.qos{level}",
                ),
                fast_burn=1.5,
                slow_burn=1.1,
            )
        )
    return specs


def chaos_slos() -> List[SloSpec]:
    """SLOs for the chaos soak (crash/restart + load spikes).

    ``chaos-answered`` counts every dropped/timed-out/errored reply —
    including spike traffic, which the availability-floor invariant
    deliberately excludes — so its burn alerts fire during spike sheds
    and crash windows while the steady-workload invariant stays green:
    the early-warning the operator wants *before* the floor trips.
    ``chaos-fast`` tracks replies under the fast-reply threshold and
    burns during failover windows (a crashed primary costs the full
    attempt timeout before the failover answers).
    """
    return [
        SloSpec(
            name="chaos-answered",
            description="replies not dropped/timed out/errored (all traffic)",
            objective=0.95,
            bad=(
                "workload.dropped",
                "workload.timeout",
                "workload.error",
            ),
            total=("workload.done",),
            fast_burn=2.0,
            slow_burn=1.0,
        ),
        SloSpec(
            name="chaos-fast",
            description="replies under the fast-reply latency threshold",
            objective=0.75,
            good=("workload.fast",),
            total=("workload.answered",),
            fast_burn=2.0,
            slow_burn=1.2,
        ),
    ]


def shard_slos(levels: Sequence[int] = (1, 2, 3)) -> List[SloSpec]:
    """Sharded-scenario SLOs — same front-door counters as QoS."""
    return qos_slos(levels)


def autoscale_slos() -> List[SloSpec]:
    """SLOs for the elastic-pool experiments (autoscale + scale chaos).

    Deliberately *excludes* ``workload.throttled`` from the bad
    counters: a per-tenant token-bucket refusal is "we refused", not
    "we lost" — refusing one tenant's flash crowd is the throttle
    working, and must not burn the error budget (and thereby veto the
    very scale-in the refusal enabled). Backpressure sheds
    (``workload.dropped``), timeouts, and errors still burn: those are
    capacity problems the autoscaler should react to, and an active
    burn alert vetoes scale-in (see
    :class:`~repro.core.autoscale.Autoscaler`).
    """
    return [
        SloSpec(
            name="scale-answered",
            description="replies not dropped/timed out/errored "
            "(throttle refusals excluded)",
            objective=0.98,
            bad=(
                "workload.dropped",
                "workload.timeout",
                "workload.error",
            ),
            total=("workload.done",),
            fast_burn=2.0,
            slow_burn=1.0,
        ),
        SloSpec(
            name="scale-fast",
            description="replies under the fast-reply latency threshold",
            objective=0.75,
            good=("workload.fast",),
            total=("workload.answered",),
            fast_burn=2.0,
            slow_burn=1.2,
        ),
    ]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_slo_table(engine: SloEngine, scraper: Any) -> str:
    """A fixed-width summary table of every spec's current state."""
    last = None
    for record in reversed(scraper.records):
        last = record
        break
    lines = [
        "SLO                  objective  budget-left  burn(fast)  burn(slow)  alerts",
        "-" * 78,
    ]
    for spec in engine.specs:
        budget = float("nan")
        fast_burn = float("nan")
        slow_burn = float("nan")
        if last is not None:
            budget = last.gauges.get(f"slo.{spec.name}.budget", float("nan"))
            fast_burn = last.gauges.get(
                f"slo.{spec.name}.burn{spec.fast[0]:g}s", float("nan")
            )
            slow_burn = last.gauges.get(
                f"slo.{spec.name}.burn{spec.slow[0]:g}s", float("nan")
            )
        fired = sum(1 for alert in engine.alerts if alert.slo == spec.name)
        active = sum(
            1
            for alert in engine.alerts
            if alert.slo == spec.name and alert.active
        )
        suffix = f"{fired}" + (f" ({active} active)" if active else "")
        lines.append(
            f"{spec.name:<20} {spec.objective:>8.0%}  {budget:>11.3f}  "
            f"{fast_burn:>10.2f}  {slow_burn:>10.2f}  {suffix}"
        )
    return "\n".join(lines)


def render_alert_timeline(engine: SloEngine) -> str:
    """The chronological FIRE/RESOLVE event list."""
    if not engine.alerts:
        return "alert timeline: (no burn-rate alerts fired)"
    events: List[Tuple[float, int, str]] = []
    for order, alert in enumerate(engine.alerts):
        events.append(
            (
                alert.fired_at,
                order,
                f"t={alert.fired_at:>7.1f}s  FIRE     {alert.severity:<5} "
                f"{alert.slo:<20} burn{alert.short_window:g}s="
                f"{alert.short_burn:.2f} burn{alert.long_window:g}s="
                f"{alert.long_burn:.2f} (threshold {alert.threshold:g})",
            )
        )
        if alert.resolved_at is not None:
            events.append(
                (
                    alert.resolved_at,
                    order,
                    f"t={alert.resolved_at:>7.1f}s  RESOLVE  "
                    f"{alert.severity:<5} {alert.slo:<20}",
                )
            )
    events.sort(key=lambda item: (item[0], item[1]))
    return "\n".join(["alert timeline:"] + [text for _, _, text in events])
