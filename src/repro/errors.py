"""Exception hierarchy for the :mod:`repro` package.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch the whole family with a single ``except`` clause.
Subsystem-specific families (simulation kernel, network, database,
broker) each have their own intermediate base class.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class EventAlreadyTriggered(SimError):
    """An event was succeeded or failed more than once."""


class EventNotTriggered(SimError):
    """The value of a pending event was accessed before it triggered."""


class StopSimulation(Exception):
    """Internal control-flow exception used to halt :meth:`Simulation.run`.

    Not a :class:`ReproError`: it never escapes ``run()``.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(SimError):
    """Raised inside a process that has been interrupted.

    The optional *cause* passed to :meth:`Process.interrupt` is available
    as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network substrate errors."""


class NoRouteError(NetworkError):
    """No link exists between the two nodes involved in a transfer."""


class AddressInUse(NetworkError):
    """A node attempted to bind a port that is already bound."""


class ConnectionRefused(NetworkError):
    """No listener was bound at the destination address."""


class ConnectionClosed(NetworkError):
    """The peer closed the stream connection."""


class MessageDropped(NetworkError):
    """A datagram was dropped by a lossy link (surfaced only in tests)."""


# ---------------------------------------------------------------------------
# Backend services
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for backend service errors."""


class ProtocolError(ServiceError):
    """A server received a message it does not understand."""


class QueryError(ServiceError):
    """Base class for database query errors."""


class SqlSyntaxError(QueryError):
    """The mini-SQL parser rejected the statement."""


class UnknownTableError(QueryError):
    """A query referenced a table that does not exist."""


class UnknownColumnError(QueryError):
    """A query referenced a column that does not exist."""


class FilterSyntaxError(ServiceError):
    """The LDAP-style filter parser rejected the filter string."""


class NoSuchEntryError(ServiceError):
    """A directory operation referenced a DN that does not exist."""


class MailboxError(ServiceError):
    """A mail operation referenced an unknown mailbox or message."""


class HttpError(ServiceError):
    """An HTTP exchange failed at the protocol level."""

    def __init__(self, status: int, reason: str = "") -> None:
        super().__init__(f"HTTP {status}: {reason}" if reason else f"HTTP {status}")
        self.status = status
        self.reason = reason


# ---------------------------------------------------------------------------
# Service broker framework
# ---------------------------------------------------------------------------


class BrokerError(ReproError):
    """Base class for service broker errors."""


class AdmissionRejected(BrokerError):
    """A request was rejected by admission control.

    Carries the :attr:`reason` the admission controller recorded (for
    example ``"qos-threshold"`` or ``"class-intensity"``).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class BrokerTimeout(BrokerError):
    """A broker client gave up waiting for a reply."""


class UnknownServiceError(BrokerError):
    """A request named a service the broker does not front."""
