"""Transaction integrity: step-based priority escalation.

The paper's supply-chain example (§III): a purchase touches the monitor
vendor at step 1 and again at step 3; if the step-3 access is dropped
the whole transaction aborts and all prior work is wasted. Brokers
therefore "gradually increase the priority of the subsequent accesses
that belong to the same transaction" and, under load, shed step-1
accesses before late-step ones.

:class:`TransactionTracker` implements that: the *effective* QoS level
of a request improves by ``escalation_per_step`` for every completed
step, and requests at or beyond ``protect_from_step`` are *protected* —
admission only rejects them when the hard threshold itself is hit.

The tracker is also the invalidation spine for the cross-request cache
tier (:mod:`repro.core.cachetier`): interested parties register an
:meth:`TransactionTracker.on_complete` callback and are told the moment
a transaction finishes, so cached results written under that
transaction can be invalidated on the transaction path rather than
waiting for TTL expiry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..metrics import MetricsRegistry
from .protocol import BrokerRequest

__all__ = ["TransactionTracker"]


class TransactionTracker:
    """Tracks transactions and computes escalated priorities."""

    def __init__(
        self,
        escalation_per_step: int = 1,
        protect_from_step: int = 3,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if escalation_per_step < 0:
            raise ValueError(
                f"escalation_per_step must be >= 0: {escalation_per_step!r}"
            )
        self.escalation_per_step = escalation_per_step
        self.protect_from_step = protect_from_step
        self.metrics = metrics or MetricsRegistry()
        self._steps: Dict[str, int] = {}
        self._on_complete: List[Callable[[str], None]] = []

    def observe(self, request: BrokerRequest) -> Optional[int]:
        """Record the latest step seen for the request's transaction.

        Returns the new highest step if this request advanced the
        transaction's known progress (so the broker can gossip it to
        peers — see :class:`repro.core.peering.BrokerPeerGroup`), else
        ``None``.
        """
        if request.txn_id is None:
            return None
        self.metrics.increment("txn.accesses")
        previous = self._steps.get(request.txn_id, 0)
        if request.txn_step > previous:
            self._steps[request.txn_id] = request.txn_step
            return request.txn_step
        self._steps.setdefault(request.txn_id, previous)
        return None

    def observe_remote(self, txn_id: str, step: int) -> None:
        """Merge a peer broker's knowledge of a transaction's progress."""
        previous = self._steps.get(txn_id, 0)
        if step > previous:
            self._steps[txn_id] = step
            self.metrics.increment("txn.remote_updates")

    def step_of(self, txn_id: str) -> int:
        """The highest step seen for *txn_id* (0 if unknown)."""
        return self._steps.get(txn_id, 0)

    def _known_step(self, request: BrokerRequest) -> int:
        """The transaction's progress: the request's own tag or what this
        broker has learned locally or from peers, whichever is further."""
        if request.txn_id is None:
            return request.txn_step
        return max(request.txn_step, self.step_of(request.txn_id))

    def effective_level(self, request: BrokerRequest) -> int:
        """The request's QoS level after transaction escalation.

        Level 1 is the best; each step beyond the first raises priority
        by ``escalation_per_step`` levels. An access of an advanced
        transaction is escalated even when the request itself carries no
        step tag, as long as the progress is known (locally or via
        broker peering).
        """
        if request.txn_id is None:
            return request.qos_level
        step = self._known_step(request)
        if step <= 1:
            return request.qos_level
        boost = (step - 1) * self.escalation_per_step
        return max(1, request.qos_level - boost)

    def protected(self, request: BrokerRequest) -> bool:
        """True if admission must not shed this request early."""
        return (
            request.txn_id is not None
            and self._known_step(request) >= self.protect_from_step
        )

    def on_complete(self, callback: Callable[[str], None]) -> None:
        """Register *callback* to run when a transaction completes.

        Callbacks receive the transaction id and run synchronously from
        :meth:`complete`. The cache tier uses this to invalidate every
        key written under the transaction (see
        :meth:`repro.core.cachetier.SharedCacheTier.watch_transactions`).
        """
        self._on_complete.append(callback)

    def complete(self, txn_id: str) -> None:
        """Forget a finished transaction and fire completion callbacks."""
        if self._steps.pop(txn_id, None) is not None:
            self.metrics.increment("txn.completed")
            for callback in self._on_complete:
                callback(txn_id)

    @property
    def active(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        return f"<TransactionTracker active={self.active}>"
