"""Broker-to-broker state exchange (paper §III, transaction integrity).

"If service brokers are enabled to communicate with each other, they can
exchange state information to ensure that transactions involving
different backend servers are properly protected."

Each broker that joins a :class:`BrokerPeerGroup` broadcasts a
:class:`TxnStateUpdate` whenever it observes a transaction advance to a
new highest step. Peer brokers feed the update into their own
:class:`TransactionTracker`, so a transaction that invested steps at
vendor A is escalated and protected at vendor B *even when the request
arriving at B carries no step tag* — the cross-backend case the paper
calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from ..errors import BrokerError
from ..net.address import Address

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .broker import ServiceBroker

__all__ = ["TxnStateUpdate", "BrokerPeerGroup"]


@dataclass(frozen=True)
class TxnStateUpdate:
    """Gossip message: transaction *txn_id* has reached *step*."""

    txn_id: str
    step: int
    origin: str
    sent_at: float


class BrokerPeerGroup:
    """Wires a set of brokers into a full-mesh gossip group.

    Joining requires the broker to have a :class:`TransactionTracker`
    (there is no other cross-broker state to exchange). The group
    installs itself as each broker's ``peer_group``; brokers then call
    :meth:`publish` from their receive path when local transaction
    knowledge advances.
    """

    def __init__(self) -> None:
        self._members: List["ServiceBroker"] = []

    @property
    def members(self) -> List["ServiceBroker"]:
        return list(self._members)

    def join(self, broker: "ServiceBroker") -> None:
        """Add *broker* to the mesh."""
        if broker.transactions is None:
            raise BrokerError(
                f"{broker.name} has no TransactionTracker; nothing to exchange"
            )
        if broker in self._members:
            raise BrokerError(f"{broker.name} already joined this peer group")
        self._members.append(broker)
        broker.peer_group = self

    def publish(self, origin: "ServiceBroker", txn_id: str, step: int) -> None:
        """Broadcast a transaction-step advance from *origin* to all peers."""
        update = TxnStateUpdate(
            txn_id=txn_id,
            step=step,
            origin=origin.name,
            sent_at=origin.sim.now,
        )
        for member in self._members:
            if member is origin:
                continue
            origin.socket.sendto(update, member.address)
            origin.metrics.increment("peering.updates_sent")

    def __repr__(self) -> str:
        return f"<BrokerPeerGroup members={[m.name for m in self._members]}>"
