"""Broker-to-broker state exchange (paper §III, transaction integrity).

"If service brokers are enabled to communicate with each other, they can
exchange state information to ensure that transactions involving
different backend servers are properly protected."

Each broker that joins a :class:`BrokerPeerGroup` broadcasts a
:class:`TxnStateUpdate` whenever it observes a transaction advance to a
new highest step. Peer brokers feed the update into their own
:class:`TransactionTracker`, so a transaction that invested steps at
vendor A is escalated and protected at vendor B *even when the request
arriving at B carries no step tag* — the cross-backend case the paper
calls out.

Since the shard tier landed (:mod:`repro.core.sharding`), transaction
steps are no longer the only cross-broker state. A
:class:`ShardPeerGroup` extends the mesh with two more message kinds:

* :class:`JournalSync` — intra-shard replication of recovery-journal
  transitions, so every replica holds a shadow copy of its peers'
  admitted-but-unanswered requests (write on admit, tombstone on
  answer);
* :class:`RouteAdvert` — inter-shard routing metadata, broadcast by a
  shard's leader after every election so all brokers of the service
  learn who currently fronts each shard.

The plain full-mesh :class:`BrokerPeerGroup` remains the degenerate
single-shard configuration and behaves byte-identically to before.

The cross-request optimization tier (:mod:`repro.core.cachetier`) adds
a fourth message kind to every mesh: :class:`CombinableAdvert`. A
broker about to open a combining window for an in-list query shape
broadcasts the advert so its peers can *yield* — hand matching queued
requests to the advertiser and skip opening a competing window for the
same shape — turning per-broker in-list combining into cross-broker
combining (see :class:`repro.core.pipeline.QueryCombineStage`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..errors import BrokerError
from .protocol import BrokerRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .broker import ServiceBroker
    from .sharding import ShardGroup

__all__ = [
    "TxnStateUpdate",
    "JournalSync",
    "RouteAdvert",
    "CombinableAdvert",
    "BrokerPeerGroup",
    "ShardPeerGroup",
]


@dataclass(frozen=True)
class TxnStateUpdate:
    """Gossip message: transaction *txn_id* has reached *step*."""

    txn_id: str
    step: int
    origin: str
    sent_at: float


@dataclass(frozen=True)
class JournalSync:
    """Intra-shard replication of one recovery-journal transition.

    ``answered=False`` carries the admitted request (the write);
    ``answered=True`` is the tombstone that clears it (``request`` is
    ``None`` — only the id travels).
    """

    origin: str
    request_id: int
    request: Optional[BrokerRequest]
    answered: bool
    sent_at: float


@dataclass(frozen=True)
class RouteAdvert:
    """Inter-shard routing metadata: a shard's current leader and roster."""

    service: str
    shard: int
    leader: str
    members: Tuple[str, ...]
    sent_at: float


@dataclass(frozen=True)
class CombinableAdvert:
    """Gossip message: *origin* is collecting combinable queries.

    ``key`` is the combiner's shape key (see
    :meth:`repro.core.clustering.InListQueryCombiner.key`); ``count`` is
    how many matching requests the origin already holds; ``window`` is
    how long the origin will keep its combining window open. A peer that
    receives a fresh advert for a shape it is about to dispatch yields
    its queued matches to the advertiser instead of issuing a competing
    backend query.
    """

    origin: str
    service: str
    key: str
    count: int
    window: float
    sent_at: float


class BrokerPeerGroup:
    """Wires a set of brokers into a full-mesh gossip group.

    Joining requires the broker to have a :class:`TransactionTracker` —
    transaction steps are the only state this plain mesh exchanges (the
    shard-aware :class:`ShardPeerGroup` subclass also replicates
    recovery-journal entries and routing metadata, and drops that
    requirement). The group installs itself as each broker's
    ``peer_group``; brokers then call :meth:`publish` from their receive
    path when local transaction knowledge advances.
    """

    def __init__(self) -> None:
        self._members: List["ServiceBroker"] = []

    @property
    def members(self) -> List["ServiceBroker"]:
        return list(self._members)

    def join(self, broker: "ServiceBroker") -> None:
        """Add *broker* to the mesh."""
        if broker.transactions is None:
            raise BrokerError(
                f"{broker.name} has no TransactionTracker; nothing to exchange"
            )
        if broker in self._members:
            raise BrokerError(f"{broker.name} already joined this peer group")
        self._members.append(broker)
        broker.peer_group = self

    def publish(self, origin: "ServiceBroker", txn_id: str, step: int) -> None:
        """Broadcast a transaction-step advance from *origin* to all peers."""
        update = TxnStateUpdate(
            txn_id=txn_id,
            step=step,
            origin=origin.name,
            sent_at=origin.sim.now,
        )
        for member in self._members:
            if member is origin:
                continue
            origin.socket.sendto(update, member.address)
            origin.metrics.increment("peering.updates_sent")

    def advertise_combinable(
        self,
        origin: "ServiceBroker",
        key: str,
        count: int,
        window: float,
    ) -> None:
        """Broadcast a :class:`CombinableAdvert` from *origin* to all peers.

        Called by :class:`~repro.core.pipeline.QueryCombineStage` the
        moment a dispatcher opens a combining window for shape *key*, so
        peer brokers holding the same shape yield to *origin* instead of
        racing it to the backend.
        """
        advert = CombinableAdvert(
            origin=origin.name,
            service=origin.service,
            key=key,
            count=count,
            window=window,
            sent_at=origin.sim.now,
        )
        for member in self._members:
            if member is origin:
                continue
            origin.socket.sendto(advert, member.address)
            origin.metrics.increment("peering.combinable_adverts_sent")

    def handle(self, broker: "ServiceBroker", message: Any) -> bool:
        """Apply a peer message *broker* received; ``True`` if consumed.

        Every mesh understands :class:`CombinableAdvert` (recorded into
        ``broker.combinable_adverts`` for the
        :class:`~repro.core.pipeline.QueryCombineStage` to consult).
        Beyond that the plain mesh exchanges nothing but
        :class:`TxnStateUpdate` (which the broker's receive loop applies
        directly), so anything else landing here is counted malformed.
        """
        if isinstance(message, CombinableAdvert):
            broker.combinable_adverts[message.key] = message
            broker.metrics.increment("peering.combinable_adverts_applied")
            return True
        broker.metrics.increment("broker.malformed")
        return False

    def __repr__(self) -> str:
        return f"<BrokerPeerGroup members={[m.name for m in self._members]}>"


class ShardPeerGroup(BrokerPeerGroup):
    """Shard-aware peering for one :class:`~repro.core.sharding.ShardGroup`.

    Members are the shard's replica brokers. On top of the base mesh's
    transaction gossip (now scoped intra-shard — the replicas of one
    shard serve the same key range, so that is where step knowledge
    matters) the group:

    * mirrors every recovery-journal transition to the other replicas
      via :class:`JournalSync`, maintaining ``broker.shard_shadow`` —
      a per-peer shadow of admitted-but-unanswered requests. The shadow
      is a warm standby view; answering authority for a crashed
      replica's in-flight work stays with the
      :class:`~repro.core.lifecycle.BrokerSupervisor` fast-fail so no
      request is ever answered twice;
    * broadcasts a :class:`RouteAdvert` from each newly elected leader
      to the *roster* (all brokers of the service, across shards),
      maintaining ``broker.shard_view`` — the
      ``(service, shard) → leader name`` map the
      :class:`~repro.core.pipeline.ShardRouteStage` consults before
      falling back to directory truth.
    """

    def __init__(
        self,
        group: "ShardGroup",
        roster: Optional[Sequence["ServiceBroker"]] = None,
    ) -> None:
        super().__init__()
        self.group = group
        self._roster: Optional[List["ServiceBroker"]] = (
            list(roster) if roster is not None else None
        )
        group.on_leader_change = self._leader_changed

    @property
    def roster(self) -> List["ServiceBroker"]:
        """Advert recipients: the service-wide roster, else the members."""
        return list(self._roster) if self._roster is not None else self.members

    def set_roster(self, roster: Sequence["ServiceBroker"]) -> None:
        """Install the service-wide advert roster (all shards' brokers)."""
        self._roster = list(roster)

    def join(self, broker: "ServiceBroker") -> None:
        """Add *broker*; transaction tracking is optional in a shard mesh.

        When the broker already carries a
        :class:`~repro.core.lifecycle.RecoveryJournal` (supervise first,
        then join), its journal hooks are wired to replicate every
        transition to the shard's other replicas.
        """
        if broker in self._members:
            raise BrokerError(f"{broker.name} already joined this peer group")
        self._members.append(broker)
        broker.peer_group = self
        self.attach_journal(broker)

    def attach_journal(self, broker: "ServiceBroker") -> None:
        """Wire *broker*'s recovery journal into intra-shard replication."""
        journal = broker.journal
        if journal is None:
            return

        def _admitted(request: BrokerRequest, origin: "ServiceBroker" = broker) -> None:
            self.replicate_admitted(origin, request)

        def _answered(request_id: int, origin: "ServiceBroker" = broker) -> None:
            self.replicate_answered(origin, request_id)

        journal.on_admitted = _admitted
        journal.on_answered = _answered

    def replicate_admitted(
        self, origin: "ServiceBroker", request: BrokerRequest
    ) -> None:
        """Mirror a journal write from *origin* to the other replicas."""
        sync = JournalSync(
            origin=origin.name,
            request_id=request.request_id,
            request=request,
            answered=False,
            sent_at=origin.sim.now,
        )
        self._send_to_members(origin, sync, "peering.journal_syncs_sent")

    def replicate_answered(
        self, origin: "ServiceBroker", request_id: int
    ) -> None:
        """Mirror a journal clear (tombstone) from *origin* to replicas."""
        sync = JournalSync(
            origin=origin.name,
            request_id=request_id,
            request=None,
            answered=True,
            sent_at=origin.sim.now,
        )
        self._send_to_members(origin, sync, "peering.journal_syncs_sent")

    def _send_to_members(
        self, origin: "ServiceBroker", message: Any, counter: str
    ) -> None:
        for member in self._members:
            if member is origin:
                continue
            origin.socket.sendto(message, member.address)
            origin.metrics.increment(counter)

    def advertise(self, origin: "ServiceBroker") -> None:
        """Broadcast this shard's leadership from *origin* to the roster."""
        group = self.group
        leader = group.leader
        if leader is None:
            return
        advert = RouteAdvert(
            service=group.service,
            shard=group.index,
            leader=leader.name,
            members=tuple(b.name for b in group.members),
            sent_at=origin.sim.now,
        )
        for target in self.roster:
            if target is origin:
                continue
            origin.socket.sendto(advert, target.address)
            origin.metrics.increment("peering.route_adverts_sent")

    def _leader_changed(
        self, group: "ShardGroup", leader: "ServiceBroker"
    ) -> None:
        if leader.alive and not leader.socket.closed:
            self.advertise(leader)

    def handle(self, broker: "ServiceBroker", message: Any) -> bool:
        """Apply a :class:`JournalSync` or :class:`RouteAdvert` at *broker*."""
        if isinstance(message, JournalSync):
            shadow = broker.shard_shadow.setdefault(message.origin, {})
            if message.answered:
                shadow.pop(message.request_id, None)
            else:
                shadow[message.request_id] = message.request
            broker.metrics.increment("peering.journal_syncs_applied")
            return True
        if isinstance(message, RouteAdvert):
            broker.shard_view[(message.service, message.shard)] = message.leader
            broker.metrics.increment("peering.route_adverts_applied")
            return True
        return super().handle(broker, message)

    def __repr__(self) -> str:
        return (
            f"<ShardPeerGroup {self.group.name} "
            f"members={[m.name for m in self._members]}>"
        )
