"""The broker client used by web applications.

"Dynamic applications ... only pass messages to individual service
brokers in some formats that contain their QoS specification and
queries" (paper §III). :class:`BrokerClient` is that message-passing
stub: it routes each call to the broker registered for the named
service over UDP and matches replies to callers by request id.

With the shard tier the client addresses a *service*, not a broker:
:meth:`BrokerClient.use_directory` installs a
:class:`~repro.core.sharding.ShardDirectory`, and calls for services it
knows resolve per attempt through the consistent-hash ring to the owning
shard's live leader (re-resolved on retry, so a timeout after a leader
crash fails over to the freshly elected replica). Services the
directory does not know — and every call when no directory is set —
use the classic static route table, unchanged.

Because UDP is unreliable, calls support a timeout plus retries; on a
lossless LAN (the default testbeds) neither ever fires.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import BrokerTimeout, UnknownServiceError
from ..metrics import MetricsRegistry
from ..net.address import Address
from ..net.network import Node
from ..sim.core import _PENDING, Event, Simulation
from .pipeline import RequestContext
from .protocol import BrokerReply, BrokerRequest

__all__ = ["BrokerClient", "CallSpec"]

#: Specification for one call in :meth:`BrokerClient.call_parallel`:
#: (service, operation, payload, qos_level).
CallSpec = Tuple[str, str, Any, int]


class BrokerClient:
    """Message-passing access point to one or more service brokers."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        routes: Mapping[str, Address],
        default_timeout: Optional[float] = None,
        retries: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.routes: Dict[str, Address] = dict(routes)
        self.default_timeout = default_timeout
        self.retries = retries
        self.metrics = metrics or MetricsRegistry()
        self.socket = node.datagram_socket()
        self._ids = count(1)
        self._pending: Dict[int, Event] = {}
        self._directory = None
        # Hot-path metric handles (per-status ones resolved lazily).
        self._calls = self.metrics.handle("client.calls")
        self._call_time = self.metrics.sample_handle("client.call_time")
        self._replies_by_status: Dict[str, Any] = {}
        sim.process(self._pump(), name=f"broker-client:{node.name}")

    def add_route(self, service: str, address: Address) -> None:
        """Register (or replace) the broker address for *service*."""
        self.routes[service] = address

    def use_directory(self, directory) -> None:
        """Resolve shard-routed services through *directory*.

        *directory* is a :class:`~repro.core.sharding.ShardDirectory`;
        services it knows are addressed per call through the
        consistent-hash ring (deterministic in the request key) to the
        owning shard's current leader. Other services keep using
        :attr:`routes`.
        """
        self._directory = directory

    def _pump(self):
        recv = self.socket.recv
        pending_pop = self._pending.pop
        while True:
            envelope = yield recv()
            reply = envelope.payload
            if not isinstance(reply, BrokerReply):
                self.metrics.increment("client.malformed")
                continue
            waiter = pending_pop(reply.request_id, None)
            if waiter is not None and waiter._value is _PENDING:
                waiter.succeed(reply)
            else:
                self.metrics.increment("client.orphan_replies")

    def call(
        self,
        service: str,
        operation: str,
        payload: Any,
        qos_level: int = 1,
        txn_id: Optional[str] = None,
        txn_step: int = 0,
        cacheable: bool = True,
        cache_key: Optional[str] = None,
        timeout: Optional[float] = None,
        parent: Optional[RequestContext] = None,
    ):
        """Send one request and await its reply; ``yield from`` this.

        Returns the :class:`BrokerReply` (which may be DEGRADED, DROPPED
        or ERROR — callers inspect ``reply.status``). Raises
        :class:`BrokerTimeout` if no reply arrives within *timeout*
        after ``retries`` resends.

        Every attempt originates a fresh
        :class:`~repro.core.pipeline.RequestContext` here, at the
        front-end side; it rides the request through the net layer and
        the broker's stage pipeline, and comes back on
        ``reply.context`` with the complete per-stage timeline. Pass
        the enclosing request's context as *parent* so the obs layer
        (when attached — see :class:`repro.obs.spans.TraceCollector`)
        nests this call's trace under the parent request's trace.
        """
        directory = self._directory
        sharded = directory is not None and directory.knows(service)
        if sharded:
            # The same key the broker's ShardRouteStage derives, so the
            # client-side resolution and the ring agree on the owner.
            routing_key = (
                cache_key
                if cache_key is not None
                else f"{service}:{operation}:{payload!r}"
            )
            address = None
        else:
            address = self.routes.get(service)
            if address is None:
                raise UnknownServiceError(
                    f"no broker registered for service {service!r}"
                )
        deadline = timeout if timeout is not None else self.default_timeout
        attempts = self.retries + 1
        for attempt in range(attempts):
            if sharded:
                # Re-resolved every attempt: a retry after a leader
                # crash routes to the freshly elected replica.
                address = directory.address_for(service, routing_key)
            request_id = next(self._ids)
            started = self.sim._now
            context = RequestContext.originate(
                now=started, origin=self.node.name
            )
            if parent is not None:
                context.parent = parent
            request = BrokerRequest(
                request_id=request_id,
                service=service,
                operation=operation,
                payload=payload,
                reply_to=self.socket.address,
                qos_level=qos_level,
                txn_id=txn_id,
                txn_step=txn_step,
                cacheable=cacheable,
                cache_key=cache_key,
                sent_at=started,
                context=context,
            )
            context.request = request
            waiter = Event(self.sim)
            self._pending[request_id] = waiter
            self._calls.inc()
            self.socket.sendto(request, address)
            if deadline is None:
                reply = yield waiter
            else:
                timer = self.sim.timeout(deadline)
                outcome = yield self.sim.any_of([waiter, timer])
                if waiter not in outcome:
                    self._pending.pop(request_id, None)
                    self.metrics.increment("client.timeouts")
                    continue
                reply = outcome[waiter]
            now = self.sim._now
            status = reply.status._value_
            self._call_time.add(now - started)
            counter = self._replies_by_status.get(status)
            if counter is None:
                counter = self._replies_by_status[status] = self.metrics.handle(
                    f"client.replies.{status}"
                )
            counter.inc()
            if reply.context is not None:
                reply.context.record_stage("client", started, now, status)
                obs = self.sim.obs
                if obs is not None:
                    obs.finish(reply.context)
            return reply
        raise BrokerTimeout(
            f"no reply from {service!r} broker after {attempts} attempt(s)"
        )

    def call_parallel(self, specs: Sequence[CallSpec], timeout: Optional[float] = None):
        """Issue several calls concurrently; ``yield from`` this.

        The paper's *multitasking*: "requests that consist of
        independent heterogeneous tasks can send simultaneous messages
        to service brokers which run in parallel". Returns replies in
        spec order.
        """
        processes = [
            self.sim.process(
                self.call(service, operation, payload, qos_level, timeout=timeout),
                name=f"parallel:{service}",
            )
            for service, operation, payload, qos_level in specs
        ]
        yield self.sim.all_of(processes)
        return [process.value for process in processes]

    def close(self) -> None:
        """Close the client's socket; pending calls will time out."""
        self.socket.close()
