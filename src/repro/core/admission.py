"""Admission control at the broker.

Two independent gates, both from the paper:

1. **Threshold gate** — a request of effective level *c* is admitted
   only while the broker's outstanding count is below
   ``threshold × fraction(c)`` (Section V.B's forward-or-drop rule).
2. **Intensity gate** — "when traffic intensity of QoS classes exceed
   their limits, their requests are dropped and other classes are not
   affected": an optional per-class arrival-rate cap measured over a
   sliding window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..metrics import MetricsRegistry
from ..sim.core import Simulation
from .qos import QoSPolicy

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""

    ACCEPT_REASON = "admitted"
    THRESHOLD_REASON = "qos-threshold"
    INTENSITY_REASON = "class-intensity"


class AdmissionController:
    """Applies the QoS policy's gates to arriving requests."""

    def __init__(
        self,
        sim: Simulation,
        policy: QoSPolicy,
        rate_window: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if rate_window <= 0:
            raise ValueError(f"rate_window must be positive: {rate_window!r}")
        self.sim = sim
        self.policy = policy
        self.rate_window = rate_window
        self.metrics = metrics or MetricsRegistry()
        self.outstanding = 0
        self._arrivals: Dict[int, Deque[float]] = {
            level: deque() for level in range(1, policy.levels + 1)
        }

    # -- outstanding-count bookkeeping (driven by the broker) -----------

    def request_started(self) -> None:
        """A request was admitted (queued or sent to the backend)."""
        self.outstanding += 1

    def request_finished(self) -> None:
        """A previously admitted request has been answered."""
        if self.outstanding <= 0:
            raise RuntimeError("request_finished() without matching start")
        self.outstanding -= 1

    # -- rate estimation ---------------------------------------------------

    def _rate(self, level: int) -> float:
        """Arrivals/second for *level* over the sliding window."""
        window = self._arrivals[level]
        horizon = self.sim.now - self.rate_window
        while window and window[0] <= horizon:
            window.popleft()
        return len(window) / self.rate_window

    def record_arrival(self, level: int) -> None:
        """Note one arrival of *level* (call for every request seen)."""
        level = self.policy.clamp(level)
        self._arrivals[level].append(self.sim.now)

    # -- the decision ------------------------------------------------------

    def decide(self, level: int, protected: bool = False) -> AdmissionDecision:
        """Admit or reject a request of effective QoS *level*.

        *protected* requests (late-step transactions) bypass the
        threshold gate as long as the hard threshold itself is not
        exceeded.
        """
        level = self.policy.clamp(level)
        limit = self.policy.rate_limit(level)
        if limit is not None and self._rate(level) > limit:
            self.metrics.increment(f"admission.rejected.intensity.qos{level}")
            return AdmissionDecision(False, AdmissionDecision.INTENSITY_REASON)
        bound = (
            self.policy.threshold if protected else self.policy.admit_limit(level)
        )
        if self.outstanding >= bound:
            self.metrics.increment(f"admission.rejected.threshold.qos{level}")
            return AdmissionDecision(False, AdmissionDecision.THRESHOLD_REASON)
        self.metrics.increment(f"admission.accepted.qos{level}")
        return AdmissionDecision(True, AdmissionDecision.ACCEPT_REASON)

    def __repr__(self) -> str:
        return (
            f"<AdmissionController outstanding={self.outstanding} "
            f"threshold={self.policy.threshold}>"
        )
