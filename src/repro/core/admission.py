"""Admission control at the broker.

Two independent gates, both from the paper:

1. **Threshold gate** — a request of effective level *c* is admitted
   only while the broker's outstanding count is below
   ``threshold × fraction(c)`` (Section V.B's forward-or-drop rule).
2. **Intensity gate** — "when traffic intensity of QoS classes exceed
   their limits, their requests are dropped and other classes are not
   affected": an optional per-class arrival-rate cap measured over a
   sliding window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..metrics import MetricsRegistry
from ..sim.core import Simulation
from .qos import QoSPolicy

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""

    ACCEPT_REASON = "admitted"
    THRESHOLD_REASON = "qos-threshold"
    INTENSITY_REASON = "class-intensity"


#: Shared immutable decision instances — one admission check runs per
#: arriving request, so :meth:`AdmissionController.decide` avoids
#: allocating a fresh (frozen, hence slow-to-construct) dataclass each
#: time.
_ACCEPT = AdmissionDecision(True, AdmissionDecision.ACCEPT_REASON)
_REJECT_THRESHOLD = AdmissionDecision(False, AdmissionDecision.THRESHOLD_REASON)
_REJECT_INTENSITY = AdmissionDecision(False, AdmissionDecision.INTENSITY_REASON)


class AdmissionController:
    """Applies the QoS policy's gates to arriving requests."""

    def __init__(
        self,
        sim: Simulation,
        policy: QoSPolicy,
        rate_window: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if rate_window <= 0:
            raise ValueError(f"rate_window must be positive: {rate_window!r}")
        self.sim = sim
        self.policy = policy
        self.rate_window = rate_window
        self.metrics = metrics or MetricsRegistry()
        self.outstanding = 0
        self._arrivals: Dict[int, Deque[float]] = {
            level: deque() for level in range(1, policy.levels + 1)
        }
        # The policy is immutable, so the per-level limits and metric
        # names are fixed: precompute one plan per level instead of
        # re-deriving them on every arriving request.
        metrics_ = self.metrics
        self._plans: Dict[int, Tuple] = {
            level: (
                policy.rate_limit(level),
                policy.admit_limit(level),
                metrics_.handle(f"admission.accepted.qos{level}"),
                metrics_.handle(f"admission.rejected.threshold.qos{level}"),
                metrics_.handle(f"admission.rejected.intensity.qos{level}"),
            )
            for level in range(1, policy.levels + 1)
        }

    # -- outstanding-count bookkeeping (driven by the broker) -----------

    def request_started(self) -> None:
        """A request was admitted (queued or sent to the backend)."""
        self.outstanding += 1

    def request_finished(self) -> None:
        """A previously admitted request has been answered."""
        if self.outstanding <= 0:
            raise RuntimeError("request_finished() without matching start")
        self.outstanding -= 1

    # -- rate estimation ---------------------------------------------------

    def _rate(self, level: int) -> float:
        """Arrivals/second for *level* over the sliding window."""
        window = self._arrivals[level]
        horizon = self.sim.now - self.rate_window
        while window and window[0] <= horizon:
            window.popleft()
        return len(window) / self.rate_window

    def record_arrival(self, level: int) -> None:
        """Note one arrival of *level* (call for every request seen)."""
        window = self._arrivals.get(level)
        if window is None:
            window = self._arrivals[self.policy.clamp(level)]
        window.append(self.sim._now)

    # -- the decision ------------------------------------------------------

    def decide(self, level: int, protected: bool = False) -> AdmissionDecision:
        """Admit or reject a request of effective QoS *level*.

        *protected* requests (late-step transactions) bypass the
        threshold gate as long as the hard threshold itself is not
        exceeded.
        """
        plan = self._plans.get(level)
        if plan is None:
            level = self.policy.clamp(level)
            plan = self._plans[level]
        limit, admit_limit, accepted, rejected_threshold, rejected_intensity = plan
        if limit is not None and self._rate(level) > limit:
            rejected_intensity.inc()
            return _REJECT_INTENSITY
        bound = self.policy.threshold if protected else admit_limit
        if self.outstanding >= bound:
            rejected_threshold.inc()
            return _REJECT_THRESHOLD
        accepted.inc()
        return _ACCEPT

    def __repr__(self) -> str:
        return (
            f"<AdmissionController outstanding={self.outstanding} "
            f"threshold={self.policy.threshold}>"
        )
