"""Shard tier: consistent-hash routing, replica groups, leader election.

The paper deploys exactly one service broker per backend service and its
stated weakness (§VI) is the scaling ceiling that follows: the
centralized load listener saturates as brokers multiply and a single
broker per service caps throughput. This module removes the
single-broker assumption. A *service* is now served by N shards × R
replica brokers:

* :class:`HashRing` — a seeded consistent-hash ring with virtual nodes.
  Placement is a pure function of ``(seed, key)`` via BLAKE2b, never
  Python's per-process salted ``hash()``, so the same request key lands
  on the same shard across runs and platforms.
* :class:`ShardGroup` — one shard's replica set, with a deterministic
  bully-style leader election (the highest-priority live replica wins;
  priority is join order). Each replica is tracked by a plain
  :class:`~repro.core.loadbalance.ReplicaHealth`, the same
  outstanding-count/EWMA bookkeeping the backend balancers use — there
  is one health implementation, not a parallel copy in the ring.
* :class:`ShardDirectory` — the service → ring + groups map the front
  end and the :class:`~repro.core.pipeline.ShardRouteStage` consult, so
  callers address a *service* and a request key, never a broker.

Existing single-broker topologies are the degenerate 1-shard/1-replica
configuration: nothing in this module runs unless a directory is built,
and seeded outputs of unsharded experiments are byte-identical.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import BrokerError
from ..metrics import MetricsRegistry
from .loadbalance import ReplicaHealth

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.address import Address
    from .broker import ServiceBroker

__all__ = ["HashRing", "ShardGroup", "ShardDirectory"]


def _point(seed: int, token: str) -> int:
    """Hash *token* onto the 64-bit ring, mixed with *seed*."""
    digest = hashlib.blake2b(
        f"{seed}:{token}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Seeded consistent-hash ring with virtual nodes.

    Each node owns ``vnodes`` points on a 64-bit ring; a key belongs to
    the node owning the first point at or after the key's hash (wrapping
    at the top). Adding a node steals only the key ranges its points
    cover (~K/N of the keyspace), removing a node redistributes only its
    own ranges — the classic consistent-hashing remap bound.
    """

    def __init__(
        self,
        seed: int = 0,
        vnodes: int = 64,
        nodes: Sequence[str] = (),
    ) -> None:
        if vnodes < 1:
            raise BrokerError("HashRing needs at least one virtual node")
        self.seed = seed
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._nodes: Dict[str, None] = {}
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> List[str]:
        """The member node names, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def add(self, node: str) -> None:
        """Place *node*'s virtual points on the ring."""
        if node in self._nodes:
            raise BrokerError(f"node {node!r} already on the ring")
        self._nodes[node] = None
        seed = self.seed
        self._points.extend(
            (_point(seed, f"{node}#{i}"), node) for i in range(self.vnodes)
        )
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove *node* and all of its virtual points."""
        if node not in self._nodes:
            raise BrokerError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._points = [p for p in self._points if p[1] != node]
        self._rebuild()

    def owner(self, key: str) -> str:
        """Return the node owning *key* (deterministic in seed and key)."""
        if not self._points:
            raise BrokerError("lookup on an empty ring")
        index = bisect.bisect_right(self._hashes, _point(self.seed, key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """Return up to *n* distinct nodes in ring order from *key*.

        The first entry is :meth:`owner`; the rest are the natural
        fallback sequence (the nodes whose points follow on the ring).
        """
        if not self._points:
            raise BrokerError("lookup on an empty ring")
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        start = bisect.bisect_right(self._hashes, _point(self.seed, key))
        found: List[str] = []
        seen = set()
        total = len(self._points)
        for step in range(total):
            node = self._points[(start + step) % total][1]
            if node not in seen:
                seen.add(node)
                found.append(node)
                if len(found) == want:
                    break
        return found

    def partition(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Group *keys* by owning node: ``{node: [keys...]}``.

        Every member node appears in the result (possibly with an empty
        list), in insertion order; within a node, keys keep their input
        order. This is the partitioning primitive the parallel scenario
        driver uses to split a workload's key space into per-shard
        slices whose union is exactly the original key population.
        """
        buckets: Dict[str, List[str]] = {node: [] for node in self._nodes}
        for key in keys:
            buckets[self.owner(key)].append(key)
        return buckets

    def __repr__(self) -> str:
        return (
            f"<HashRing seed={self.seed} vnodes={self.vnodes} "
            f"nodes={self.nodes}>"
        )


class ShardGroup:
    """One shard's replica set with bully-style leader election.

    Replicas join in priority order: the earliest-joined live replica is
    the bully winner (classic "highest id wins", with id = negative join
    index). :meth:`elect` is deterministic and synchronous — it polls
    members in priority order and promotes the first live one — so
    concurrent failures converge to the same leader on every seeded run.

    Each member is shadowed by a
    :class:`~repro.core.loadbalance.ReplicaHealth`, shared with any
    balancer that routes across the group (see
    :mod:`repro.core.loadbalance`).
    """

    def __init__(
        self,
        service: str,
        index: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.service = service
        self.index = index
        self.metrics = metrics or MetricsRegistry()
        self._members: List["ServiceBroker"] = []
        self._by_name: Dict[str, "ServiceBroker"] = {}
        self._health: Dict[str, ReplicaHealth] = {}
        self._up: Dict[str, bool] = {}
        self._leader: Optional["ServiceBroker"] = None
        self.elections = 0
        self.election_rounds = 0
        #: Called as ``on_leader_change(group, new_leader)`` after every
        #: election that changes the leader (peering uses this to
        #: broadcast a ``RouteAdvert``).
        self.on_leader_change: Optional[Callable[..., None]] = None

    @property
    def name(self) -> str:
        """Stable shard label, e.g. ``svc1/shard2``."""
        return f"{self.service}/shard{self.index}"

    @property
    def members(self) -> List["ServiceBroker"]:
        """The replica brokers, in priority (join) order."""
        return list(self._members)

    @property
    def healths(self) -> List[ReplicaHealth]:
        """Replica health records, aligned with :attr:`members`."""
        return [self._health[b.name] for b in self._members]

    @property
    def leader(self) -> Optional["ServiceBroker"]:
        """The current leader (may be stale; :meth:`route` revalidates)."""
        return self._leader

    def member(self, name: str) -> Optional["ServiceBroker"]:
        """Look up a member broker by name."""
        return self._by_name.get(name)

    def health_of(self, name: str) -> ReplicaHealth:
        """The shared :class:`ReplicaHealth` for member *name*."""
        return self._health[name]

    def add(self, broker: "ServiceBroker") -> None:
        """Join *broker* as the next (lower-priority) replica."""
        if broker.name in self._by_name:
            raise BrokerError(f"{broker.name} already in {self.name}")
        self._members.append(broker)
        self._by_name[broker.name] = broker
        self._health[broker.name] = ReplicaHealth(label=broker.name)
        self._up[broker.name] = True
        broker.shard_group = self
        if self._leader is None:
            self.elect()

    def leave(self, name: str) -> None:
        """Remove member *name* for good (graceful decommission).

        The departing broker is purged from the membership, health, and
        up-tables; if it led the shard, leadership is handed off by an
        immediate election among the survivors (firing
        ``on_leader_change``, so leader-only load reporting follows the
        hand-off). Unknown names are ignored, making the drain protocol
        idempotent.
        """
        broker = self._by_name.pop(name, None)
        if broker is None:
            return
        self._members.remove(broker)
        self._health.pop(name, None)
        self._up.pop(name, None)
        if broker.shard_group is self:
            broker.shard_group = None
        self.metrics.increment("shard.member_left")
        if self._leader is broker:
            self._leader = None
            if self._members:
                self.elect()

    def elect(self) -> Optional["ServiceBroker"]:
        """Run a bully election; return and install the winner.

        Polls members in priority order (one "round" counted per member
        challenged) and promotes the first that is both marked up and
        actually alive. Returns ``None`` when every replica is down.
        """
        self.elections += 1
        winner: Optional["ServiceBroker"] = None
        for broker in self._members:
            self.election_rounds += 1
            if self._up.get(broker.name, False) and broker.alive:
                winner = broker
                break
        previous, self._leader = self._leader, winner
        if winner is not None:
            self.metrics.increment("shard.elections")
            if winner is not previous and self.on_leader_change is not None:
                self.on_leader_change(self, winner)
        return winner

    def note_down(self, name: str) -> None:
        """Mark member *name* down; re-elect if it led the shard."""
        if name not in self._by_name or not self._up.get(name, False):
            return
        self._up[name] = False
        health = self._health[name]
        health.consecutive_errors = max(
            health.consecutive_errors, ReplicaHealth.UNHEALTHY_AFTER
        )
        self.metrics.increment("shard.member_down")
        if self._leader is not None and self._leader.name == name:
            self.elect()

    def note_up(self, name: str) -> None:
        """Mark member *name* back up; a higher-priority return re-elects."""
        if name not in self._by_name or self._up.get(name, False):
            return
        self._up[name] = True
        self._health[name].consecutive_errors = 0
        self.metrics.increment("shard.member_up")
        returned = self._by_name[name]
        if self._leader is None or self._members.index(returned) < self._members.index(
            self._leader
        ):
            # Bully takeover: a returning higher-priority replica
            # reclaims leadership.
            self.elect()

    def on_supervisor_event(self, broker: "ServiceBroker", up: bool) -> None:
        """Supervisor listener adapter: map up/down detections to the group."""
        if broker.name not in self._by_name:
            return
        if up:
            self.note_up(broker.name)
        else:
            self.note_down(broker.name)

    def route(self) -> Optional["ServiceBroker"]:
        """Return the live leader, re-electing around stale leadership.

        A crash the supervisor has not yet flagged shows up here as a
        leader with ``alive == False``; routing detects it and runs the
        election inline, so the very next request already lands on the
        new leader.
        """
        leader = self._leader
        if leader is not None and self._up.get(leader.name, False) and leader.alive:
            return leader
        if leader is not None and not leader.alive:
            self.note_down(leader.name)
        else:
            self.elect()
        leader = self._leader
        if leader is not None and leader.alive:
            return leader
        return None

    def __repr__(self) -> str:
        leader = self._leader.name if self._leader is not None else None
        return f"<ShardGroup {self.name} members={len(self._members)} leader={leader}>"


class ShardDirectory:
    """Service → shard topology map: one ring plus R-replica groups each.

    The front end (:class:`~repro.core.client.BrokerClient`) and the
    :class:`~repro.core.pipeline.ShardRouteStage` resolve a
    ``(service, request key)`` pair through the directory: the ring
    names the owning shard, the shard's :class:`ShardGroup` names the
    live leader. Services not registered here fall back to the classic
    one-broker route table, which keeps unsharded topologies untouched.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._rings: Dict[str, HashRing] = {}
        self._groups: Dict[str, Dict[int, ShardGroup]] = {}

    @property
    def services(self) -> List[str]:
        """Registered service names, in registration order."""
        return list(self._rings)

    def __contains__(self, service: str) -> bool:
        return service in self._rings

    def knows(self, service: str) -> bool:
        """Whether *service* is shard-routed through this directory."""
        return service in self._rings

    def register(
        self,
        service: str,
        groups: Sequence[ShardGroup],
        seed: int = 0,
        vnodes: int = 64,
        universe: Optional[Sequence[int]] = None,
    ) -> HashRing:
        """Register *service* with its shard *groups*; returns the ring.

        *universe* names every shard index that exists in the logical
        topology; it defaults to the indices of *groups*. A parallel
        partition slice (see :mod:`repro.sim.parallel`) instantiates
        brokers for only its own shard but must build the ring over the
        **full** universe so ``key -> shard`` placement is identical to
        the unpartitioned topology; routing a key owned by an
        uninstantiated shard then fails loudly rather than silently
        rehashing onto the local one.
        """
        if service in self._rings:
            raise BrokerError(f"service {service!r} already registered")
        if not groups:
            raise BrokerError(f"service {service!r} needs at least one shard")
        indices = [g.index for g in groups]
        if universe is None:
            universe = indices
        missing = set(indices) - set(universe)
        if missing:
            raise BrokerError(
                f"groups {sorted(missing)} not in the ring universe "
                f"{sorted(universe)} for service {service!r}"
            )
        ring = HashRing(
            seed=seed, vnodes=vnodes, nodes=[str(i) for i in universe]
        )
        self._rings[service] = ring
        self._groups[service] = {g.index: g for g in groups}
        return ring

    def ring(self, service: str) -> HashRing:
        """The consistent-hash ring for *service*."""
        return self._rings[service]

    def groups(self, service: str) -> List[ShardGroup]:
        """All shard groups for *service*, in shard order."""
        return [self._groups[service][i] for i in sorted(self._groups[service])]

    def group(self, service: str, shard: int) -> ShardGroup:
        """The :class:`ShardGroup` serving (*service*, *shard*)."""
        try:
            return self._groups[service][shard]
        except KeyError:
            raise BrokerError(
                f"shard {shard} of service {service!r} is not instantiated "
                f"in this partition (ring universe is wider than the local "
                f"groups)"
            ) from None

    def shard_of(self, service: str, key: str) -> int:
        """The shard index owning *key* for *service*."""
        return int(self._rings[service].owner(key))

    def route(self, service: str, key: str) -> Optional["ServiceBroker"]:
        """The live leader broker for (*service*, *key*), or ``None``."""
        return self.group(service, self.shard_of(service, key)).route()

    def address_for(self, service: str, key: str) -> "Address":
        """Resolve the UDP address the front end should send to."""
        broker = self.route(service, key)
        if broker is None:
            raise BrokerError(
                f"no live replica for service {service!r} "
                f"(shard {self.shard_of(service, key)})"
            )
        return broker.address

    def describe(self) -> str:
        """Human-readable topology dump (``repro shard --describe``)."""
        lines = []
        for service in self._rings:
            ring = self._rings[service]
            lines.append(
                f"{service}: {len(ring)} shard(s), "
                f"{ring.vnodes} vnodes, seed {ring.seed}"
            )
            for group in self.groups(service):
                leader = group.leader.name if group.leader is not None else "-"
                members = ", ".join(
                    f"{b.name}{'*' if group.leader is b else ''}"
                    for b in group.members
                )
                lines.append(
                    f"  shard {group.index}: leader={leader} "
                    f"replicas=[{members}] elections={group.elections}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ShardDirectory services={self.services}>"
