"""Hot-spot detection and notification.

Paper §III, *Backend server overload control*: "Service brokers ...
are aware of the states of the associated backend servers. Service
brokers can notify request schedulers about the onset of hot spots."
And §II: in the API model, "hot spots generated in backend servers are
at most known to those who are using the service" — other processes keep
piling in.

A :class:`HotSpotMonitor` watches one broker's outstanding load and
publishes :class:`HotSpotNotice` datagrams to subscribed request
schedulers (front-end admission hooks, dashboards) when the service
enters or leaves the hot state. Hysteresis (separate onset/clear
thresholds, expressed as fractions of the QoS threshold) prevents
flapping.

:class:`HotSpotGate` is a ready-made front-end admission hook that
consumes the notices: while a service is hot, requests whose URL profile
needs that service are rejected at the door.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import BrokerError
from ..http.messages import HttpRequest
from ..metrics import MetricsRegistry
from ..net.address import Address
from ..net.network import Node
from ..sim.core import Simulation
from .broker import ServiceBroker
from .centralized import ResourceProfileRegistry

__all__ = ["HotSpotNotice", "HotSpotMonitor", "HotSpotGate"]


@dataclass(frozen=True)
class HotSpotNotice:
    """A broker's announcement that its service became (or stopped being) hot."""

    service: str
    broker: str
    hot: bool
    outstanding: int
    threshold: int
    sent_at: float


class HotSpotMonitor:
    """Watches a broker's load and notifies subscribers of hot-spot onset.

    Parameters
    ----------
    broker:
        The broker whose backend service is monitored.
    onset_fraction / clear_fraction:
        Hysteresis band, as fractions of the broker's QoS threshold.
        The service turns *hot* when outstanding load reaches
        ``onset_fraction x threshold`` and *cool* again only once it
        falls below ``clear_fraction x threshold``.
    poll_interval:
        How often the monitor samples the broker's load.
    """

    def __init__(
        self,
        broker: ServiceBroker,
        onset_fraction: float = 0.8,
        clear_fraction: float = 0.5,
        poll_interval: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 < clear_fraction < onset_fraction <= 1.5:
            raise BrokerError(
                "need 0 < clear_fraction < onset_fraction; got "
                f"{clear_fraction!r} / {onset_fraction!r}"
            )
        if poll_interval <= 0:
            raise BrokerError(f"poll_interval must be positive: {poll_interval!r}")
        self.broker = broker
        self.sim: Simulation = broker.sim
        self.onset = onset_fraction * broker.qos.threshold
        self.clear = clear_fraction * broker.qos.threshold
        self.poll_interval = poll_interval
        self.metrics = metrics or broker.metrics
        self.hot = False
        self._subscribers: List[Address] = []
        self.sim.process(self._watch(), name=f"hotspot:{broker.name}")

    def subscribe(self, address: Address) -> None:
        """Deliver notices to the datagram socket at *address*."""
        if address not in self._subscribers:
            self._subscribers.append(address)

    def _publish(self) -> None:
        notice = HotSpotNotice(
            service=self.broker.service,
            broker=self.broker.name,
            hot=self.hot,
            outstanding=self.broker.outstanding,
            threshold=self.broker.qos.threshold,
            sent_at=self.sim.now,
        )
        for address in self._subscribers:
            self.broker.socket.sendto(notice, address)
        self.metrics.increment(
            "hotspot.onsets" if self.hot else "hotspot.clears"
        )

    def _watch(self):
        while True:
            yield self.poll_interval
            load = self.broker.outstanding
            if not self.hot and load >= self.onset:
                self.hot = True
                self._publish()
            elif self.hot and load < self.clear:
                self.hot = False
                self._publish()

    def __repr__(self) -> str:
        return (
            f"<HotSpotMonitor {self.broker.service!r} "
            f"{'HOT' if self.hot else 'cool'} onset={self.onset:g}>"
        )


class HotSpotGate:
    """Front-end admission hook driven by hot-spot notices.

    Install as ``FrontendWebServer(admission=gate.admit)`` and subscribe
    its :attr:`address` to the relevant monitors. While a service is
    hot, requests whose URL profile requires it are rejected before a
    server process is allocated — exactly the "request scheduler"
    reaction the paper sketches, without the centralized model's
    continuous load stream.
    """

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        profiles: ResourceProfileRegistry,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.profiles = profiles
        self.metrics = metrics or MetricsRegistry()
        self.socket = node.datagram_socket()
        self.address = self.socket.address
        self.hot_services: Dict[str, HotSpotNotice] = {}
        sim.process(self._listen(), name="hotspot-gate")

    def _listen(self):
        while True:
            envelope = yield self.socket.recv()
            notice = envelope.payload
            if not isinstance(notice, HotSpotNotice):
                self.metrics.increment("gate.malformed")
                continue
            if notice.hot:
                self.hot_services[notice.service] = notice
            else:
                self.hot_services.pop(notice.service, None)
            self.metrics.increment("gate.notices")

    def is_hot(self, service: str) -> bool:
        """True while *service* is marked hot."""
        return service in self.hot_services

    def admit(self, request: HttpRequest) -> Tuple[bool, str]:
        """Admission decision: reject if any required service is hot."""
        for service in self.profiles.services_for(request.path):
            if service in self.hot_services:
                self.metrics.increment("gate.rejected")
                return False, f"service {service!r} is a hot spot"
        self.metrics.increment("gate.admitted")
        return True, ""
