"""Idle-time prefetching.

"Service brokers enable forecasting of the next possible queries and
prefetching the necessary information ... when the server load is not
high" (paper §III, the news-headline example). A :class:`Prefetcher`
owns a set of rules; each rule periodically refreshes one query's cache
entry, but only while the broker is idle (outstanding load at or below
``idle_threshold``) so prefetch traffic never competes with real
requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..errors import BrokerError, ReproError
from ..metrics import MetricsRegistry
from ..sim.core import Simulation
from .broker import ServiceBroker

__all__ = ["PrefetchRule", "Prefetcher"]


@dataclass(frozen=True)
class PrefetchRule:
    """One periodic prefetch: refresh *cache_key* every *period* seconds."""

    operation: str
    payload: Any
    cache_key: str
    period: float
    ttl: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise BrokerError(f"prefetch period must be positive: {self.period!r}")


class Prefetcher:
    """Runs prefetch rules against a broker's backends during idle time."""

    def __init__(
        self,
        broker: ServiceBroker,
        rules: Sequence[PrefetchRule],
        idle_threshold: int = 0,
        backoff: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if broker.cache is None:
            raise BrokerError("prefetching requires the broker to have a cache")
        if backoff <= 0:
            raise BrokerError(f"backoff must be positive: {backoff!r}")
        self.broker = broker
        self.sim: Simulation = broker.sim
        self.rules: List[PrefetchRule] = list(rules)
        self.idle_threshold = idle_threshold
        self.backoff = backoff
        self.metrics = metrics or broker.metrics
        self._processes = [
            self.sim.process(self._run_rule(rule), name=f"prefetch:{rule.cache_key}")
            for rule in self.rules
        ]

    def _run_rule(self, rule: PrefetchRule):
        while True:
            yield rule.period
            # Wait for an idle moment; a busy broker postpones prefetch.
            deferred = 0.0
            while self.broker.outstanding > self.idle_threshold:
                yield self.backoff
                deferred += self.backoff
                if deferred >= rule.period:
                    self.metrics.increment("prefetch.skipped_busy")
                    break
            else:
                yield from self._fetch(rule)

    def _fetch(self, rule: PrefetchRule):
        try:
            result = yield from self.broker.execute_direct(rule.operation, rule.payload)
        except ReproError:
            self.metrics.increment("prefetch.errors")
            return
        assert self.broker.cache is not None
        self.broker.cache.put(rule.cache_key, result, ttl=rule.ttl)
        self.metrics.increment("prefetch.refreshes")

    def __repr__(self) -> str:
        return f"<Prefetcher rules={len(self.rules)} broker={self.broker.name}>"
