"""Persistent connection pool between a broker and one backend.

"In the proposed approach, DB brokers maintain persistent connection
thus saving the cost of connection setup" (paper §III). The pool opens
at most ``max_size`` connections lazily, hands them out to dispatchers,
and reuses them across requests; the API baseline, by contrast, pays the
handshake on every single operation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..errors import BrokerError
from ..metrics import MetricsRegistry
from ..sim.core import Event, Simulation
from .adapters import ServiceAdapter

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """Bounded pool of persistent backend connections."""

    def __init__(
        self,
        sim: Simulation,
        adapter: ServiceAdapter,
        max_size: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_size < 1:
            raise BrokerError(f"pool max_size must be >= 1: {max_size!r}")
        self.sim = sim
        self.adapter = adapter
        self.max_size = max_size
        self.metrics = metrics or MetricsRegistry()
        self._idle: List[Any] = []
        self._waiters: Deque[Event] = deque()
        self._count = 0  # connections existing or being established

    @property
    def size(self) -> int:
        """Connections currently existing (idle + checked out)."""
        return self._count

    @property
    def idle(self) -> int:
        return len(self._idle)

    def acquire(self):
        """Obtain a connection; a ``yield from`` generator.

        Reuses an idle healthy connection, creates a new one under the
        cap, or waits for a release.
        """
        while True:
            while self._idle:
                connection = self._idle.pop()
                if getattr(connection, "closed", False):
                    self._count -= 1
                    continue
                self.metrics.increment("pool.reused")
                return connection
            if self._count < self.max_size:
                self._count += 1
                try:
                    connection = yield from self.adapter.connect()
                except BaseException:
                    self._count -= 1
                    raise
                self.metrics.increment("pool.created")
                return connection
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            started = self.sim.now
            connection = yield waiter
            self.metrics.observe("pool.wait_time", self.sim.now - started)
            if connection is not None and not getattr(connection, "closed", False):
                self.metrics.increment("pool.reused")
                return connection
            # Handed a broken connection or a retry token: loop again.
            if connection is not None:
                self._count -= 1

    def release(self, connection: Any, discard: bool = False) -> None:
        """Return a connection; ``discard`` drops it (broken/poisoned)."""
        if discard or getattr(connection, "closed", False):
            self._count -= 1
            self.metrics.increment("pool.discarded")
            # A slot opened up: let one waiter retry (it will create).
            self._wake(None)
            return
        if not self._wake(connection):
            self._idle.append(connection)

    def _wake(self, connection: Any) -> bool:
        """Hand *connection* (or a retry token) to the next waiter."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(connection)
                return True
        return False

    def drain(self):
        """Close all idle connections; a ``yield from`` generator."""
        while self._idle:
            connection = self._idle.pop()
            self._count -= 1
            if not getattr(connection, "closed", False):
                yield from self.adapter.close(connection)

    def __repr__(self) -> str:
        return f"<ConnectionPool {self.adapter.name} size={self._count} idle={self.idle}>"
