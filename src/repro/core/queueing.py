"""The broker's request queue.

Requests wait here between admission and dispatch. The queue serves
strict priority by *effective* QoS level (transaction escalation may
raise a request above its nominal class — see
:mod:`repro.core.transactions`), FCFS within a level. "Service brokers
receive, sort and rewrite these messages according to their QoS levels"
— the sorting happens here; dispatchers pull from the front.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from ..sim.core import Event, Simulation
from .protocol import BrokerRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import RequestContext

__all__ = ["BrokerQueue", "QueuedRequest"]


class QueuedRequest:
    """A request plus its queueing metadata.

    ``context`` is the request's pipeline :class:`RequestContext`; it
    rides through the queue so dispatch stages can keep appending to
    the same per-request timeline.
    """

    __slots__ = (
        "request", "effective_level", "enqueued_at", "seq", "claimed", "context"
    )

    def __init__(
        self,
        request: BrokerRequest,
        effective_level: int,
        enqueued_at: float,
        seq: int,
        context: Optional["RequestContext"] = None,
    ) -> None:
        self.request = request
        self.effective_level = effective_level
        self.enqueued_at = enqueued_at
        self.seq = seq
        self.claimed = False
        self.context = context

    def sort_key(self) -> Tuple[int, int]:
        """Heap ordering: (effective level, arrival sequence)."""
        return (self.effective_level, self.seq)


class _QueueGet(Event):
    """Pending dispatcher pull."""

    __slots__ = ("cancelled",)

    def __init__(self, sim: Simulation) -> None:
        super().__init__(sim)
        self.cancelled = False


class BrokerQueue:
    """Priority queue of admitted requests.

    ``priority_of`` computes a request's effective level at enqueue time
    (defaults to its nominal QoS level); :meth:`reprioritize` re-sorts
    the backlog after the function's answers change (the paper's
    "reshuffle the queued requests").
    """

    def __init__(
        self,
        sim: Simulation,
        priority_of: Optional[Callable[[BrokerRequest], int]] = None,
    ) -> None:
        self.sim = sim
        self.priority_of = priority_of or (lambda request: request.qos_level)
        self._heap: List[Tuple[int, int, QueuedRequest]] = []
        self._seq = count()
        self._getters: Deque[_QueueGet] = deque()
        # Live count of unclaimed entries; claimed items stay on the
        # heap as tombstones, so len() must not scan it.
        self._waiting = 0

    def __len__(self) -> int:
        return self._waiting

    @property
    def depth(self) -> int:
        """Number of requests waiting (alias of ``len``)."""
        return len(self)

    def put(
        self, request: BrokerRequest, context: Optional["RequestContext"] = None
    ) -> QueuedRequest:
        """Enqueue an admitted request (with its pipeline context, if any)."""
        item = QueuedRequest(
            request=request,
            effective_level=self.priority_of(request),
            enqueued_at=self.sim.now,
            seq=next(self._seq),
            context=context,
        )
        heapq.heappush(self._heap, (*item.sort_key(), item))
        self._waiting += 1
        self._dispatch()
        return item

    def get(self) -> _QueueGet:
        """Event succeeding with the highest-priority :class:`QueuedRequest`."""
        event = _QueueGet(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending get."""
        if isinstance(event, _QueueGet) and not event.triggered:
            event.cancelled = True

    def take_matching(
        self, predicate: Callable[[QueuedRequest], bool], limit: int
    ) -> List[QueuedRequest]:
        """Claim up to *limit* queued requests satisfying *predicate*.

        Used by the clustering engine to gather batch companions for a
        request already pulled by a dispatcher. Claimed requests are
        removed from the queue (lazily, via a tombstone flag).
        """
        taken: List[QueuedRequest] = []
        if limit <= 0:
            return taken
        for _, _, item in sorted(self._heap, key=lambda e: (e[0], e[1])):
            if item.claimed:
                continue
            if predicate(item):
                item.claimed = True
                self._waiting -= 1
                taken.append(item)
                if len(taken) >= limit:
                    break
        return taken

    def snapshot(self) -> List[QueuedRequest]:
        """The waiting requests in service order (for inspection)."""
        return [
            item
            for _, _, item in sorted(self._heap, key=lambda e: (e[0], e[1]))
            if not item.claimed
        ]

    def reprioritize(self) -> None:
        """Recompute effective levels and re-sort the backlog."""
        items = [item for _, _, item in self._heap if not item.claimed]
        self._heap = []
        for item in items:
            item.effective_level = self.priority_of(item.request)
            heapq.heappush(self._heap, (*item.sort_key(), item))

    def _dispatch(self) -> None:
        while self._getters and self._heap:
            # Skip tombstoned (claimed) heap entries.
            while self._heap and self._heap[0][2].claimed:
                heapq.heappop(self._heap)
            if not self._heap:
                return
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            _, _, item = heapq.heappop(self._heap)
            item.claimed = True
            self._waiting -= 1
            getter.succeed(item)

    def __repr__(self) -> str:
        return f"<BrokerQueue depth={len(self)}>"
