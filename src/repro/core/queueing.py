"""The broker's request queue.

Requests wait here between admission and dispatch. The queue serves
strict priority by *effective* QoS level (transaction escalation may
raise a request above its nominal class — see
:mod:`repro.core.transactions`), FCFS within a level. "Service brokers
receive, sort and rewrite these messages according to their QoS levels"
— the sorting happens here; dispatchers pull from the front.

The queue is unbounded by default (the paper's testbed). A capacity
and shedding policy can be installed via :meth:`BrokerQueue.configure`
— normally done by
:class:`~repro.core.pipeline.BackpressureStage` — after which
:meth:`BrokerQueue.put` sheds work instead of letting the backlog grow
without limit (see :data:`SHED_POLICIES`).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from ..sim.core import Event, Simulation
from .protocol import BrokerRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import RequestContext

__all__ = ["BrokerQueue", "QueuedRequest", "SHED_POLICIES"]

#: Shedding policies a bounded queue understands (see
#: :meth:`BrokerQueue.configure`):
#:
#: * ``"reject-new"`` — a full queue refuses the arrival itself;
#: * ``"drop-oldest"`` — evict the longest-waiting request to make room;
#: * ``"drop-lowest"`` — evict the worst (lowest-class, youngest)
#:   request, but only when it is strictly lower-class than the
#:   arrival; equal-class arrivals are rejected to preserve FCFS.
SHED_POLICIES: Tuple[str, ...] = ("reject-new", "drop-oldest", "drop-lowest")


class QueuedRequest:
    """A request plus its queueing metadata.

    ``context`` is the request's pipeline :class:`RequestContext`; it
    rides through the queue so dispatch stages can keep appending to
    the same per-request timeline.
    """

    __slots__ = (
        "request", "effective_level", "enqueued_at", "seq", "claimed", "context"
    )

    def __init__(
        self,
        request: BrokerRequest,
        effective_level: int,
        enqueued_at: float,
        seq: int,
        context: Optional["RequestContext"] = None,
    ) -> None:
        self.request = request
        self.effective_level = effective_level
        self.enqueued_at = enqueued_at
        self.seq = seq
        self.claimed = False
        self.context = context

    def sort_key(self) -> Tuple[int, int]:
        """Heap ordering: (effective level, arrival sequence)."""
        return (self.effective_level, self.seq)


class _QueueGet(Event):
    """Pending dispatcher pull."""

    __slots__ = ("cancelled",)

    def __init__(self, sim: Simulation) -> None:
        super().__init__(sim)
        self.cancelled = False


class BrokerQueue:
    """Priority queue of admitted requests.

    ``priority_of`` computes a request's effective level at enqueue time
    (defaults to its nominal QoS level); :meth:`reprioritize` re-sorts
    the backlog after the function's answers change (the paper's
    "reshuffle the queued requests").

    With a *capacity* configured the queue becomes bounded:
    :meth:`put` either evicts a queued victim (handed to the
    ``on_shed`` callback) or returns ``None`` to signal that the
    arrival itself was shed — the caller owes the client an immediate
    low-fidelity "busy" reply.
    """

    def __init__(
        self,
        sim: Simulation,
        priority_of: Optional[Callable[[BrokerRequest], int]] = None,
        capacity: Optional[int] = None,
        shed_policy: str = "reject-new",
        on_shed: Optional[Callable[[QueuedRequest, str], None]] = None,
    ) -> None:
        self.sim = sim
        self.priority_of = priority_of or (lambda request: request.qos_level)
        self._heap: List[Tuple[int, int, QueuedRequest]] = []
        self._seq = count()
        self._getters: Deque[_QueueGet] = deque()
        # Live count of unclaimed entries; claimed items stay on the
        # heap as tombstones, so len() must not scan it.
        self._waiting = 0
        self.capacity: Optional[int] = None
        self.shed_policy = "reject-new"
        self.on_shed: Optional[Callable[[QueuedRequest, str], None]] = None
        #: Deepest backlog ever observed (for the queue-bound invariant).
        self.peak_depth = 0
        #: Requests shed by the bound — evictions and rejected arrivals.
        self.shed_count = 0
        self.configure(capacity, shed_policy, on_shed)

    def __len__(self) -> int:
        return self._waiting

    @property
    def depth(self) -> int:
        """Number of requests waiting (alias of ``len``)."""
        return len(self)

    def configure(
        self,
        capacity: Optional[int],
        shed_policy: str = "reject-new",
        on_shed: Optional[Callable[[QueuedRequest, str], None]] = None,
    ) -> None:
        """Install (or remove, with ``capacity=None``) a queue bound.

        *on_shed* is invoked as ``on_shed(victim, policy)`` for every
        **queued** request evicted to make room; rejected arrivals are
        reported by :meth:`put` returning ``None`` instead.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        self.capacity = capacity
        self.shed_policy = shed_policy
        self.on_shed = on_shed

    def put(
        self, request: BrokerRequest, context: Optional["RequestContext"] = None
    ) -> Optional[QueuedRequest]:
        """Enqueue an admitted request (with its pipeline context, if any).

        Returns ``None`` when a configured capacity sheds the arrival
        itself (``reject-new``, or no strictly-worse victim exists) —
        the caller must answer the request immediately.
        """
        # A full heap implies no waiting getters: _dispatch drains the
        # heap whenever a getter is pending, so the bound only matters
        # on the no-consumer path.
        if self.capacity is not None and self._waiting >= self.capacity:
            if not self._make_room(request):
                self.shed_count += 1
                return None
        item = QueuedRequest(
            request=request,
            effective_level=self.priority_of(request),
            enqueued_at=self.sim.now,
            seq=next(self._seq),
            context=context,
        )
        heapq.heappush(self._heap, (*item.sort_key(), item))
        self._waiting += 1
        if self._waiting > self.peak_depth:
            self.peak_depth = self._waiting
        self._dispatch()
        return item

    def _make_room(self, request: BrokerRequest) -> bool:
        """Evict one queued victim per the shed policy; False = reject arrival."""
        policy = self.shed_policy
        if policy == "reject-new":
            return False
        victim: Optional[QueuedRequest] = None
        if policy == "drop-oldest":
            for _, _, item in self._heap:
                if item.claimed:
                    continue
                if victim is None or item.seq < victim.seq:
                    victim = item
        else:  # drop-lowest
            for _, _, item in self._heap:
                if item.claimed:
                    continue
                if victim is None or item.sort_key() > victim.sort_key():
                    victim = item
            # Only evict strictly worse work: an arrival no better than
            # everything queued is rejected, preserving FCFS in-class.
            if victim is not None and victim.effective_level <= self.priority_of(
                request
            ):
                return False
        if victim is None:
            return False
        victim.claimed = True
        self._waiting -= 1
        self.shed_count += 1
        if self.on_shed is not None:
            self.on_shed(victim, policy)
        return True

    def get(self) -> _QueueGet:
        """Event succeeding with the highest-priority :class:`QueuedRequest`."""
        event = _QueueGet(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending get."""
        if isinstance(event, _QueueGet) and not event.triggered:
            event.cancelled = True

    def take_matching(
        self, predicate: Callable[[QueuedRequest], bool], limit: int
    ) -> List[QueuedRequest]:
        """Claim up to *limit* queued requests satisfying *predicate*.

        Used by the clustering engine to gather batch companions for a
        request already pulled by a dispatcher. Claimed requests are
        removed from the queue (lazily, via a tombstone flag).
        """
        taken: List[QueuedRequest] = []
        if limit <= 0:
            return taken
        for _, _, item in sorted(self._heap, key=lambda e: (e[0], e[1])):
            if item.claimed:
                continue
            if predicate(item):
                item.claimed = True
                self._waiting -= 1
                taken.append(item)
                if len(taken) >= limit:
                    break
        return taken

    def gauges(self) -> "dict[str, Callable[[], float]]":
        """Depth and shed readings as named gauge callables.

        The canonical sampling surface for in-flight telemetry: a
        :class:`~repro.obs.telemetry.TelemetryScraper` registers these
        once (via :meth:`ServiceBroker.load_gauges
        <repro.core.broker.ServiceBroker.load_gauges>`) instead of
        reaching into queue internals at every scrape. ``queue_depth``
        and ``peak_depth`` are instantaneous readings; ``shed`` is the
        cumulative shed counter, so its scrape series behaves like any
        other counter (deltas/rates are meaningful).
        """
        return {
            "queue_depth": lambda: float(len(self)),
            "peak_depth": lambda: float(self.peak_depth),
            "shed": lambda: float(self.shed_count),
        }

    def snapshot(self) -> List[QueuedRequest]:
        """The waiting requests in service order (for inspection)."""
        return [
            item
            for _, _, item in sorted(self._heap, key=lambda e: (e[0], e[1]))
            if not item.claimed
        ]

    def reprioritize(self) -> None:
        """Recompute effective levels and re-sort the backlog."""
        items = [item for _, _, item in self._heap if not item.claimed]
        self._heap = []
        for item in items:
            item.effective_level = self.priority_of(item.request)
            heapq.heappush(self._heap, (*item.sort_key(), item))

    def reset(self) -> List[QueuedRequest]:
        """Discard the backlog (a broker crash); returns the orphans.

        Every waiting item is tombstoned so any stage still holding a
        reference sees it as claimed, and pending getters are cancelled
        — the dispatcher processes that created them die with the
        broker. Capacity, policy, and the peak/shed statistics survive.
        """
        orphans = self.snapshot()
        for item in orphans:
            item.claimed = True
        self._heap = []
        self._waiting = 0
        for getter in self._getters:
            getter.cancelled = True
        self._getters.clear()
        return orphans

    def _dispatch(self) -> None:
        while self._getters and self._heap:
            # Skip tombstoned (claimed) heap entries.
            while self._heap and self._heap[0][2].claimed:
                heapq.heappop(self._heap)
            if not self._heap:
                return
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            _, _, item = heapq.heappop(self._heap)
            item.claimed = True
            self._waiting -= 1
            getter.succeed(item)

    def __repr__(self) -> str:
        return f"<BrokerQueue depth={len(self)}>"
