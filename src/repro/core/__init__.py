"""The service broker framework — the paper's primary contribution."""

from .admission import AdmissionController, AdmissionDecision
from .adapters import (
    DatabaseAdapter,
    DirectoryAdapter,
    FileAdapter,
    HttpAdapter,
    MailAdapter,
    ServiceAdapter,
)
from .broker import DEFAULT_BROKER_PORT, ServiceBroker
from .cache import CacheEntry, CacheStats, ResultCache
from .centralized import (
    CentralizedController,
    LoadListener,
    LoadReport,
    ResourceProfileRegistry,
)
from .client import BrokerClient, CallSpec
from .clustering import (
    ClusteringConfig,
    Combiner,
    FileBatchCombiner,
    IdenticalRequestCombiner,
    InListQueryCombiner,
    MgetCombiner,
    RepeatWorkloadCombiner,
)
from .fidelity import FidelityPolicy
from .hotspot import HotSpotGate, HotSpotMonitor, HotSpotNotice
from .loadbalance import (
    BackendState,
    Balancer,
    LatencyAwareBalancer,
    LeastOutstandingBalancer,
    RoundRobinBalancer,
)
from .peering import BrokerPeerGroup, TxnStateUpdate
from .pipeline import (
    AdmissionStage,
    ArrivalStage,
    BatchContext,
    BrokerStage,
    CacheFillStage,
    CacheLookupStage,
    ClusterStage,
    EnqueueStage,
    ExecuteStage,
    FidelityFallbackStage,
    LoadReportStage,
    ReplyStage,
    RequestContext,
    StageOutcome,
    StagePipeline,
    StageRecord,
    ValidateServiceStage,
    centralized_stage_plan,
    distributed_stage_plan,
    stage_plan,
)
from .pool import ConnectionPool
from .prefetch import Prefetcher, PrefetchRule
from .protocol import BrokerReply, BrokerRequest, ReplyStatus
from .qos import QoSPolicy
from .queueing import BrokerQueue, QueuedRequest
from .transactions import TransactionTracker

__all__ = [
    "ServiceBroker",
    "DEFAULT_BROKER_PORT",
    "BrokerClient",
    "CallSpec",
    "BrokerRequest",
    "BrokerReply",
    "ReplyStatus",
    "QoSPolicy",
    "AdmissionController",
    "AdmissionDecision",
    "BrokerQueue",
    "QueuedRequest",
    "BrokerStage",
    "StagePipeline",
    "StageOutcome",
    "StageRecord",
    "RequestContext",
    "BatchContext",
    "ValidateServiceStage",
    "ArrivalStage",
    "CacheLookupStage",
    "AdmissionStage",
    "FidelityFallbackStage",
    "EnqueueStage",
    "ClusterStage",
    "ExecuteStage",
    "CacheFillStage",
    "ReplyStage",
    "LoadReportStage",
    "distributed_stage_plan",
    "centralized_stage_plan",
    "stage_plan",
    "ResultCache",
    "CacheEntry",
    "CacheStats",
    "ClusteringConfig",
    "Combiner",
    "IdenticalRequestCombiner",
    "RepeatWorkloadCombiner",
    "MgetCombiner",
    "InListQueryCombiner",
    "FileBatchCombiner",
    "ConnectionPool",
    "BrokerPeerGroup",
    "TxnStateUpdate",
    "Prefetcher",
    "PrefetchRule",
    "FidelityPolicy",
    "HotSpotMonitor",
    "HotSpotGate",
    "HotSpotNotice",
    "TransactionTracker",
    "ServiceAdapter",
    "DatabaseAdapter",
    "HttpAdapter",
    "DirectoryAdapter",
    "MailAdapter",
    "FileAdapter",
    "Balancer",
    "BackendState",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "LatencyAwareBalancer",
    "LoadListener",
    "LoadReport",
    "ResourceProfileRegistry",
    "CentralizedController",
]
