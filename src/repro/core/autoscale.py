"""Elastic autoscaling: token buckets, a target-tracking controller, and
an elastic broker pool with a graceful drain protocol.

Three cooperating pieces close the control loop ROADMAP item 3 asks for:

- :class:`TokenBucket` / :class:`TenantThrottle` — the pure rate-limit
  primitive the front end (and the broker-side
  :class:`~repro.core.pipeline.ThrottleStage`) use to refuse one
  tenant's flash crowd before it starves the pool.
- :class:`AutoscalerPolicy` + :func:`decide_scale` — a *pure*
  target-tracking decision function (hysteresis band, asymmetric
  scale-out/scale-in cooldowns, per-decision step limit, hard
  ``[min_size, max_size]`` clamp) so the control law is property-testable
  without a simulation.
- :class:`Autoscaler` — the sim process that samples
  :class:`~repro.obs.telemetry.TelemetryScraper` gauge series (falling
  back to live broker readings for units provisioned between scrapes),
  consults :class:`~repro.obs.slo.SloEngine` burn alerts (an active
  alert vetoes scale-in), and drives a :class:`BrokerPool`.

:class:`BrokerPool` owns provisioning and the **graceful drain
protocol**. Draining a unit proceeds strictly in this order: the broker
leaves the routing ring (no new work is sent), refuses raced arrivals
(:meth:`~repro.core.broker.ServiceBroker.begin_drain`), quiesces its
queue/ledger, hands any still-queued orphans to a live peer (balancing
its own admission ledger and recovery journal per orphan), leaves its
shard group (electing a successor leader), is purged from the load
listener, is released from supervision, and only then terminates
(:meth:`~repro.core.broker.ServiceBroker.decommission`). A crash
mid-drain aborts the quiesce wait until the supervisor fail-fasts the
journal and the resurrection restarts the broker — then the drain
resumes. The scale-chaos soak in :mod:`repro.workload.chaos` verifies
no request is ever lost across this dance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import BrokerError
from ..metrics import MetricsRegistry
from .protocol import BrokerReply, ReplyStatus
from .sharding import HashRing

__all__ = [
    "TokenBucket",
    "TenantThrottle",
    "AutoscalerPolicy",
    "ScaleDecision",
    "decide_scale",
    "Autoscaler",
    "BrokerPool",
]


class TokenBucket:
    """A classic token bucket: *rate* tokens/second, capped at *burst*.

    The bucket starts full. :meth:`allow` refills lazily from the
    caller-supplied clock, so the class is pure (no simulation handle)
    and the level provably stays within ``[0, burst]``.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0: {rate!r}")
        if burst <= 0.0:
            raise ValueError(f"burst must be > 0: {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = 0.0

    def refill(self, now: float) -> None:
        """Credit tokens for the time elapsed since the last update."""
        if now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Take *cost* tokens if available; returns whether admitted.

        A refused call consumes nothing, so the level never goes
        negative; refills clamp at *burst*, so it never overshoots.
        """
        self.refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    @property
    def level(self) -> float:
        """Tokens available as of the last :meth:`allow`/:meth:`refill`."""
        return self.tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TokenBucket rate={self.rate:g}/s burst={self.burst:g} "
            f"level={self.tokens:.2f}>"
        )


class TenantThrottle:
    """Per-tenant :class:`TokenBucket` map with lazy bucket creation.

    Every tenant gets the default ``(rate, burst)`` unless *overrides*
    names it explicitly — so a premium tenant can buy headroom while an
    abusive one is clamped. The class is pure (caller supplies the
    clock) and emits no metrics; call sites count their own rejections
    so front-end refusals (``frontend.throttle.rejected``) stay
    distinguishable from broker-side ones (``broker.throttle.rejected``).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        overrides: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.overrides = dict(overrides or {})
        self.buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        """The (lazily created) bucket for *tenant*."""
        bucket = self.buckets.get(tenant)
        if bucket is None:
            rate, burst = self.overrides.get(tenant, (self.rate, self.burst))
            bucket = self.buckets[tenant] = TokenBucket(rate, burst)
        return bucket

    def allow(self, tenant: str, now: float, cost: float = 1.0) -> bool:
        """Whether *tenant* may spend *cost* tokens at *now*."""
        return self.bucket(tenant).allow(now, cost)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TenantThrottle default={self.rate:g}/{self.burst:g} "
            f"tenants={len(self.buckets)}>"
        )


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Target-tracking parameters for one autoscaled pool.

    *target* is the desired per-broker load signal (e.g. in-flight
    requests per broker). The hysteresis band ``target*(1±hysteresis)``
    absorbs noise; cooldowns are measured from the last scale event in
    *either* direction, which is what makes opposing decisions within
    one cooldown window impossible (see :func:`decide_scale`).
    """

    target: float
    hysteresis: float = 0.2
    scale_out_cooldown: float = 5.0
    scale_in_cooldown: float = 30.0
    max_step: int = 2
    min_size: int = 1
    max_size: int = 8

    def __post_init__(self) -> None:
        if self.target <= 0.0:
            raise ValueError(f"target must be > 0: {self.target!r}")
        if not 0.0 <= self.hysteresis < 1.0:
            raise ValueError(
                f"hysteresis must be in [0, 1): {self.hysteresis!r}"
            )
        if self.scale_out_cooldown < 0.0 or self.scale_in_cooldown < 0.0:
            raise ValueError("cooldowns must be >= 0")
        if self.max_step < 1:
            raise ValueError(f"max_step must be >= 1: {self.max_step!r}")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size: "
                f"{self.min_size!r}..{self.max_size!r}"
            )


@dataclass(frozen=True)
class ScaleDecision:
    """Outcome of one control-loop evaluation."""

    desired: int
    action: str  # "out" | "in" | "hold"
    reason: str


def decide_scale(
    policy: AutoscalerPolicy,
    size: int,
    signal: float,
    now: float,
    last_scale_at: float,
    alert_active: bool = False,
) -> ScaleDecision:
    """Pure target-tracking scale decision.

    Above the hysteresis band the desired size is
    ``ceil(size * signal / target)`` clamped to ``size + max_step`` and
    ``max_size``; below the band it is the same expression clamped to
    ``size - max_step`` and ``min_size``. Scale-in is additionally
    vetoed while *alert_active* (an SLO burn alert means capacity is
    the wrong thing to remove). Both directions honour a cooldown from
    *last_scale_at* — the time of the last scale event in either
    direction — so an "out" can never be followed by an "in" within the
    scale-in cooldown and vice versa.
    """
    size = max(policy.min_size, min(policy.max_size, int(size)))
    high = policy.target * (1.0 + policy.hysteresis)
    low = policy.target * (1.0 - policy.hysteresis)
    if signal > high:
        if now - last_scale_at < policy.scale_out_cooldown:
            return ScaleDecision(size, "hold", "out-cooldown")
        desired = math.ceil(size * signal / policy.target)
        desired = min(desired, size + policy.max_step, policy.max_size)
        if desired > size:
            return ScaleDecision(
                desired, "out", f"signal {signal:.2f} above band {high:.2f}"
            )
        return ScaleDecision(size, "hold", "at-max")
    if signal < low:
        if alert_active:
            return ScaleDecision(size, "hold", "slo-burn-alert")
        if now - last_scale_at < policy.scale_in_cooldown:
            return ScaleDecision(size, "hold", "in-cooldown")
        if signal > 0.0:
            desired = math.ceil(size * signal / policy.target)
        else:
            desired = policy.min_size
        desired = max(desired, size - policy.max_step, policy.min_size)
        if desired < size:
            return ScaleDecision(
                desired, "in", f"signal {signal:.2f} below band {low:.2f}"
            )
        return ScaleDecision(size, "hold", "at-min")
    return ScaleDecision(size, "hold", "in-band")


class BrokerPool:
    """An elastic set of broker units behind a consistent-hash ring.

    A *unit* is whatever *factory* builds — in the autoscale experiment
    a broker plus its dedicated backend, so backend capacity scales
    with the pool. The pool owns unit membership: provisioning adds the
    unit to the routing ring (and shard group, when given), scale-in
    runs the graceful drain protocol described in the module docstring,
    and :attr:`every` keeps every unit ever provisioned — including
    retired ones — so chaos invariants can audit the full population.

    Parameters
    ----------
    factory:
        ``factory(pool, index) -> ServiceBroker``. Builds and wires one
        unit (node, backend, supervisor watch, load reporting); the
        pool handles ring/group membership and the ``on_provision``
        hook (used by experiments to attach telemetry and routes).
    supervisor, group, listener:
        Optional lifecycle collaborators; each enables the matching
        drain hand-off step (release, leadership hand-off, listener
        purge).
    """

    def __init__(
        self,
        sim: Any,
        factory: Callable[["BrokerPool", int], Any],
        *,
        supervisor: Any = None,
        group: Any = None,
        listener: Any = None,
        seed: int = 0,
        vnodes: int = 32,
        drain_grace: float = 5.0,
        drain_poll: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "pool",
    ) -> None:
        self.sim = sim
        self.factory = factory
        self.supervisor = supervisor
        self.group = group
        self.listener = listener
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.name = name
        self.drain_grace = float(drain_grace)
        self.drain_poll = float(drain_poll)
        self.ring = HashRing(seed=seed, vnodes=vnodes)
        #: Active units by broker name (insertion-ordered; drains LIFO).
        self.brokers: Dict[str, Any] = {}
        #: Units mid-drain (off the ring, not yet decommissioned).
        self.draining: Dict[str, Any] = {}
        #: Decommissioned units, in drain-completion order.
        self.retired: List[Any] = []
        #: Every unit ever provisioned (chaos invariants audit this).
        self.every: List[Any] = []
        #: Called with each new broker right after it joins the ring.
        self.on_provision: Optional[Callable[[Any], None]] = None
        self._next_index = 0
        self.scale_out_events = 0
        self.scale_in_events = 0
        self.drains_completed = 0
        self.handoffs = 0

    # -- membership --------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of active (routable, non-draining) units."""
        return len(self.brokers)

    @property
    def active(self) -> List[Any]:
        """The active brokers, oldest first."""
        return list(self.brokers.values())

    def provision(self) -> Any:
        """Build one new unit and make it routable."""
        index = self._next_index
        self._next_index += 1
        broker = self.factory(self, index)
        self.brokers[broker.name] = broker
        self.every.append(broker)
        self.ring.add(broker.name)
        if self.group is not None:
            self.group.add(broker)
        self.metrics.increment("autoscaler.provisioned")
        self.sim.trace(
            "autoscale", "provision", broker=broker.name, size=self.size
        )
        if self.on_provision is not None:
            self.on_provision(broker)
        return broker

    def scale_to(self, desired: int) -> None:
        """Grow or shrink the active set to *desired* units.

        Growth provisions immediately; shrinkage starts one graceful
        drain per surplus unit (newest first) — the units leave
        :attr:`brokers` now (no new routes) but only count as gone once
        their drain completes.
        """
        desired = max(0, int(desired))
        grew = self.size < desired
        while self.size < desired:
            self.provision()
        if grew:
            self.scale_out_events += 1
            self.metrics.increment("autoscaler.scale_out")
        shrank = self.size > desired
        while self.size > desired:
            victim = next(reversed(self.brokers))
            self.drain(victim)
        if shrank:
            self.metrics.increment("autoscaler.scale_in")

    def drain(self, name: str) -> Any:
        """Start the graceful drain of broker *name*; returns the process."""
        broker = self.brokers.pop(name)
        self.ring.remove(name)
        self.draining[name] = broker
        self.scale_in_events += 1
        self.metrics.increment("autoscaler.drain.begin")
        self.sim.trace("autoscale", "drain-begin", broker=name, size=self.size)
        return self.sim.process(
            self._drain(broker), name=f"{self.name}:drain:{name}"
        )

    # -- routing -----------------------------------------------------------

    def route(self, key: str) -> Any:
        """A live active broker for *key*, in ring preference order.

        Falls back past dead preference entries (crashed-but-active
        units) to any live unit; raises :class:`BrokerError` when the
        pool has no live capacity at all.
        """
        if not self.brokers:
            raise BrokerError("no active brokers in pool")
        for candidate in self.ring.preference(key):
            broker = self.brokers.get(candidate)
            if broker is not None and broker.alive:
                return broker
        for broker in self.brokers.values():
            if broker.alive:
                return broker
        raise BrokerError("no live brokers in pool")

    def _peer(self, exclude: str) -> Any:
        """A live active broker other than *exclude* (None if none)."""
        for broker in self.brokers.values():
            if broker.name != exclude and broker.alive:
                return broker
        return None

    # -- the drain protocol ------------------------------------------------

    def _handoff(self, victim: Any) -> int:
        """Re-home the victim's still-queued requests onto a live peer.

        Each orphan is settled on the victim's books (admission ledger
        balanced, journal entry cleared) and forwarded to a peer, whose
        enqueue stage re-admits and re-journals it; the reply address
        stays the original client. With no peer available the orphan is
        answered ``DROPPED`` directly — refused, never lost.
        """
        journal = victim.journal
        moved = 0
        now = self.sim._now
        for item in victim.queue.reset():
            request = item.request
            victim.admission.request_finished()
            if journal is not None:
                journal.record_answered(request.request_id)
            peer = self._peer(exclude=victim.name)
            if peer is None:
                victim.socket.sendto(
                    BrokerReply(
                        request_id=request.request_id,
                        status=ReplyStatus.DROPPED,
                        payload="pool draining",
                        fidelity=0.0,
                        error="drain-no-peer",
                        broker=victim.name,
                        context=request.context,
                    ),
                    request.reply_to,
                )
                self.metrics.increment("autoscaler.drain.no_peer")
                continue
            # Rewrite the service name: pool units may expose distinct
            # aliases (``items-0``, ``items-1`` …) and the peer's
            # ValidateServiceStage checks its own.
            victim.socket.sendto(
                _dc_replace(request, service=peer.service, sent_at=now),
                peer.address,
            )
            moved += 1
        if moved:
            self.handoffs += moved
            self.metrics.increment("autoscaler.drain.handoff", moved)
            self.sim.trace(
                "autoscale", "drain-handoff", broker=victim.name, moved=moved
            )
        return moved

    def _drain(self, broker: Any):
        """Coordinator process for one graceful drain (see module doc)."""
        sim = self.sim
        broker.begin_drain()
        deadline = sim.now + self.drain_grace
        handed_off = False
        while True:
            if not broker.alive:
                # Crashed mid-drain: the supervisor fail-fasts the
                # journal and the chaos resurrection restarts the
                # broker (begin_drain's flag survives the restart, so
                # it keeps refusing work). Wait it out, then resume
                # with a fresh grace window.
                self.metrics.increment("autoscaler.drain.interrupted")
                while not broker.alive:
                    yield self.drain_poll
                deadline = sim.now + self.drain_grace
                handed_off = False
                continue
            journal = broker.journal
            pending = (
                len(broker.queue)
                + broker.admission.outstanding
                + (journal.pending_count if journal is not None else 0)
            )
            if pending == 0:
                break
            if not handed_off and sim.now >= deadline:
                self._handoff(broker)
                handed_off = True
            yield self.drain_poll
        if self.group is not None:
            self.group.leave(broker.name)
        if self.listener is not None:
            self.listener.deregister(broker.name)
        if self.supervisor is not None:
            self.supervisor.release(broker.name)
        broker.decommission()
        del self.draining[broker.name]
        self.retired.append(broker)
        self.drains_completed += 1
        self.metrics.increment("autoscaler.drained")
        sim.trace("autoscale", "drained", broker=broker.name, size=self.size)


class Autoscaler:
    """Closed-loop controller driving a :class:`BrokerPool`.

    Every *interval* it computes the pool's load signal — by default
    the mean in-flight-plus-queued requests per active broker, read
    from the scraper's ``broker.load.<name>`` gauge series (live broker
    readings fill in for units provisioned since the last scrape) —
    feeds :func:`decide_scale`, and applies the decision. An active SLO
    burn alert vetoes scale-in. Decisions are counted under
    ``autoscaler.*`` and the size/signal timeline is kept in
    :attr:`history` for experiment tables.
    """

    def __init__(
        self,
        sim: Any,
        pool: BrokerPool,
        policy: AutoscalerPolicy,
        scraper: Any = None,
        engine: Any = None,
        interval: float = 1.0,
        signal: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "autoscaler",
    ) -> None:
        self.sim = sim
        self.pool = pool
        self.policy = policy
        self.scraper = scraper
        self.engine = engine
        self.interval = float(interval)
        self.metrics = metrics if metrics is not None else pool.metrics
        self.name = name
        self._signal = signal
        self.last_scale_at = float("-inf")
        #: ``(time, size, signal, action)`` per evaluation.
        self.history: List[Tuple[float, int, float, str]] = []

    def signal_value(self) -> float:
        """The pool's current load signal (see class docstring)."""
        if self._signal is not None:
            return self._signal()
        brokers = self.pool.active
        if not brokers:
            return 0.0
        total = 0.0
        for broker in brokers:
            reading = None
            if self.scraper is not None:
                series = self.scraper.series.get(f"broker.load.{broker.name}")
                if series is not None:
                    point = series.last()
                    if point is not None:
                        reading = point[1]
            if reading is None:
                reading = float(broker.outstanding) if broker.alive else 0.0
            total += reading
        return total / len(brokers)

    def start(self, until: Optional[float] = None) -> Any:
        """Spawn the control-loop process; returns it."""
        return self.sim.process(self._run(until), name=self.name)

    def _run(self, until: Optional[float]):
        pool = self.pool
        metrics = self.metrics
        while until is None or self.sim.now < until:
            yield self.interval
            if until is not None and self.sim.now >= until:
                return
            now = self.sim.now
            size = pool.size
            signal = self.signal_value()
            alert = (
                bool(self.engine.active_alerts())
                if self.engine is not None
                else False
            )
            decision = decide_scale(
                self.policy, size, signal, now, self.last_scale_at, alert
            )
            metrics.increment("autoscaler.decisions")
            metrics.observe("autoscaler.pool_size", float(size))
            self.history.append((now, size, signal, decision.action))
            if decision.action == "out":
                pool.scale_to(decision.desired)
                self.last_scale_at = now
                self.sim.trace(
                    "autoscale", "scale-out",
                    size=decision.desired, signal=signal,
                )
            elif decision.action == "in":
                pool.scale_to(decision.desired)
                self.last_scale_at = now
                self.sim.trace(
                    "autoscale", "scale-in",
                    size=decision.desired, signal=signal,
                )
            else:
                metrics.increment("autoscaler.holds")
                if decision.reason.endswith("cooldown"):
                    metrics.increment("autoscaler.blocked_cooldown")
                elif decision.reason == "slo-burn-alert":
                    metrics.increment("autoscaler.blocked_alert")

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Scraper-ready gauges for the pool's size and drain state."""
        pool = self.pool
        return {
            "autoscaler.pool_size": lambda: float(pool.size),
            "autoscaler.draining": lambda: float(len(pool.draining)),
            "autoscaler.retired": lambda: float(len(pool.retired)),
        }
