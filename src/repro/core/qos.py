"""QoS classes and the broker admission policy.

The paper's rule (Section V.B): each broker bounds its *outstanding*
requests by a threshold (20 in the testbed), and a request of QoS level
*c* is forwarded only while the outstanding count is below that class's
*fraction* of the threshold. Higher-priority classes get larger
fractions, so under load the low classes are shed first and priority
inversion cannot occur.

The printed paper's fraction values are lost to OCR; we default to the
natural linear schedule ``(C - c + 1) / C`` for *C* classes — with the
paper's 3 classes and threshold 20 that is 20 / 13.3 / 6.7 — which
reproduces the published drop-ratio ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..errors import BrokerError

__all__ = ["QoSPolicy"]


@dataclass(frozen=True)
class QoSPolicy:
    """Admission thresholds and scheduling weights for QoS classes.

    Parameters
    ----------
    levels:
        Number of QoS classes; level 1 is the highest priority.
    threshold:
        Maximum outstanding (queued + in-service) requests per broker.
    fractions:
        Optional per-level override of the admitted fraction of
        *threshold*; defaults to the linear schedule described above.
    rate_limits:
        Optional per-level cap on arrival rate (requests/second). When a
        class exceeds its contracted intensity its requests are dropped
        without affecting other classes.
    deadlines:
        Optional per-level completion budget in seconds; the
        fault-tolerant pipeline's
        :class:`~repro.core.pipeline.TimeoutBudgetStage` stamps it on
        each request as an absolute deadline, and retries/failover stop
        when it is exhausted (the request then degrades instead of
        waiting forever).
    """

    levels: int = 3
    threshold: int = 20
    fractions: Optional[Mapping[int, float]] = None
    rate_limits: Optional[Mapping[int, float]] = None
    deadlines: Optional[Mapping[int, float]] = None

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise BrokerError(f"levels must be >= 1: {self.levels!r}")
        if self.threshold < 1:
            raise BrokerError(f"threshold must be >= 1: {self.threshold!r}")
        if self.fractions is not None:
            for level, fraction in self.fractions.items():
                self._check_level(level)
                if not 0.0 < fraction <= 1.0:
                    raise BrokerError(
                        f"fraction for level {level} out of (0, 1]: {fraction!r}"
                    )
        if self.deadlines is not None:
            for level, deadline in self.deadlines.items():
                self._check_level(level)
                if deadline <= 0:
                    raise BrokerError(
                        f"deadline for level {level} must be > 0: {deadline!r}"
                    )

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.levels:
            raise BrokerError(
                f"QoS level {level} out of range 1..{self.levels}"
            )

    def clamp(self, level: int) -> int:
        """Clamp an arbitrary integer into the valid level range."""
        return min(max(level, 1), self.levels)

    def fraction(self, level: int) -> float:
        """Fraction of the threshold admitted for *level*."""
        self._check_level(level)
        if self.fractions is not None and level in self.fractions:
            return self.fractions[level]
        return (self.levels - level + 1) / self.levels

    def admit_limit(self, level: int) -> float:
        """Outstanding-request bound for *level*."""
        return self.threshold * self.fraction(level)

    def deadline(self, level: int) -> Optional[float]:
        """Completion budget for *level* in seconds, if one is set."""
        self._check_level(level)
        if self.deadlines is None:
            return None
        return self.deadlines.get(level)

    def rate_limit(self, level: int) -> Optional[float]:
        """Contracted arrival-rate cap for *level*, if any."""
        self._check_level(level)
        if self.rate_limits is None:
            return None
        return self.rate_limits.get(level)

    def describe(self) -> Dict[int, float]:
        """Per-level admit limits, for logs and reports."""
        return {level: self.admit_limit(level) for level in range(1, self.levels + 1)}
