"""The centralized broker model (paper §IV, Figure 4).

In this model the *front-end web server* performs admission control
itself:

* every broker periodically sends a :class:`LoadReport` over UDP;
* a :class:`LoadListener` thread on the web-server host consumes the
  reports — with a per-update processing cost, so a high broker count or
  update rate saturates it and the load table goes stale (the paper's
  stated scalability limit of this model);
* a :class:`ResourceProfileRegistry` maps each URL to the backend
  services it needs;
* the :class:`CentralizedController` checks, before a request enters
  normal handling, whether any required service's broker is overloaded
  for the request's QoS class, and rejects with an error message if so.

With the shard tier (:mod:`repro.core.sharding`) a service is fronted
by many brokers, and having every replica report would multiply the
listener's load — the exact saturation the paper warns about. Instead
each shard's *leader* reports a :class:`ShardLoadReport` (the plain
report plus shard id and a leadership claim, stamped at send time); the
listener keeps a per-``(service, shard)`` view, aggregates the busiest
shard into the service-level table ``admit`` consults, and tracks the
reporting leader per shard — when a shard leader dies and the bully
election promotes a replica, the reporting role fails over with it and
the listener counts a ``centralized.leader_failover``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..http.messages import HttpRequest
from ..frontend.app import qos_of
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..sim.core import Simulation
from .qos import QoSPolicy

__all__ = [
    "LoadReport",
    "ShardLoadReport",
    "LoadListener",
    "ResourceProfileRegistry",
    "CentralizedController",
]


@dataclass(frozen=True)
class LoadReport:
    """One broker load update."""

    broker: str
    service: str
    outstanding: int
    queue_depth: int
    threshold: int
    sent_at: float


@dataclass(frozen=True)
class ShardLoadReport(LoadReport):
    """A load update from a shard replica.

    A separate subclass (rather than extra fields on
    :class:`LoadReport`) so unsharded topologies keep their exact wire
    size — message size feeds transfer times, and the degenerate
    configuration must stay byte-identical. ``leader`` is the sender's
    leadership claim at send time; the listener only moves its per-shard
    leader tracking on reports that claim the role.
    """

    shard: int = 0
    leader: bool = True


class LoadListener:
    """The web server's listener thread for broker load updates.

    ``process_time`` is the CPU cost of handling one update. Updates
    queue behind a single listener thread; when they arrive faster than
    they can be processed the table's entries grow stale —
    :meth:`staleness` exposes that, and the ablation benchmark
    demonstrates the scalability erosion the paper predicts.
    """

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        port: int = 7999,
        process_time: float = 0.001,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.process_time = process_time
        self.metrics = metrics or MetricsRegistry()
        self.socket = node.datagram_socket(port)
        self.address = self.socket.address
        self.table: Dict[str, LoadReport] = {}
        self._applied: Dict[str, float] = {}
        #: Latest report per ``(service, shard)`` (sharded topologies).
        self.shards: Dict[Tuple[str, int], ShardLoadReport] = {}
        #: Reporting leader per ``(service, shard)``.
        self.shard_leaders: Dict[Tuple[str, int], str] = {}
        #: Times the reporting role moved to a different broker.
        self.leader_failovers = 0
        sim.process(self._listen(), name="load-listener")

    def _listen(self):
        while True:
            envelope = yield self.socket.recv()
            report = envelope.payload
            if not isinstance(report, LoadReport):
                self.metrics.increment("listener.malformed")
                continue
            # The single listener thread serializes update processing.
            yield self.process_time
            self.table[report.service] = report
            self._applied[report.service] = self.sim.now
            self.metrics.increment("listener.updates")
            lag = self.sim.now - report.sent_at
            if lag < 0.0:
                # A report stamped ahead of the listener's clock (e.g.
                # queued across a broker restart) must not poison the
                # lag statistics with a negative sample.
                self.metrics.increment("listener.clock_skew")
                lag = 0.0
            self.metrics.observe("listener.update_lag", lag)
            self.metrics.observe(
                f"broker.load.{report.broker}", float(report.outstanding)
            )
            self.metrics.observe(
                f"broker.load.{report.broker}.queue_depth",
                float(report.queue_depth),
            )
            if isinstance(report, ShardLoadReport):
                self._apply_shard(report)

    def _apply_shard(self, report: ShardLoadReport) -> None:
        """Track per-shard load and leadership for a sharded service.

        The service-level table entry ``admit`` consults becomes the
        busiest shard's report (worst case), and the per-shard leader
        record moves when a report from a *different* broker claims the
        leader role — that is the reporting-role failover the
        controller surfaces after a shard leader dies.
        """
        key = (report.service, report.shard)
        self.shards[key] = report
        worst = report
        for (service, _), other in self.shards.items():
            if service == report.service and other.outstanding > worst.outstanding:
                worst = other
        self.table[report.service] = worst
        if not report.leader:
            return
        previous = self.shard_leaders.get(key)
        if previous == report.broker:
            return
        self.shard_leaders[key] = report.broker
        if previous is not None:
            self.leader_failovers += 1
            self.metrics.increment("centralized.leader_failover")
            self.sim.trace(
                "centralized", "leader-failover",
                service=report.service, shard=report.shard,
                leader=report.broker, previous=previous,
            )

    def deregister(self, broker_name: str) -> None:
        """Purge every trace of *broker_name* from the routing tables.

        Called when a broker leaves the pool gracefully (scale-in): its
        service-table entries, per-shard reports, and per-shard leader
        records go away *immediately* rather than lingering until the
        staleness threshold trips — a stale entry would keep steering
        the admit decision by a broker that no longer exists. Service
        aggregates are recomputed from the surviving shard reports.
        """
        affected = set()
        for service, report in list(self.table.items()):
            if report.broker == broker_name:
                del self.table[service]
                affected.add(service)
        for key, report in list(self.shards.items()):
            if report.broker == broker_name:
                del self.shards[key]
                affected.add(key[0])
        for key, leader in list(self.shard_leaders.items()):
            if leader == broker_name:
                del self.shard_leaders[key]
        for service in affected:
            worst = None
            for (svc, _), other in self.shards.items():
                if svc != service:
                    continue
                if worst is None or other.outstanding > worst.outstanding:
                    worst = other
            if worst is not None:
                self.table[service] = worst
        self.metrics.increment("listener.deregistered")
        self.sim.trace("centralized", "deregister", broker=broker_name)

    def load_of(self, service: str) -> Optional[LoadReport]:
        """The most recently applied report for *service*, if any."""
        return self.table.get(service)

    def shard_load_of(
        self, service: str, shard: int
    ) -> Optional["ShardLoadReport"]:
        """The most recently applied report for one shard, if any."""
        return self.shards.get((service, shard))

    def leader_of(self, service: str, shard: int) -> Optional[str]:
        """The broker currently reporting as (*service*, *shard*) leader."""
        return self.shard_leaders.get((service, shard))

    def staleness(self, service: str) -> float:
        """Seconds since the last applied update for *service*."""
        applied = self._applied.get(service)
        return float("inf") if applied is None else self.sim.now - applied


class ResourceProfileRegistry:
    """URL → the backend services (and weights) a request will touch.

    "All the requested URLs' resource profiles are accessible to the Web
    server" — this registry is that profile store.
    """

    def __init__(self) -> None:
        self._profiles: Dict[str, Tuple[str, ...]] = {}

    def register(self, path: str, services: Sequence[str]) -> None:
        """Declare that requests for *path* touch *services*."""
        self._profiles[path] = tuple(services)

    def services_for(self, path: str) -> Tuple[str, ...]:
        """Services required by *path* (empty if unprofiled)."""
        return self._profiles.get(path, ())

    def __contains__(self, path: str) -> bool:
        return path in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)


class CentralizedController:
    """Front-end admission hook for the centralized model.

    Install as ``FrontendWebServer(admission=controller.admit)``. A
    request is rejected when, for any service its URL's profile names,
    the last known broker load meets or exceeds that QoS class's
    admission limit. Unknown services (no report yet) are treated
    optimistically, as the real system must.

    The paper notes the listener "can be overwhelmed". With
    *staleness_threshold* set, the controller runs a two-state
    freshness machine: when the stalest profiled service's report age
    exceeds the threshold it flips to **degraded** mode and admits
    everything — handing the admission decision back to the per-broker
    :class:`~repro.core.pipeline.AdmissionStage` (distributed-mode
    behaviour) rather than deciding from a load table it knows is
    stale. It recovers to centralized mode once staleness falls back
    below *recover_staleness* (default: half the threshold —
    hysteresis against flapping). Both transitions emit metrics and
    trace spans. With the default ``staleness_threshold=None`` the
    state machine is disabled and behaviour is byte-identical.
    """

    def __init__(
        self,
        listener: LoadListener,
        profiles: ResourceProfileRegistry,
        qos: Optional[QoSPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        staleness_threshold: Optional[float] = None,
        recover_staleness: Optional[float] = None,
    ) -> None:
        self.listener = listener
        self.profiles = profiles
        self.qos = qos or QoSPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.staleness_threshold = staleness_threshold
        if recover_staleness is not None:
            self.recover_staleness = recover_staleness
        elif staleness_threshold is not None:
            self.recover_staleness = staleness_threshold / 2.0
        else:
            self.recover_staleness = None
        #: ``"centralized"`` or ``"degraded"`` (distributed fallback).
        self.mode = "centralized"
        #: Mode flips so far (degrade + recover).
        self.transitions = 0

    def leader_of(self, service: str, shard: int) -> Optional[str]:
        """The broker the controller believes leads (*service*, *shard*).

        Tracked from the leadership claims on incoming
        :class:`ShardLoadReport` datagrams — only shard leaders carry
        the reporting role, so this follows bully-election outcomes
        with one report interval of lag.
        """
        return self.listener.leader_of(service, shard)

    @property
    def leader_failovers(self) -> int:
        """Times the reporting role moved between brokers of a shard."""
        return self.listener.leader_failovers

    def _update_mode(self, services: Sequence[str]) -> str:
        """Run the freshness state machine; returns the current mode."""
        stalest = 0.0
        for service in services:
            staleness = self.listener.staleness(service)
            if staleness == float("inf"):
                # Never reported: stay optimistic, exactly as admit()
                # treats a missing report.
                continue
            if staleness > stalest:
                stalest = staleness
        sim = self.listener.sim
        if self.mode == "centralized":
            if stalest > self.staleness_threshold:
                self.mode = "degraded"
                self.transitions += 1
                self.metrics.increment("centralized.degraded_transitions")
                self.metrics.observe("centralized.mode", 1.0)
                sim.trace(
                    "centralized", "degrade",
                    staleness=stalest, threshold=self.staleness_threshold,
                )
        elif stalest <= self.recover_staleness:
            self.mode = "centralized"
            self.transitions += 1
            self.metrics.increment("centralized.recovered_transitions")
            self.metrics.observe("centralized.mode", 0.0)
            sim.trace(
                "centralized", "recover",
                staleness=stalest, threshold=self.recover_staleness,
            )
        return self.mode

    def admit(self, request: HttpRequest) -> Tuple[bool, str]:
        """The admission decision for one incoming front-end request."""
        level = self.qos.clamp(qos_of(request))
        services = self.profiles.services_for(request.path)
        if (
            self.staleness_threshold is not None
            and self._update_mode(services) == "degraded"
        ):
            # Stale load table: admit at the front door and let each
            # broker's own admission gate decide (distributed mode).
            self.metrics.increment("centralized.degraded_admits")
            return True, ""
        for service in services:
            report = self.listener.load_of(service)
            if report is None:
                continue
            if report.outstanding >= self.qos.admit_limit(level):
                self.metrics.increment("centralized.rejected")
                self.metrics.increment(f"centralized.rejected.qos{level}")
                return (
                    False,
                    f"service {service!r} overloaded "
                    f"({report.outstanding} outstanding)",
                )
        self.metrics.increment("centralized.admitted")
        return True, ""
