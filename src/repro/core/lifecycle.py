"""Broker lifecycle: heartbeats, crash detection, and recovery.

PR 2 made *backends* failable; this module makes the broker process
itself mortal. Three cooperating pieces:

* every supervised broker emits :class:`Heartbeat` datagrams
  (:meth:`~repro.core.broker.ServiceBroker.start_heartbeat`) — silence
  is the death signal;
* a :class:`RecoveryJournal` shadows the broker's admitted-but-
  unanswered requests (write-ahead on enqueue, cleared on reply), so
  the work lost inside a crash is known exactly;
* a :class:`BrokerSupervisor` watches the heartbeats, marks a silent
  broker down, and **fails its in-flight requests fast** with DROPPED
  ``broker-crash`` replies so clients re-route (retry, failover, or a
  replica broker) instead of hanging until their timeouts expire. On
  restart, whatever the supervisor did not already fail fast is
  *replayed* through the ingress pipeline or *shed* with a degraded
  reply, per the journal's policy.

Everything here is opt-in: a broker without a journal, heartbeat, or
supervisor behaves byte-identically to previous revisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..metrics import MetricsRegistry
from ..net.network import Node
from ..sim.core import Simulation
from .protocol import BrokerReply, BrokerRequest, ReplyStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .broker import ServiceBroker

__all__ = [
    "Heartbeat",
    "RecoveryJournal",
    "BrokerSupervisor",
    "DEFAULT_SUPERVISOR_PORT",
]

#: Default UDP port the supervisor listens for heartbeats on.
DEFAULT_SUPERVISOR_PORT = 7900


@dataclass(frozen=True)
class Heartbeat:
    """One liveness beacon from a broker to its supervisor."""

    broker: str
    sent_at: float
    seq: int


class RecoveryJournal:
    """Write-ahead record of one broker's admitted, unanswered requests.

    The broker records every request as it enters the queue
    (:class:`~repro.core.pipeline.EnqueueStage`) and clears it when any
    reply goes out (:meth:`~repro.core.broker.ServiceBroker.send_reply`)
    — so at crash time the journal holds exactly the requests that
    would otherwise vanish silently.

    ``policy`` selects what :meth:`recover` does on restart:

    * ``"replay"`` — re-run each request through the ingress pipeline
      (it re-arrives, may hit the cache, and is re-executed);
    * ``"shed"`` — answer each with an immediate degraded/busy reply.
    """

    def __init__(
        self,
        sim: Simulation,
        policy: str = "replay",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if policy not in ("replay", "shed"):
            raise ValueError(
                f"unknown recovery policy {policy!r}; "
                "expected 'replay' or 'shed'"
            )
        self.sim = sim
        self.policy = policy
        self.metrics = metrics or MetricsRegistry()
        self._pending: Dict[int, BrokerRequest] = {}
        #: Optional replication hook, called as ``on_admitted(request)``
        #: after each journal write — a shard peer group
        #: (:class:`~repro.core.peering.ShardPeerGroup`) installs one to
        #: mirror the entry onto the shard's replica brokers.
        self.on_admitted: Optional[Callable[[BrokerRequest], None]] = None
        #: Optional replication hook, called as ``on_answered(request_id)``
        #: after each journal clear (the replication tombstone).
        self.on_answered: Optional[Callable[[int], None]] = None
        #: Requests re-run through the pipeline by :meth:`recover`.
        self.replayed = 0
        #: Requests answered degraded by a shedding :meth:`recover`.
        self.shed = 0
        #: Requests answered DROPPED by a supervisor's fast-fail.
        self.failed_fast = 0

    def record_admitted(self, request: BrokerRequest) -> None:
        """Shadow one request entering the broker's queue."""
        self._pending[request.request_id] = request
        if self.on_admitted is not None:
            self.on_admitted(request)

    def record_answered(self, request_id: int) -> None:
        """Clear a request once any reply for it has been sent."""
        self._pending.pop(request_id, None)
        if self.on_answered is not None:
            self.on_answered(request_id)

    @property
    def pending_count(self) -> int:
        """Requests currently admitted but unanswered."""
        return len(self._pending)

    def pending(self) -> List[BrokerRequest]:
        """The admitted-but-unanswered requests, in admission order."""
        return list(self._pending.values())

    def take_pending(self) -> List[BrokerRequest]:
        """Drain and return the pending set (consumed exactly once)."""
        requests = list(self._pending.values())
        self._pending.clear()
        return requests

    def recover(self, broker: "ServiceBroker") -> None:
        """Replay or shed whatever was pending when *broker* crashed.

        Called by :meth:`ServiceBroker.restart`. Requests the
        supervisor already failed fast are gone from the journal, so no
        request is ever answered twice.
        """
        requests = self.take_pending()
        if not requests:
            return
        sim = broker.sim
        if self.policy == "replay":
            from .pipeline import RequestContext  # avoid an import cycle

            for request in requests:
                self.replayed += 1
                self.metrics.increment("lifecycle.replayed")
                broker.pipeline.run_ingress(
                    RequestContext.adopt(
                        request, now=sim._now, broker=broker.name
                    )
                )
        else:
            for request in requests:
                self.shed += 1
                self.metrics.increment("lifecycle.restart_shed")
                broker.record_shed(
                    broker.qos.clamp(request.qos_level), "restart"
                )
                reply = broker.fidelity.degrade(
                    request,
                    broker.cache,
                    "broker-restart",
                    broker_name=broker.name,
                    context=request.context,
                )
                broker.send_reply(request, reply)
        sim.trace(
            "lifecycle", "recover",
            broker=broker.name, policy=self.policy, requests=len(requests),
        )


class _Watch:
    """Supervision state for one broker."""

    __slots__ = (
        "broker", "interval", "miss_factor", "last_heard",
        "up", "down_since", "detected", "recoveries", "released",
    )

    def __init__(self, broker: "ServiceBroker", interval: float,
                 miss_factor: float, now: float) -> None:
        self.broker = broker
        self.interval = interval
        self.miss_factor = miss_factor
        self.last_heard = now
        self.up = True
        self.down_since = 0.0
        self.detected = 0
        self.recoveries = 0
        self.released = False


class BrokerSupervisor:
    """Detects broker death via heartbeats and fails in-flight work fast.

    One supervisor process per host (typically the front-end node)
    listens for :class:`Heartbeat` datagrams; a per-broker monitor
    declares the broker *down* after ``interval × miss_factor`` seconds
    of silence. On detection it answers every journaled in-flight
    request with a DROPPED ``broker-crash`` reply sent from its own
    socket — the liveness analog of the paper's "system busy" fallback
    — so client retry/failover logic re-routes immediately instead of
    waiting out full timeouts. The journal entries are consumed by the
    fast-fail, so a later restart cannot also replay them.
    """

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        port: int = DEFAULT_SUPERVISOR_PORT,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.metrics = metrics or MetricsRegistry()
        self.socket = node.datagram_socket(port)
        self.address = self.socket.address
        self._watches: Dict[str, _Watch] = {}
        self._listeners: List[Callable[["ServiceBroker", bool], None]] = []
        sim.process(self._listen(), name="supervisor:rx")

    def add_listener(
        self, listener: Callable[["ServiceBroker", bool], None]
    ) -> None:
        """Subscribe to up/down detections: ``listener(broker, up)``.

        A :class:`~repro.core.sharding.ShardGroup` registers its
        ``on_supervisor_event`` here so leader elections fire as soon as
        the supervisor declares a shard leader dead, not only when the
        next request routes around the corpse.
        """
        self._listeners.append(listener)

    def watch(
        self,
        broker: "ServiceBroker",
        journal: Optional[RecoveryJournal] = None,
        interval: float = 0.05,
        miss_factor: float = 3.0,
    ) -> _Watch:
        """Supervise *broker*: install a journal, heartbeats, a monitor.

        *journal* defaults to a fresh replay-policy
        :class:`RecoveryJournal` when the broker has none yet.
        """
        if journal is not None:
            broker.journal = journal
        elif broker.journal is None:
            broker.journal = RecoveryJournal(self.sim, metrics=self.metrics)
        watch = _Watch(broker, interval, miss_factor, self.sim.now)
        self._watches[broker.name] = watch
        broker.start_heartbeat(self.address, interval=interval)
        self.sim.process(self._monitor(watch), name=f"supervisor:{broker.name}")
        return watch

    def is_up(self, name: str) -> bool:
        """The supervisor's current belief about broker *name*."""
        return self._watches[name].up

    def release(self, name: str) -> None:
        """Stop supervising broker *name* (graceful decommission).

        Marks the watch released so the monitor exits instead of
        declaring the post-drain heartbeat silence a death — call this
        *before* :meth:`~repro.core.broker.ServiceBroker.decommission`.
        Idempotent; unknown names are ignored.
        """
        watch = self._watches.get(name)
        if watch is None or watch.released:
            return
        watch.released = True
        self.metrics.increment("lifecycle.released")
        self.sim.trace("lifecycle", "released", broker=name)

    def _listen(self):
        recv = self.socket.recv
        while True:
            envelope = yield recv()
            beat = envelope.payload
            if not isinstance(beat, Heartbeat):
                self.metrics.increment("lifecycle.malformed")
                continue
            watch = self._watches.get(beat.broker)
            if watch is None:
                continue
            watch.last_heard = self.sim.now
            if not watch.up:
                watch.up = True
                watch.recoveries += 1
                self.metrics.increment("lifecycle.broker_up")
                self.metrics.observe(
                    "lifecycle.downtime", self.sim.now - watch.down_since
                )
                self.sim.trace("lifecycle", "up", broker=beat.broker)
                for listener in self._listeners:
                    listener(watch.broker, True)

    def _monitor(self, watch: _Watch):
        sim = self.sim
        miss_timeout = watch.interval * watch.miss_factor
        while not watch.released:
            yield watch.interval
            if watch.released:
                return
            if watch.up and sim.now - watch.last_heard > miss_timeout:
                watch.up = False
                watch.down_since = sim.now
                watch.detected += 1
                self.metrics.increment("lifecycle.broker_down")
                self.metrics.observe(
                    "lifecycle.detection_time", sim.now - watch.last_heard
                )
                sim.trace("lifecycle", "down", broker=watch.broker.name)
                for listener in self._listeners:
                    listener(watch.broker, False)
                self._fail_fast(watch)

    def _fail_fast(self, watch: _Watch) -> None:
        """Answer the dead broker's in-flight requests immediately."""
        journal = watch.broker.journal
        if journal is None:
            return
        requests = journal.take_pending()
        for request in requests:
            journal.failed_fast += 1
            self.metrics.increment("lifecycle.failed_fast")
            reply = BrokerReply(
                request_id=request.request_id,
                status=ReplyStatus.DROPPED,
                payload="broker down",
                fidelity=0.0,
                error="broker-crash",
                broker=watch.broker.name,
                context=request.context,
            )
            self.socket.sendto(reply, request.reply_to)
        if requests:
            self.sim.trace(
                "lifecycle", "fail-fast",
                broker=watch.broker.name, requests=len(requests),
            )
