"""Adaptive low-fidelity replies.

When admission control rejects a request, the broker still answers it
immediately — "cached results from previous queries with lower fidelity
or simply an indication that the system is busy" (paper §IV). The
longer a request is allowed to be processed, the higher the fidelity it
receives; a dropped request gets fidelity 0 and the client learns the
system is busy without waiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .cache import ResultCache
from .protocol import BrokerReply, BrokerRequest, ReplyStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import RequestContext

__all__ = ["FidelityPolicy"]


@dataclass(frozen=True)
class FidelityPolicy:
    """How to answer a request the broker will not forward.

    ``serve_stale`` enables degraded replies from expired cache entries;
    ``max_stale_age`` bounds how old a stale result may be; stale
    fidelity decays linearly from ``stale_fidelity`` to
    ``busy_fidelity`` over that age.
    """

    serve_stale: bool = True
    stale_fidelity: float = 0.5
    busy_fidelity: float = 0.0
    max_stale_age: float = 300.0
    busy_message: str = "system busy"

    def degrade(
        self,
        request: BrokerRequest,
        cache: Optional[ResultCache],
        reason: str,
        broker_name: str = "",
        context: Optional["RequestContext"] = None,
    ) -> BrokerReply:
        """Build the immediate low-fidelity reply for a rejected request."""
        if self.serve_stale and cache is not None and request.cacheable:
            stale = cache.get_stale(request.key())
            if stale is not None:
                value, age = stale
                if age <= self.max_stale_age:
                    span = self.max_stale_age or 1.0
                    fidelity = max(
                        self.busy_fidelity,
                        self.stale_fidelity
                        * (1.0 - max(age, 0.0) / span),
                    )
                    return BrokerReply(
                        request_id=request.request_id,
                        status=ReplyStatus.DEGRADED,
                        payload=value,
                        fidelity=fidelity,
                        from_cache=True,
                        error=reason,
                        broker=broker_name,
                        context=context,
                    )
        return BrokerReply(
            request_id=request.request_id,
            status=ReplyStatus.DROPPED,
            payload=self.busy_message,
            fidelity=self.busy_fidelity,
            from_cache=False,
            error=reason,
            broker=broker_name,
            context=context,
        )
