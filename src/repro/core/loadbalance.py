"""Replica health bookkeeping and backend selection policies.

"The service brokers can track the traffic and monitor their workload
and accurately distribute the workload among the backend servers to
achieve a balanced load" (paper §III). The bookkeeping — an outstanding
count, an EWMA of observed latency, and a consecutive-error health
streak — lives in :class:`ReplicaHealth`, one instance per replica of
*anything* replicated:

* each broker keeps a :class:`BackendState` (a :class:`ReplicaHealth`
  plus the adapter and connection pool) per backend replica, and a
  :class:`Balancer` picks the replica for each dispatch;
* the shard tier's :class:`~repro.core.sharding.ShardGroup` keeps a
  plain :class:`ReplicaHealth` per *broker* replica, so the shard
  router balances and fails over from the same view the backend
  balancers use — there is exactly one outstanding-count/EWMA
  implementation, not a parallel copy in the ring.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import BrokerError
from .adapters import ServiceAdapter
from .pool import ConnectionPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faulttolerance import CircuitBreaker

__all__ = [
    "ReplicaHealth",
    "BackendState",
    "Balancer",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "LatencyAwareBalancer",
]


class ReplicaHealth:
    """Live statistics for one replica of a replicated resource.

    Tracks a consecutive-error streak for circuit breaking: a replica
    that keeps failing is skipped by the balancers (:attr:`healthy`)
    until a success — via the balancers' occasional probe of unhealthy
    replicas when no healthy one exists — resets the streak.

    When a :class:`~repro.core.pipeline.CircuitBreakerStage` is in the
    pipeline it installs a full
    :class:`~repro.core.faulttolerance.CircuitBreaker` on
    :attr:`breaker`, which :meth:`note_completion` then feeds; without
    one the streak-based :attr:`healthy` flag is the only gate.
    """

    #: Consecutive errors after which a replica is considered unhealthy.
    UNHEALTHY_AFTER = 3

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.outstanding = 0
        self.completed = 0
        self.errors = 0
        self.consecutive_errors = 0
        self.ewma_latency = 0.0
        self._ewma_alpha = 0.2
        self.breaker: Optional["CircuitBreaker"] = None

    @property
    def healthy(self) -> bool:
        return self.consecutive_errors < self.UNHEALTHY_AFTER

    def note_dispatch(self) -> None:
        """Count one request sent to this replica."""
        self.outstanding += 1

    def note_completion(self, latency: float, error: bool = False) -> None:
        """Record a completion (or error) and update the EWMA latency."""
        self.outstanding = max(0, self.outstanding - 1)
        if error:
            self.errors += 1
            self.consecutive_errors += 1
            if self.breaker is not None:
                self.breaker.record_failure()
            return
        self.completed += 1
        self.consecutive_errors = 0
        if self.breaker is not None:
            self.breaker.record_success()
        if self.completed == 1:
            self.ewma_latency = latency
        else:
            alpha = self._ewma_alpha
            self.ewma_latency = alpha * latency + (1 - alpha) * self.ewma_latency

    @property
    def name(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} "
            f"outstanding={self.outstanding} ewma={self.ewma_latency:.4g}>"
        )


class BackendState(ReplicaHealth):
    """One backend replica behind a broker: health plus adapter and pool."""

    def __init__(self, adapter: ServiceAdapter, pool: ConnectionPool) -> None:
        super().__init__(label=adapter.name)
        self.adapter = adapter
        self.pool = pool

    @property
    def name(self) -> str:
        return self.adapter.name


class Balancer:
    """Base class: pick one replica for the next dispatch.

    All policies balance across *healthy* replicas (circuit breaking);
    when every replica is unhealthy they fall back to all of them, which
    doubles as the periodic probe that detects recovery.
    """

    def pick(self, backends: Sequence[ReplicaHealth]) -> ReplicaHealth:
        """Choose the replica for the next dispatch."""
        raise NotImplementedError

    @staticmethod
    def _candidates(backends: Sequence[ReplicaHealth]) -> Sequence[ReplicaHealth]:
        if not backends:
            raise BrokerError("no backends to balance across")
        healthy = [b for b in backends if b.healthy]
        return healthy if healthy else backends


class RoundRobinBalancer(Balancer):
    """Cycle through replicas regardless of their load."""

    def __init__(self) -> None:
        self._counter = count()

    def pick(self, backends: Sequence[ReplicaHealth]) -> ReplicaHealth:
        candidates = self._candidates(backends)
        return candidates[next(self._counter) % len(candidates)]


class LeastOutstandingBalancer(Balancer):
    """Pick the replica with the fewest in-flight requests (ties: first)."""

    def pick(self, backends: Sequence[ReplicaHealth]) -> ReplicaHealth:
        candidates = self._candidates(backends)
        return min(candidates, key=lambda b: b.outstanding)


class LatencyAwareBalancer(Balancer):
    """Pick by expected waiting time: EWMA latency × (outstanding + 1).

    Replicas with no history yet are tried first so every replica gets
    probed.
    """

    def pick(self, backends: Sequence[ReplicaHealth]) -> ReplicaHealth:
        candidates = self._candidates(backends)
        unprobed = [b for b in candidates if b.completed == 0]
        if unprobed:
            return min(unprobed, key=lambda b: b.outstanding)
        return min(candidates, key=lambda b: b.ewma_latency * (b.outstanding + 1))
