"""Fault-tolerance primitives: circuit breakers and retry policies.

The paper's broker keeps answering "even when the backend servers are
not available" (§III). The stages that implement that promise
(:class:`~repro.core.pipeline.RetryStage`,
:class:`~repro.core.pipeline.CircuitBreakerStage`,
:class:`~repro.core.pipeline.FailoverStage`) are built from the two
mechanisms here:

* :class:`CircuitBreaker` — the classic three-state machine, one per
  backend replica. CLOSED passes traffic and counts consecutive
  failures; ``failure_threshold`` of them OPEN the breaker, which
  rejects instantly (no connection attempts against a dead server);
  after ``reset_timeout`` it turns HALF_OPEN and admits a bounded
  number of live probe requests — a success closes it, a failure
  re-opens it. State transitions are mirrored into metrics
  (``broker.breaker.state`` samples plus ``broker.breaker.opened`` /
  ``.closed`` / ``.half_open`` counters).
* :class:`RetryPolicy` — capped exponential backoff with jitter for
  re-attempting a failed backend call, drawn from a named RNG
  substream so retry schedules are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from ..errors import BrokerError
from ..metrics import MetricsRegistry
from ..sim.core import Simulation

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
    "available_backends",
]


class BreakerState(Enum):
    """The circuit breaker's three states."""

    CLOSED = "closed"
    """Healthy: traffic flows, failures are counted."""

    OPEN = "open"
    """Tripped: dispatches are rejected without touching the backend."""

    HALF_OPEN = "half-open"
    """Probing: a bounded number of live requests test recovery."""


#: Numeric codes for ``broker.breaker.state`` samples.
_STATE_CODES = {
    BreakerState.CLOSED: 0.0,
    BreakerState.OPEN: 1.0,
    BreakerState.HALF_OPEN: 2.0,
}


class CircuitBreaker:
    """Closed/open/half-open failure gate for one backend replica.

    Parameters
    ----------
    sim:
        The owning simulation (supplies the clock).
    name:
        Label used in traces (normally the backend name).
    failure_threshold:
        Consecutive failures that trip a CLOSED breaker.
    reset_timeout:
        Seconds an OPEN breaker waits before going HALF_OPEN; also the
        replenish period for half-open probe budget.
    half_open_probes:
        Live probes admitted per HALF_OPEN window.
    metrics:
        Registry receiving state samples and transition counters.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str = "",
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise BrokerError(
                f"failure_threshold must be >= 1: {failure_threshold!r}"
            )
        if reset_timeout <= 0:
            raise BrokerError(f"reset_timeout must be > 0: {reset_timeout!r}")
        if half_open_probes < 1:
            raise BrokerError(
                f"half_open_probes must be >= 1: {half_open_probes!r}"
            )
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.metrics = metrics or MetricsRegistry()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_left = 0
        self._probe_window_at = 0.0

    # -- state ----------------------------------------------------------

    def current_state(self) -> BreakerState:
        """The state *now*, applying the OPEN→HALF_OPEN timer if due."""
        if (
            self._state is BreakerState.OPEN
            and self.sim.now - self._opened_at >= self.reset_timeout
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_left = self.half_open_probes
            self._probe_window_at = self.sim.now
        return self._state

    def try_probe(self) -> bool:
        """Claim one HALF_OPEN probe slot; False when the budget is spent.

        The budget replenishes every ``reset_timeout`` seconds, so a
        claimed-but-never-dispatched probe slot cannot wedge the breaker
        half-open forever.
        """
        if self.current_state() is not BreakerState.HALF_OPEN:
            return False
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        if self.sim.now - self._probe_window_at >= self.reset_timeout:
            self._probes_left = self.half_open_probes - 1
            self._probe_window_at = self.sim.now
            return True
        return False

    def allows(self) -> bool:
        """True when a dispatch may proceed (CLOSED, or a HALF_OPEN probe)."""
        state = self.current_state()
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN:
            return self.try_probe()
        return False

    # -- outcomes -------------------------------------------------------

    def record_success(self) -> None:
        """A dispatch succeeded: reset the streak; HALF_OPEN closes."""
        self._failures = 0
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A dispatch failed: count it; trip on threshold or failed probe."""
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
            return
        if self._state is BreakerState.OPEN:
            return  # late result of an in-flight call; already open
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._failures = 0
        self._opened_at = self.sim.now
        self._transition(BreakerState.OPEN)

    def _transition(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._state = state
        self.metrics.observe("broker.breaker.state", _STATE_CODES[state])
        self.metrics.increment(
            f"broker.breaker.{state.value.replace('-', '_')}"
        )
        self.sim.trace(
            "fault", "breaker", backend=self.name, state=state.value
        )

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.name!r} {self._state.value} "
            f"failures={self._failures}>"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter for backend re-attempts.

    ``max_attempts`` counts *total* executions (1 = no retries). The
    delay before retry *n* (n ≥ 1) is
    ``min(max_delay, base_delay × multiplier^(n-1))`` plus a uniform
    jitter of up to ``jitter × delay`` — the jitter decorrelates the
    retry storms of concurrent dispatchers.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise BrokerError(f"max_attempts must be >= 1: {self.max_attempts!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise BrokerError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise BrokerError(f"multiplier must be >= 1: {self.multiplier!r}")
        if self.jitter < 0:
            raise BrokerError(f"jitter must be >= 0: {self.jitter!r}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The pause before retry number *attempt* (1-based)."""
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter and delay > 0:
            delay += rng.uniform(0.0, self.jitter * delay)
        return delay


def available_backends(
    backends: Sequence[object], exclude: Sequence[object] = ()
) -> List[object]:
    """The replicas whose breakers admit a dispatch right now.

    Backends without a breaker installed are always available. A
    HALF_OPEN breaker consumes one probe slot when selected here, so
    callers should dispatch to what they are handed.
    """
    available: List[object] = []
    for backend in backends:
        if backend in exclude:
            continue
        breaker = getattr(backend, "breaker", None)
        if breaker is None or breaker.allows():
            available.append(backend)
    return available
