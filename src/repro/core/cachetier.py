"""Shared cross-broker cache tier: read-through, write-behind, TTL.

The paper's thesis is that brokers pay for themselves through
*cross-request* optimization (§III) — yet a per-broker
:class:`~repro.core.cache.ResultCache` only amortizes requests that
happen to land on the *same* broker. With ``B`` brokers behind a load
balancer, a popular result is fetched from the backend up to ``B``
times before every broker has it warm. :class:`SharedCacheTier` closes
that gap: one cache shared by every broker in a deployment (or shard),
so the first broker's backend fetch serves all of them.

Policies, following the ``read-through-cache`` / ``write-behind-cache``
patterns named in the roadmap:

* **read-through** — :class:`~repro.core.pipeline.CacheTierStage`
  consults the tier at ingress; on a miss the request proceeds to the
  backend and the dispatch-side fill stage populates the tier, so the
  next request — *at any broker* — hits.
* **write-behind** — :meth:`SharedCacheTier.write_behind` acknowledges
  a write immediately, invalidates the affected keys, and queues the
  backend write on a *bounded* flush queue drained by a background
  flusher process (batched, via ``broker.execute_direct``). When the
  queue is full the write falls back to write-through (the caller is
  told to perform the write synchronously) — bounded memory, no silent
  loss.
* **TTL + transaction-path invalidation** — entries expire after
  ``ttl`` like the local cache, but writes performed under a
  transaction also record ``txn_id → keys``; when the
  :class:`~repro.core.transactions.TransactionTracker` completes the
  transaction (see :meth:`watch_transactions`) every key it wrote is
  invalidated immediately, so the transaction path bounds staleness
  rather than the TTL.

The tier also keeps the deployment-wide accounting for cross-broker
query combining (``combine.*`` counters); the mechanism itself rides
peer gossip — see :class:`~repro.core.peering.CombinableAdvert` and
:class:`~repro.core.pipeline.QueryCombineStage`.

Every counter lives under the ``broker.cachetier.*`` prefix in the
shared registry, keeping the per-broker ``broker.cache.*`` /
shared ``broker.cachetier.*`` split documented in DESIGN.md §13. All
of it is opt-in: a broker with ``cache_tier`` unset behaves
byte-identically to before this module existed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from ..metrics import MetricsRegistry
from .cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulation
    from .broker import ServiceBroker
    from .transactions import TransactionTracker

__all__ = ["SharedCacheTier", "PendingWrite"]


class PendingWrite:
    """One queued write-behind operation.

    Carries the broker that accepted the write (the flusher replays it
    through that broker's ``execute_direct``), the adapter operation and
    payload, and the cache keys the write supersedes.
    """

    __slots__ = ("broker", "operation", "payload", "keys", "txn_id", "accepted_at")

    def __init__(
        self,
        broker: "ServiceBroker",
        operation: str,
        payload: Any,
        keys: Tuple[str, ...],
        txn_id: Optional[str],
        accepted_at: float,
    ) -> None:
        self.broker = broker
        self.operation = operation
        self.payload = payload
        self.keys = keys
        self.txn_id = txn_id
        self.accepted_at = accepted_at

    def __repr__(self) -> str:
        return (
            f"<PendingWrite {self.operation!r} keys={list(self.keys)} "
            f"via {self.broker.name}>"
        )


class SharedCacheTier:
    """One cache shared by every broker of a deployment or shard.

    Parameters
    ----------
    sim:
        The simulation whose clock stamps entries and drives the
        write-behind flusher.
    capacity, ttl:
        Sizing of the backing LRU store (see
        :class:`~repro.core.cache.ResultCache`).
    metrics:
        Registry for the ``broker.cachetier.*`` counters; pass the
        deployment's shared registry so one dump shows the whole tier.
    flush_queue_depth:
        Bound on the write-behind queue; a write arriving when the
        queue is full is refused (the caller write-throughs instead).
    flush_interval, flush_batch:
        The flusher wakes every ``flush_interval`` simulated seconds
        and drains up to ``flush_batch`` queued writes per wakeup.
    """

    def __init__(
        self,
        sim: "Simulation",
        capacity: int = 4096,
        ttl: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        flush_queue_depth: int = 64,
        flush_interval: float = 0.05,
        flush_batch: int = 8,
    ) -> None:
        if flush_queue_depth < 1:
            raise ValueError(
                f"flush_queue_depth must be >= 1: {flush_queue_depth!r}"
            )
        if flush_interval <= 0:
            raise ValueError(f"flush_interval must be positive: {flush_interval!r}")
        self.sim = sim
        self.metrics = metrics or MetricsRegistry()
        self.ttl = ttl
        self._store = ResultCache(
            capacity=capacity, ttl=ttl, clock=lambda: sim.now
        )
        self._store.bind_metrics(self.metrics, prefix="broker.cachetier")
        self.flush_queue_depth = flush_queue_depth
        self.flush_interval = flush_interval
        self.flush_batch = flush_batch
        self._flush_queue: "deque[PendingWrite]" = deque()
        self._flusher_running = False
        self._txn_keys: Dict[str, List[str]] = {}
        self._brokers: List["ServiceBroker"] = []
        m = self.metrics
        self._h_invalidations = m.handle("broker.cachetier.invalidations")
        self._h_txn_invalidations = m.handle("broker.cachetier.txn_invalidations")
        self._h_wb_enqueued = m.handle("broker.cachetier.writebehind.enqueued")
        self._h_wb_flushed = m.handle("broker.cachetier.writebehind.flushed")
        self._h_wb_overflow = m.handle("broker.cachetier.writebehind.overflow")
        self._h_wb_errors = m.handle("broker.cachetier.writebehind.errors")

    # ------------------------------------------------------------------
    # membership

    @property
    def brokers(self) -> List["ServiceBroker"]:
        """Brokers attached to this tier, in attach order."""
        return list(self._brokers)

    def attach(self, broker: "ServiceBroker") -> None:
        """Wire *broker* into the tier.

        Sets ``broker.cache_tier`` (consulted by the cache-tier and
        fill stages), registers the broker as a write-behind executor,
        and — when the broker tracks transactions — hooks transaction
        completion for write-set invalidation. Attaching twice is a
        no-op.
        """
        if broker in self._brokers:
            return
        self._brokers.append(broker)
        broker.cache_tier = self
        if broker.transactions is not None:
            self.watch_transactions(broker.transactions)

    def watch_transactions(self, tracker: "TransactionTracker") -> None:
        """Invalidate a transaction's write-set when *tracker* completes it.

        Idempotent per tracker: registering the same tracker twice
        installs a single callback.
        """
        watched = getattr(tracker, "_cachetier_watched", None)
        if watched is self:
            return
        tracker.on_complete(self._transaction_completed)
        tracker._cachetier_watched = self

    # ------------------------------------------------------------------
    # read path

    def get(self, key: str) -> Optional[Any]:
        """The fresh shared value for *key*, or ``None`` on miss."""
        return self._store.get(key)

    def put(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        """Read-through fill: store a backend result for every broker."""
        self._store.put(key, value, ttl=ttl)

    def invalidate(self, key: str) -> bool:
        """Drop *key* tier-wide; returns whether it was present."""
        present = self._store.invalidate(key)
        if present:
            self._h_invalidations.inc()
        return present

    @property
    def stats(self):
        """The backing store's :class:`~repro.core.cache.CacheStats`."""
        return self._store.stats

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    # ------------------------------------------------------------------
    # write-behind

    @property
    def pending_writes(self) -> int:
        """Writes queued but not yet flushed to the backend."""
        return len(self._flush_queue)

    def write_behind(
        self,
        broker: "ServiceBroker",
        operation: str,
        payload: Any,
        keys: Iterable[str] = (),
        txn_id: Optional[str] = None,
    ) -> bool:
        """Queue a backend write; ``True`` if accepted.

        The affected *keys* are invalidated immediately (readers must
        not see the superseded value), the write joins the bounded
        flush queue, and the background flusher replays it through
        *broker*'s ``execute_direct``. Returns ``False`` when the queue
        is full — the caller must then perform the write synchronously
        (write-through fallback); the keys are still invalidated.
        """
        key_tuple = tuple(keys)
        for key in key_tuple:
            self.invalidate(key)
        if txn_id is not None:
            self._txn_keys.setdefault(txn_id, []).extend(key_tuple)
        if len(self._flush_queue) >= self.flush_queue_depth:
            self._h_wb_overflow.inc()
            return False
        self._flush_queue.append(
            PendingWrite(
                broker=broker,
                operation=operation,
                payload=payload,
                keys=key_tuple,
                txn_id=txn_id,
                accepted_at=self.sim.now,
            )
        )
        self._h_wb_enqueued.inc()
        self._ensure_flusher()
        return True

    def flush(self):
        """Drain the entire flush queue now (a simulation process).

        ``yield from`` this from test or shutdown code to force every
        pending write to the backend immediately.
        """
        while self._flush_queue:
            yield from self._flush_one(self._flush_queue.popleft())

    def _ensure_flusher(self) -> None:
        if self._flusher_running:
            return
        self._flusher_running = True
        self.sim.process(self._flush_loop(), name="cachetier-flusher")

    def _flush_loop(self):
        while True:
            yield self.flush_interval
            drained = 0
            while self._flush_queue and drained < self.flush_batch:
                yield from self._flush_one(self._flush_queue.popleft())
                drained += 1
            if not self._flush_queue:
                self._flusher_running = False
                return

    def _flush_one(self, pending: PendingWrite):
        try:
            yield from pending.broker.execute_direct(
                pending.operation, pending.payload
            )
        except Exception:
            self._h_wb_errors.inc()
        else:
            self._h_wb_flushed.inc()
        # The write superseded these keys again at flush time: a
        # read-through fill may have raced the queued write.
        for key in pending.keys:
            self.invalidate(key)

    # ------------------------------------------------------------------
    # transaction-path invalidation

    def note_txn_write(self, txn_id: str, key: str) -> None:
        """Record that *txn_id* wrote *key* (invalidated on completion)."""
        self._txn_keys.setdefault(txn_id, []).append(key)

    def _transaction_completed(self, txn_id: str) -> None:
        for key in self._txn_keys.pop(txn_id, ()):
            if self.invalidate(key):
                self._h_txn_invalidations.inc()

    def __repr__(self) -> str:
        return (
            f"<SharedCacheTier brokers={len(self._brokers)} "
            f"entries={len(self._store)} pending_writes={self.pending_writes}>"
        )
