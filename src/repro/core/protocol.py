"""Broker message formats.

Web applications and brokers exchange :class:`BrokerRequest` /
:class:`BrokerReply` messages over UDP (the paper's distributed model
uses "lightweight UDP" between front end and brokers). A request names
a *service*, an *operation* on it, a payload, and its QoS tagging; a
reply carries the result (possibly degraded) plus provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Tuple

from ..net.address import Address

__all__ = ["BrokerRequest", "BrokerReply", "ReplyStatus"]


class ReplyStatus(str, Enum):
    """Outcome class of a broker reply."""

    OK = "ok"
    """Full-fidelity result from the backend (or a fresh cache hit)."""

    DEGRADED = "degraded"
    """Admission-rejected, but answered with a stale cached result."""

    DROPPED = "dropped"
    """Admission-rejected with only a 'system busy' indication."""

    ERROR = "error"
    """The backend (or the broker) failed the request."""


@dataclass(frozen=True)
class BrokerRequest:
    """One message from a web application to a service broker."""

    request_id: int
    service: str
    operation: str
    payload: Any
    reply_to: Address
    qos_level: int = 1
    txn_id: Optional[str] = None
    txn_step: int = 0
    cacheable: bool = True
    cache_key: Optional[str] = None
    sent_at: float = 0.0

    def key(self) -> str:
        """The cache/clustering key for this request."""
        if self.cache_key is not None:
            return self.cache_key
        return f"{self.service}:{self.operation}:{self.payload!r}"


@dataclass(frozen=True)
class BrokerReply:
    """One reply from a service broker to a web application."""

    request_id: int
    status: ReplyStatus
    payload: Any = None
    fidelity: float = 1.0
    from_cache: bool = False
    error: str = ""
    broker: str = ""
    queue_time: float = 0.0
    service_time: float = 0.0

    @property
    def ok(self) -> bool:
        """True for any answered request (full or degraded fidelity)."""
        return self.status in (ReplyStatus.OK, ReplyStatus.DEGRADED)

    @property
    def full_fidelity(self) -> bool:
        return self.status is ReplyStatus.OK and self.fidelity >= 1.0
