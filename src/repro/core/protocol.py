"""Broker message formats.

Web applications and brokers exchange :class:`BrokerRequest` /
:class:`BrokerReply` messages over UDP (the paper's distributed model
uses "lightweight UDP" between front end and brokers). A request names
a *service*, an *operation* on it, a payload, and its QoS tagging; a
reply carries the result (possibly degraded) plus provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, ClassVar, FrozenSet, Optional

from ..net.address import Address

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import RequestContext

__all__ = ["BrokerRequest", "BrokerReply", "ReplyStatus"]


class ReplyStatus(str, Enum):
    """Outcome class of a broker reply."""

    OK = "ok"
    """Full-fidelity result from the backend (or a fresh cache hit)."""

    DEGRADED = "degraded"
    """Admission-rejected, but answered with a stale cached result."""

    DROPPED = "dropped"
    """Admission-rejected with only a 'system busy' indication."""

    ERROR = "error"
    """The backend (or the broker) failed the request."""


@dataclass(frozen=True, slots=True)
class BrokerRequest:
    """One message from a web application to a service broker.

    ``context`` is the request's :class:`~repro.core.pipeline.RequestContext`
    riding along from the front end to the broker. It models an
    out-of-band trace header: excluded from equality, repr, and
    simulated wire size (see ``__nonwire_fields__``).
    """

    #: Dataclass fields that contribute no simulated wire bytes.
    __nonwire_fields__: ClassVar[FrozenSet[str]] = frozenset({"context"})

    request_id: int
    service: str
    operation: str
    payload: Any
    reply_to: Address
    qos_level: int = 1
    txn_id: Optional[str] = None
    txn_step: int = 0
    cacheable: bool = True
    cache_key: Optional[str] = None
    sent_at: float = 0.0
    context: Optional["RequestContext"] = field(
        default=None, compare=False, repr=False
    )

    def key(self) -> str:
        """The cache/clustering key for this request."""
        if self.cache_key is not None:
            return self.cache_key
        return f"{self.service}:{self.operation}:{self.payload!r}"


@dataclass(frozen=True, slots=True)
class BrokerReply:
    """One reply from a service broker to a web application.

    ``context`` carries the request's pipeline context back to the
    caller, so the full per-stage timeline is inspectable end to end.
    Like the request's, it adds no simulated wire bytes.
    """

    #: Dataclass fields that contribute no simulated wire bytes.
    __nonwire_fields__: ClassVar[FrozenSet[str]] = frozenset({"context"})

    request_id: int
    status: ReplyStatus
    payload: Any = None
    fidelity: float = 1.0
    from_cache: bool = False
    error: str = ""
    broker: str = ""
    queue_time: float = 0.0
    service_time: float = 0.0
    context: Optional["RequestContext"] = field(
        default=None, compare=False, repr=False
    )

    def with_context(self, context: "RequestContext") -> "BrokerReply":
        """A copy of the reply carrying *context* (replies are frozen)."""
        return replace(self, context=context)

    @property
    def ok(self) -> bool:
        """True for any answered request (full or degraded fidelity)."""
        return self.status in (ReplyStatus.OK, ReplyStatus.DEGRADED)

    @property
    def full_fidelity(self) -> bool:
        return self.status is ReplyStatus.OK and self.fidelity >= 1.0
