"""Request clustering: batch related requests into one backend access.

"Service brokers can gather all the requests and rewrite the query
command" (paper §V.A) — clustering is application specific, so the
engine is a pluggable :class:`Combiner` plus a :class:`ClusteringConfig`
(batch size cap and optional gather window). Four combiners cover the
paper's cases:

* :class:`IdenticalRequestCombiner` — identical operations are executed
  once and the single result is fanned out (shared query results).
* :class:`RepeatWorkloadCombiner` — the paper's Figure-7 scheme: *n*
  same-script CGI requests become one request with a ``repeat=n``
  parameter; the backend repeats the workload n times in one slot.
* :class:`MgetCombiner` — the MGET proposal: GETs for different paths on
  the same server combine into one ``MGET URI:a URI:b`` exchange and the
  multipart response is split back per path.
* :class:`InListQueryCombiner` — multiple-query optimization in the
  style the paper cites (Sellis, TODS 1988): *n* keyed SELECTs against
  the same table/column are rewritten into one ``WHERE key IN (...)``
  query and the result rows are routed back to each requester.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..db.client import QueryResult
from ..db.parser import parse
from ..db.query import Comparison, SelectStatement
from ..errors import BrokerError, SqlSyntaxError
from ..http.messages import HttpResponse
from .protocol import BrokerRequest

__all__ = [
    "Combiner",
    "ClusteringConfig",
    "IdenticalRequestCombiner",
    "RepeatWorkloadCombiner",
    "MgetCombiner",
    "InListQueryCombiner",
    "FileBatchCombiner",
]


class Combiner:
    """Strategy for grouping requests and merging/splitting them."""

    def key(self, request: BrokerRequest) -> Optional[str]:
        """The cluster key for *request*; ``None`` = not clusterable."""
        raise NotImplementedError

    def combine(self, requests: Sequence[BrokerRequest]) -> Tuple[str, Any]:
        """Merge a batch into one ``(operation, payload)`` backend call."""
        raise NotImplementedError

    def split(self, requests: Sequence[BrokerRequest], result: Any) -> List[Any]:
        """Distribute the combined *result* back to each request."""
        raise NotImplementedError


@dataclass(frozen=True)
class ClusteringConfig:
    """How aggressively a broker clusters.

    ``max_batch`` is the paper's *degree of clustering*; ``window`` is
    how long a dispatcher waits to let companions accumulate (0 =
    cluster only what is already queued).
    """

    combiner: Combiner
    max_batch: int = 1
    window: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise BrokerError(f"max_batch must be >= 1: {self.max_batch!r}")
        if self.window < 0:
            raise BrokerError(f"window must be >= 0: {self.window!r}")


class IdenticalRequestCombiner(Combiner):
    """Identical requests are served by one backend execution.

    "Each application send requests and launch I/O operations separately
    even for identical operations" — this combiner removes exactly that
    duplication.
    """

    def key(self, request: BrokerRequest) -> Optional[str]:
        return request.key()

    def combine(self, requests: Sequence[BrokerRequest]) -> Tuple[str, Any]:
        head = requests[0]
        return head.operation, head.payload

    def split(self, requests: Sequence[BrokerRequest], result: Any) -> List[Any]:
        return [result for _ in requests]


class RepeatWorkloadCombiner(Combiner):
    """Figure-7 clustering: one CGI call repeats the workload *n* times.

    Applies to HTTP ``"get"`` operations whose payload is
    ``(path, params)``; the combined call carries ``repeat=n`` and the
    backend script (see the FIG-7 scenario) loops its workload. Every
    request in the batch receives the same response body.
    """

    def __init__(self, repeat_param: str = "repeat") -> None:
        self.repeat_param = repeat_param

    def key(self, request: BrokerRequest) -> Optional[str]:
        if request.operation != "get":
            return None
        path, _params = request.payload
        return f"repeat:{request.service}:{path}"

    def combine(self, requests: Sequence[BrokerRequest]) -> Tuple[str, Any]:
        path, params = requests[0].payload
        merged = dict(params or {})
        merged[self.repeat_param] = len(requests)
        return "get", (path, merged)

    def split(self, requests: Sequence[BrokerRequest], result: Any) -> List[Any]:
        return [result for _ in requests]


class MgetCombiner(Combiner):
    """Combine GETs for different paths into one MGET exchange."""

    def key(self, request: BrokerRequest) -> Optional[str]:
        if request.operation != "get":
            return None
        # All GETs to the same service cluster together; paths differ.
        return f"mget:{request.service}"

    def combine(self, requests: Sequence[BrokerRequest]) -> Tuple[str, Any]:
        if len(requests) == 1:
            return requests[0].operation, requests[0].payload
        paths = [request.payload[0] for request in requests]
        params = dict(requests[0].payload[1] or {})
        return "mget", (tuple(paths), params)

    def split(self, requests: Sequence[BrokerRequest], result: Any) -> List[Any]:
        if len(requests) == 1:
            return [result]
        if not isinstance(result, HttpResponse) or not result.parts:
            raise BrokerError(f"MGET result has no parts: {result!r}")
        # Parts come back in request order; map positionally so duplicate
        # paths each get their own copy.
        if len(result.parts) != len(requests):
            raise BrokerError(
                f"MGET returned {len(result.parts)} parts for {len(requests)} requests"
            )
        return [part for _, part in result.parts]


def _sql_literal(value: Any) -> str:
    """Render a Python value as a mini-SQL literal."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


class InListQueryCombiner(Combiner):
    """Rewrite *n* keyed SELECTs into one ``WHERE key IN (...)`` query.

    Clusters ``"query"`` operations whose SQL parses to::

        SELECT <cols|*> FROM <table> WHERE <key> = <literal>

    (no ORDER BY / LIMIT / aggregates). The combined query selects the
    requested columns plus the key column, so the broker can route each
    result row back to the request whose key value it matches —
    including requests whose key found no rows (they receive an empty
    result, exactly as if they had run alone).
    """

    def _pattern(self, request: BrokerRequest) -> Optional[SelectStatement]:
        if request.operation != "query" or not isinstance(request.payload, str):
            return None
        try:
            statement = parse(request.payload)
        except SqlSyntaxError:
            return None
        if not isinstance(statement, SelectStatement):
            return None
        if (
            statement.aggregates
            or statement.order_by is not None
            or statement.limit is not None
            or statement.group_by is not None
        ):
            return None
        if not isinstance(statement.where, Comparison) or statement.where.op != "=":
            return None
        return statement

    def key(self, request: BrokerRequest) -> Optional[str]:
        statement = self._pattern(request)
        if statement is None:
            return None
        return (
            f"inlist:{request.service}:{statement.table}:"
            f"{statement.columns!r}:{statement.where.column}"
        )

    def combine(self, requests: Sequence[BrokerRequest]) -> Tuple[str, Any]:
        statements = [self._pattern(request) for request in requests]
        assert all(s is not None for s in statements)
        head = statements[0]
        if len(requests) == 1:
            return "query", requests[0].payload
        key_column = head.where.column  # type: ignore[union-attr]
        values: List[Any] = []
        for statement in statements:
            value = statement.where.value  # type: ignore[union-attr]
            if value not in values:
                values.append(value)
        if head.columns:
            selected = list(head.columns)
            if key_column not in selected:
                selected.append(key_column)
            select_list = ", ".join(selected)
        else:
            select_list = "*"
        literals = ", ".join(_sql_literal(value) for value in values)
        sql = (
            f"SELECT {select_list} FROM {head.table} "
            f"WHERE {key_column} IN ({literals})"
        )
        return "query", sql

    def split(self, requests: Sequence[BrokerRequest], result: Any) -> List[Any]:
        if len(requests) == 1:
            return [result]
        if not isinstance(result, QueryResult):
            raise BrokerError(
                f"InListQueryCombiner expected a QueryResult, got {result!r}"
            )
        head = self._pattern(requests[0])
        assert head is not None
        key_column = head.where.column  # type: ignore[union-attr]
        try:
            key_position = result.columns.index(key_column)
        except ValueError:
            raise BrokerError(
                f"combined result lacks the key column {key_column!r}"
            ) from None
        wanted = tuple(head.columns) if head.columns else result.columns
        positions = [result.columns.index(name) for name in wanted]
        outputs: List[Any] = []
        for request in requests:
            statement = self._pattern(request)
            assert statement is not None
            value = statement.where.value  # type: ignore[union-attr]
            rows = tuple(
                tuple(row[p] for p in positions)
                for row in result.rows
                if row[key_position] == value
            )
            outputs.append(
                QueryResult(columns=wanted, rows=rows, stats=dict(result.stats))
            )
        return outputs


class FileBatchCombiner(Combiner):
    """Cluster file reads into one batched disk pass.

    "The file servers may cluster requests whose accesses are in
    adjacent disk layout" (paper §II): batching the reads into one
    ``read_batch`` exchange lets the file server's elevator order the
    whole group by block position, turning scattered seeks into one
    sweep. Results come back per file in request order.
    """

    def key(self, request: BrokerRequest) -> Optional[str]:
        if request.operation != "read":
            return None
        return f"filebatch:{request.service}"

    def combine(self, requests: Sequence[BrokerRequest]) -> Tuple[str, Any]:
        if len(requests) == 1:
            return requests[0].operation, requests[0].payload
        return "read_batch", tuple(request.payload for request in requests)

    def split(self, requests: Sequence[BrokerRequest], result: Any) -> List[Any]:
        if len(requests) == 1:
            return [result]
        if not isinstance(result, list) or len(result) != len(requests):
            raise BrokerError(
                f"read_batch returned {result!r} for {len(requests)} requests"
            )
        return list(result)
