"""Result cache: LRU with per-entry TTL and stale-serving.

Brokers see every result from their backend, so popular query results
can be cached and served without touching the backend (paper §III,
"Caching of query results"). Expired entries are *kept* until evicted:
a stale entry cannot satisfy a normal lookup, but the fidelity policy
may serve it as a degraded reply when admission control rejects a
request ("cached results from previous queries with lower fidelity").

Accounting lives in a :class:`CacheStats` value object *and*, when the
cache is bound to a :class:`~repro.metrics.MetricsRegistry` (see
:meth:`ResultCache.bind_metrics`), is mirrored onto registry counters
under the ``broker.cache.*`` prefix so per-broker cache behaviour shows
up next to every other broker metric. The shared cross-broker tier uses
the sibling ``broker.cachetier.*`` prefix — see
:mod:`repro.core.cachetier`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

__all__ = ["ResultCache", "CacheEntry", "CacheStats"]

#: Registry counter names mirrored from :class:`CacheStats` fields.
_MIRRORED_STATS = ("hits", "misses", "stale_hits", "evictions", "puts")


@dataclass(slots=True)
class CacheEntry:
    """One cached result."""

    value: Any
    stored_at: float
    expires_at: float
    hits: int = 0

    def fresh(self, now: float) -> bool:
        """True while the entry has not passed its expiry."""
        return now < self.expires_at


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Capacity-bounded LRU cache with TTL.

    Parameters
    ----------
    capacity:
        Maximum number of entries; least-recently-used is evicted.
    ttl:
        Default seconds before an entry goes stale.
    clock:
        Callable returning the current time (pass ``lambda: sim.now``).
    metrics:
        Optional registry; when given, statistics are also mirrored to
        ``broker.cache.*`` counters (see :meth:`bind_metrics`).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: float = 60.0,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl!r}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()
        self._handles: Optional[dict] = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: Any, prefix: str = "broker.cache") -> None:
        """Mirror statistics onto registry counters under *prefix*.

        The :class:`CacheStats` value object stays authoritative (and
        keeps working without a registry); this additionally interns one
        counter handle per stat — ``broker.cache.hits``,
        ``broker.cache.misses``, ``broker.cache.stale_hits``,
        ``broker.cache.evictions``, ``broker.cache.puts`` — so the
        per-broker cache shows up in ``metrics.counters("broker.")``
        dumps next to every other broker counter. Binding twice is a
        no-op; counters never influence simulated behaviour.
        """
        if self._handles is not None:
            return
        self._handles = {
            name: metrics.handle(f"{prefix}.{name}") for name in _MIRRORED_STATS
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.fresh(self._clock())

    def get(self, key: str) -> Optional[Any]:
        """The fresh value for *key*, or ``None`` (stale counts as miss)."""
        entry = self._entries.get(key)
        now = self._clock()
        if entry is None or not entry.fresh(now):
            self.stats.misses += 1
            if self._handles is not None:
                self._handles["misses"].inc()
            return None
        entry.hits += 1
        self.stats.hits += 1
        if self._handles is not None:
            self._handles["hits"].inc()
        self._entries.move_to_end(key)
        return entry.value

    def get_stale(self, key: str) -> Optional[Tuple[Any, float]]:
        """The value for *key* even if expired, with its age in seconds.

        Does not count toward hit/miss statistics of normal lookups;
        used by the fidelity policy for degraded replies.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self.stats.stale_hits += 1
        if self._handles is not None:
            self._handles["stale_hits"].inc()
        return entry.value, self._clock() - entry.stored_at

    def put(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        """Store *value* under *key* (evicting LRU entries if needed)."""
        now = self._clock()
        lifetime = self.ttl if ttl is None else ttl
        self._entries[key] = CacheEntry(
            value=value, stored_at=now, expires_at=now + lifetime
        )
        self._entries.move_to_end(key)
        self.stats.puts += 1
        if self._handles is not None:
            self._handles["puts"].inc()
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._handles is not None:
                self._handles["evictions"].inc()

    def invalidate(self, key: str) -> bool:
        """Drop *key*; returns whether it was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def keys(self):
        """Current keys, least recently used first."""
        return list(self._entries)

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hit_ratio={self.stats.hit_ratio:.2f}>"
        )
