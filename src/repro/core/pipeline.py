"""The broker's composable stage pipeline.

The paper describes the broker as a *sequence of mechanisms* — admission
control, cache lookup, QoS queueing, clustering, pooled execution,
fidelity degradation (§III-§IV) — and this module makes that sequence
explicit. A :class:`ServiceBroker` no longer hard-wires its control
flow; it runs an ordered list of :class:`BrokerStage` objects assembled
into a :class:`StagePipeline`, and every request carries a
:class:`RequestContext` from the moment the front end creates it,
through the net layer, through every stage, to the backend adapter and
back.

Three stock configurations express the paper's models as *stage plans*
rather than code paths:

* :func:`distributed_stage_plan` — admission happens at the broker
  (§III, Figure 2);
* :func:`centralized_stage_plan` — admission happens at the front end
  from streamed load reports, so the broker omits its admission gate
  and gains a :class:`LoadReportStage` (§IV, Figure 4);
* :func:`fault_tolerant_stage_plan` — the distributed plan hardened for
  backend failures: a :class:`TimeoutBudgetStage` stamps each request
  with its QoS deadline, and dispatch runs through
  :class:`CircuitBreakerStage` → :class:`RetryStage` →
  :class:`FailoverStage` before a second :class:`FidelityFallbackStage`
  converts whatever still failed into the paper's §III degraded reply
  (stale cache or busy notice) instead of an error.

The context records a per-stage timeline (enter/exit timestamps and the
stage's decision) and the pipeline mirrors it into the broker's
:class:`~repro.metrics.MetricsRegistry` (``broker.stage.<name>.time``
samples, ``broker.stage.<name>.<decision>`` counters) and the
simulation tracer (category ``"pipeline"``), so every layer gets
uniform instrumentation for free.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from enum import Enum
from inspect import isgeneratorfunction
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import (
    BrokerError,
    ConnectionClosed,
    NetworkError,
    ServiceError,
)
from ..net.address import Address
from .faulttolerance import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
    available_backends,
)
from .protocol import BrokerReply, BrokerRequest, ReplyStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .broker import ServiceBroker
    from .loadbalance import BackendState
    from .queueing import QueuedRequest

__all__ = [
    "StageOutcome",
    "StageRecord",
    "RequestContext",
    "BatchContext",
    "BrokerStage",
    "StagePipeline",
    "ValidateServiceStage",
    "ShardRouteStage",
    "ArrivalStage",
    "TimeoutBudgetStage",
    "CacheLookupStage",
    "CacheTierStage",
    "QueryCombineStage",
    "ThrottleStage",
    "AdmissionStage",
    "FidelityFallbackStage",
    "EnqueueStage",
    "BackpressureStage",
    "ClusterStage",
    "CircuitBreakerStage",
    "RetryStage",
    "FailoverStage",
    "ExecuteStage",
    "CacheFillStage",
    "ReplyStage",
    "LoadReportStage",
    "execute_batch_on",
    "distributed_stage_plan",
    "centralized_stage_plan",
    "fault_tolerant_stage_plan",
    "overload_protected_stage_plan",
    "sharded_stage_plan",
    "cache_tier_stage_plan",
    "stage_plan",
]


class StageOutcome(Enum):
    """What a stage tells the pipeline to do next."""

    CONTINUE = "continue"
    """Proceed to the next stage."""

    REPLY = "reply"
    """``ctx.reply`` is set; send it and stop processing the request."""

    QUEUED = "queued"
    """The request was handed to the broker queue; a dispatcher resumes
    it at the first dispatch stage."""

    DONE = "done"
    """Dispatch finished; replies (if any) have been sent by the stage."""

    FORWARDED = "forwarded"
    """The request was relayed to another broker (the owning shard's
    leader); this broker stops processing it — the reply will come from
    the forward target, addressed straight to the original caller."""


class StageRecord:
    """One entry of a request's per-stage timeline."""

    __slots__ = ("stage", "entered", "exited", "decision")

    def __init__(
        self, stage: str, entered: float, exited: float, decision: str = ""
    ) -> None:
        self.stage = stage
        self.entered = entered
        self.exited = exited
        self.decision = decision

    @property
    def duration(self) -> float:
        """Simulated seconds spent in the stage."""
        return self.exited - self.entered

    def __repr__(self) -> str:
        return (
            f"<StageRecord {self.stage} +{self.duration:.6f}s "
            f"{self.decision or 'continue'}>"
        )


class RequestContext:
    """Mutable per-request state threaded through every broker stage.

    A context is created where the request originates (the front-end
    side's :class:`~repro.core.client.BrokerClient`, or a
    :class:`~repro.frontend.server.FrontendWebServer` for HTTP-level
    requests), rides the request message through the net layer (it
    contributes no simulated wire bytes — see
    :func:`repro.net.message.estimate_size`), and is then threaded
    through every pipeline stage to the adapter and back: the broker's
    reply carries the same context object, so the caller can inspect
    the complete end-to-end timeline.
    """

    #: Fields of this object never count toward simulated message sizes.
    __wire_bytes__ = 0

    __slots__ = (
        "request",
        "origin",
        "created_at",
        "broker",
        "received_at",
        "qos_level",
        "effective_level",
        "protected",
        "admission",
        "reply",
        "enqueued_at",
        "dispatched_at",
        "completed_at",
        "backend",
        "batch_size",
        "deadline",
        "stages",
        "annotations",
        "parent",
        "_decision",
    )

    def __init__(
        self,
        request: Optional[BrokerRequest] = None,
        created_at: float = 0.0,
        origin: str = "",
    ) -> None:
        self.request = request
        self.origin = origin
        self.created_at = created_at
        self.broker = ""
        self.received_at: Optional[float] = None
        self.qos_level = request.qos_level if request is not None else 1
        self.effective_level = self.qos_level
        self.protected = False
        self.admission: Optional[Any] = None
        self.reply: Optional[BrokerReply] = None
        self.enqueued_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.backend = ""
        self.batch_size = 1
        self.deadline: Optional[float] = None
        self.stages: List[StageRecord] = []
        self.annotations: Dict[str, Any] = {}
        #: The enclosing request's context, when this request is a
        #: nested broker call made on behalf of a front-end request
        #: (set via ``BrokerClient.call(..., parent=...)``). The obs
        #: layer uses it to nest child traces under the parent's trace.
        self.parent: Optional["RequestContext"] = None
        self._decision = ""

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def originate(
        cls,
        now: float,
        origin: str = "",
        request: Optional[BrokerRequest] = None,
    ) -> "RequestContext":
        """Create a fresh context at the point a request enters the system."""
        return cls(request=request, created_at=now, origin=origin)

    @classmethod
    def adopt(
        cls, request: BrokerRequest, now: float, broker: str = ""
    ) -> "RequestContext":
        """The context for *request* at broker ingress.

        Reuses the context the front end attached (recording the network
        transit as a ``"net"`` stage) or creates a fresh one for bare
        requests sent without a context.
        """
        ctx = request.context
        if ctx is None:
            ctx = cls(request=request, created_at=now)
        else:
            ctx.request = request
            ctx.record_stage("net", request.sent_at, now, "udp")
        ctx.broker = broker
        ctx.received_at = now
        return ctx

    # -- per-stage records ----------------------------------------------

    def record_stage(
        self, stage: str, entered: float, exited: float, decision: str = ""
    ) -> StageRecord:
        """Append one :class:`StageRecord` to the timeline and return it."""
        record = StageRecord(stage, entered, exited, decision)
        self.stages.append(record)
        return record

    def set_decision(self, decision: str) -> None:
        """Stages call this to label the record the pipeline is writing."""
        self._decision = decision

    def take_decision(self, default: str = "") -> str:
        """Consume the pending stage decision (pipeline internal)."""
        decision, self._decision = self._decision, ""
        return decision or default

    def annotate(self, key: str, value: Any) -> None:
        """Attach free-form metadata to the request (visible end to end)."""
        self.annotations[key] = value

    # -- inspection ------------------------------------------------------

    def stage_names(self) -> List[str]:
        """The names of the stages traversed so far, in order."""
        return [record.stage for record in self.stages]

    def timeline(self) -> List[Tuple[str, float, float, str]]:
        """The timeline as ``(stage, entered, exited, decision)`` tuples."""
        return [
            (r.stage, r.entered, r.exited, r.decision) for r in self.stages
        ]

    def duration_of(self, stage: str) -> float:
        """Total simulated time spent in all records of *stage*."""
        return sum(r.duration for r in self.stages if r.stage == stage)

    def time_left(self, now: float) -> Optional[float]:
        """Seconds until the deadline, or ``None`` when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - now

    @property
    def rejected(self) -> bool:
        """True once admission control has rejected the request."""
        return self.admission is not None and not self.admission.admitted

    @property
    def finished(self) -> bool:
        """True once a reply has been produced for the request."""
        return self.completed_at is not None

    def __repr__(self) -> str:
        rid = self.request.request_id if self.request is not None else "?"
        return (
            f"<RequestContext request={rid} broker={self.broker!r} "
            f"stages={self.stage_names()}>"
        )


class BatchContext:
    """Shared state for one dispatch-path traversal.

    Dispatchers pull one queued request and run it through the dispatch
    stages; clustering may add companions, so dispatch stages operate on
    a *batch* of queued requests (usually of size one) with one combined
    backend call.

    ``fault`` classifies a *retryable* failure (``"unreachable"``,
    ``"breaker-open"``, ``"deadline"``); it stays ``None`` for service
    errors, which re-running would not fix. ``candidates`` optionally
    narrows the replicas :class:`ExecuteStage` balances across (the
    circuit-breaker stage sets it); ``None`` means all of them.
    """

    __slots__ = (
        "broker",
        "items",
        "operation",
        "payload",
        "backend",
        "candidates",
        "started",
        "latency",
        "result",
        "failure",
        "fault",
        "payloads",
    )

    def __init__(self, broker: "ServiceBroker", items: List["QueuedRequest"]) -> None:
        self.broker = broker
        self.items = items
        self.operation = ""
        self.payload: Any = None
        self.backend: Optional["BackendState"] = None
        self.candidates: Optional[List["BackendState"]] = None
        self.started = 0.0
        self.latency = 0.0
        self.result: Any = None
        self.failure: Optional[str] = None
        self.fault: Optional[str] = None
        self.payloads: List[Any] = []

    @property
    def requests(self) -> List[BrokerRequest]:
        """The batched requests, leader first."""
        return [item.request for item in self.items]

    @property
    def contexts(self) -> List[RequestContext]:
        """The request contexts of the batch (skipping bare items)."""
        return [item.context for item in self.items if item.context is not None]

    @property
    def deadline(self) -> Optional[float]:
        """The tightest request deadline in the batch, if any is set."""
        deadlines = [
            ctx.deadline for ctx in self.contexts if ctx.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<BatchContext size={len(self.items)} op={self.operation!r}>"


class BrokerStage:
    """One replaceable step of the broker's request path.

    Subclasses override :meth:`on_request` (ingress path, synchronous —
    it must never block) and/or :meth:`on_batch` (dispatch path; may be
    a ``yield from`` generator that advances simulated time). A stage
    instance belongs to exactly one broker; :meth:`bind` is called once
    when the pipeline is assembled.
    """

    #: Stage name used in metrics, traces, and ``describe()`` output.
    name = "stage"

    #: True for the stage that hands requests to the broker queue; it
    #: marks the boundary between the ingress and dispatch sections.
    boundary = False

    def __init__(self) -> None:
        self.broker: Optional["ServiceBroker"] = None

    def bind(self, broker: "ServiceBroker") -> None:
        """Attach the stage to *broker* (stages are per-broker objects)."""
        if self.broker is not None and self.broker is not broker:
            raise BrokerError(
                f"stage {self.name!r} is already bound to {self.broker.name!r}; "
                "stage plans cannot be shared between brokers"
            )
        self.broker = broker

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Process one arriving request; ingress stages override this."""
        return StageOutcome.CONTINUE

    def on_batch(self, batch: BatchContext):
        """Process one dispatch batch; dispatch stages override this.

        May return a :class:`StageOutcome` directly or be a generator
        (the pipeline ``yield from``-s it and uses its return value).
        """
        return StageOutcome.CONTINUE

    @classmethod
    def summary(cls) -> str:
        """The first line of the stage's docstring (for ``describe()``)."""
        doc = cls.__doc__ or ""
        for line in doc.splitlines():
            line = line.strip()
            if line:
                return line
        return ""

    def __repr__(self) -> str:
        bound = self.broker.name if self.broker is not None else "unbound"
        return f"<{type(self).__name__} {self.name!r} ({bound})>"


# ---------------------------------------------------------------------------
# Ingress stages (synchronous; run in the broker's receive loop)
# ---------------------------------------------------------------------------


class ValidateServiceStage(BrokerStage):
    """Rejects requests naming a service this broker does not front."""

    name = "validate"

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Answer with an ERROR reply when the service name mismatches."""
        broker = self.broker
        request = ctx.request
        if request.service == broker.service:
            return StageOutcome.CONTINUE
        ctx.set_decision("unknown-service")
        ctx.reply = BrokerReply(
            request_id=request.request_id,
            status=ReplyStatus.ERROR,
            error=f"unknown service {request.service!r}",
            broker=broker.name,
            context=ctx,
        )
        return StageOutcome.REPLY


class ShardRouteStage(BrokerStage):
    """Routes each request to the shard owning its key (consistent hash).

    The front end addresses a *service*; this stage makes the broker
    tier agree on which shard serves each request. The owning shard is
    a pure function of the request key through the service's seeded
    :class:`~repro.core.sharding.HashRing`. Requests owned locally
    continue down the pipeline; the rest are relayed to the owning
    shard's live leader (preferring the leader learned from
    :class:`~repro.core.peering.RouteAdvert` gossip, falling back to
    directory truth) and processing stops here with
    :data:`StageOutcome.FORWARDED` — the relay takes no admission slot,
    queues nothing, and the reply travels straight from the owner to
    the original caller.

    Without a directory, or for services the directory does not know,
    every request routes local: the degenerate single-shard
    configuration is a pass-through.
    """

    name = "shard-route"

    #: Forward-hop ceiling: under ring-view disagreement a request could
    #: otherwise bounce between brokers forever; past the ceiling the
    #: current broker serves it locally.
    MAX_HOPS = 3

    def __init__(self, directory=None, shard: int = 0) -> None:
        super().__init__()
        #: The :class:`~repro.core.sharding.ShardDirectory`, or ``None``
        #: for a degenerate always-local stage.
        self.directory = directory
        #: The shard index this broker serves.
        self.shard = shard

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind and pre-resolve the routing counters."""
        super().bind(broker)
        metrics = broker.metrics
        self._local = metrics.handle("broker.shard.local")
        self._forwarded = metrics.handle("broker.shard.forwarded")

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Continue locally or relay to the owning shard's leader."""
        directory = self.directory
        request = ctx.request
        if directory is None or not directory.knows(request.service):
            self._local.inc()
            ctx.set_decision("local")
            return StageOutcome.CONTINUE
        target_shard = directory.shard_of(request.service, request.key())
        if target_shard == self.shard:
            self._local.inc()
            ctx.set_decision("local")
            return StageOutcome.CONTINUE
        broker = self.broker
        annotations = ctx.annotations
        hops = annotations.get("shard.hops", 0)
        if hops >= self.MAX_HOPS:
            broker.metrics.increment("broker.shard.hop_limit")
            ctx.set_decision("hop-limit")
            return StageOutcome.CONTINUE
        group = directory.group(request.service, target_shard)
        target = None
        advertised = broker.shard_view.get((request.service, target_shard))
        if advertised is not None:
            target = group.member(advertised)
            if target is not None and not target.alive:
                target = None
        if target is None:
            target = group.route()
        if target is None or target is broker:
            broker.metrics.increment("broker.shard.no_route")
            ctx.set_decision("no-route")
            return StageOutcome.CONTINUE
        now = broker.sim._now
        path = annotations.get("shard.path")
        if path is None:
            path = annotations["shard.path"] = []
        path.append((broker.name, ctx.received_at, now))
        annotations["shard.hops"] = hops + 1
        forwarded = _dc_replace(request, sent_at=now)
        ctx.request = forwarded
        broker.socket.sendto(forwarded, target.address)
        self._forwarded.inc()
        ctx.set_decision("forward")
        return StageOutcome.FORWARDED


class ArrivalStage(BrokerStage):
    """Arrival accounting: metrics, intensity window, transaction state.

    Clamps the QoS level, feeds the admission controller's sliding
    arrival window, advances transaction tracking (publishing txn-state
    gossip to peers when configured), and computes the request's
    effective priority and protection flag.
    """

    name = "arrival"

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind and pre-resolve the arrival counters."""
        super().bind(broker)
        self._arrivals = broker.metrics.handle("broker.arrivals")
        self._arrivals_by_level: Dict[int, Any] = {}

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Record the arrival and stamp QoS/transaction state on *ctx*."""
        broker = self.broker
        request = ctx.request
        level = broker.qos.clamp(request.qos_level)
        ctx.qos_level = level
        self._arrivals.inc()
        by_level = self._arrivals_by_level
        counter = by_level.get(level)
        if counter is None:
            counter = by_level[level] = broker.metrics.handle(
                f"broker.arrivals.qos{level}"
            )
        counter.inc()
        broker.admission.record_arrival(level)
        if broker.transactions is not None:
            advanced_to = broker.transactions.observe(request)
            if advanced_to is not None and broker.peer_group is not None:
                broker.peer_group.publish(broker, request.txn_id, advanced_to)
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "broker", "arrival",
                broker=broker.name, request_id=request.request_id, qos=level,
                operation=request.operation,
            )
        ctx.effective_level = broker.priority_of(request)
        ctx.protected = (
            broker.transactions.protected(request)
            if broker.transactions is not None
            else False
        )
        return StageOutcome.CONTINUE


class TimeoutBudgetStage(BrokerStage):
    """Stamps each request with its completion deadline from the QoS spec.

    The paper's fidelity adaptation is time-based — "the longer a
    request is allowed to be processed, the higher fidelity it will
    receive" (§III) — so the fault-tolerant plan makes the allowance
    explicit: the request's QoS class maps to a completion budget
    (:meth:`QoSPolicy.deadline <repro.core.qos.QoSPolicy.deadline>`,
    falling back to this stage's ``default_budget``), and retry/failover
    stop burning time on a dead backend once the budget is spent —
    the request degrades instead.
    """

    name = "timeout"

    def __init__(self, default_budget: Optional[float] = None) -> None:
        super().__init__()
        self.default_budget = default_budget
        #: Budget → preformatted decision label (budgets are per-QoS
        #: constants, so this stays tiny).
        self._budget_labels: Dict[float, str] = {}

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Attach the absolute deadline (creation time + budget)."""
        budget = self.broker.qos.deadline(ctx.qos_level)
        if budget is None:
            budget = self.default_budget
        if budget is None:
            ctx.set_decision("unbounded")
            return StageOutcome.CONTINUE
        ctx.deadline = ctx.created_at + budget
        labels = self._budget_labels
        label = labels.get(budget)
        if label is None:
            label = labels[budget] = f"budget={budget:g}"
        ctx.set_decision(label)
        return StageOutcome.CONTINUE


class CacheLookupStage(BrokerStage):
    """Answers cacheable requests from the result cache immediately."""

    name = "cache-lookup"

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Reply from cache on a fresh hit; otherwise continue."""
        broker = self.broker
        request = ctx.request
        if broker.cache is None or not request.cacheable:
            ctx.set_decision("bypass")
            return StageOutcome.CONTINUE
        value = broker.cache.get(request.key())
        if value is None:
            ctx.set_decision("miss")
            return StageOutcome.CONTINUE
        broker.metrics.increment("broker.cache_replies")
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "broker", "cache-hit",
                broker=broker.name, request_id=request.request_id,
            )
        ctx.set_decision("hit")
        ctx.reply = BrokerReply(
            request_id=request.request_id,
            status=ReplyStatus.OK,
            payload=value,
            fidelity=1.0,
            from_cache=True,
            broker=broker.name,
            context=ctx,
        )
        return StageOutcome.REPLY


class CacheTierStage(BrokerStage):
    """Answers cacheable requests from the *shared* cross-broker tier.

    Sits right after the per-broker :class:`CacheLookupStage`: a local
    miss gets a second chance against the deployment-wide
    :class:`~repro.core.cachetier.SharedCacheTier`, so a result fetched
    through *any* broker serves subsequent requests at *every* broker
    (read-through; the fill side lives in :class:`CacheFillStage`).
    With no tier attached the stage is a pass-through and behavior is
    byte-identical to the plain plans.
    """

    name = "cache-tier"

    def __init__(self, tier=None) -> None:
        super().__init__()
        self.tier = tier

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind; attach the broker to the tier when one was configured."""
        super().bind(broker)
        if self.tier is not None:
            self.tier.attach(broker)
        self._replies = broker.metrics.handle("broker.cachetier.replies")

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Reply from the shared tier on a fresh hit; otherwise continue."""
        broker = self.broker
        tier = broker.cache_tier
        request = ctx.request
        if tier is None or not request.cacheable:
            ctx.set_decision("bypass")
            return StageOutcome.CONTINUE
        value = tier.get(request.key())
        if value is None:
            ctx.set_decision("miss")
            ctx.annotate("cachetier", "miss")
            return StageOutcome.CONTINUE
        self._replies.inc()
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "broker", "cachetier-hit",
                broker=broker.name, request_id=request.request_id,
            )
        ctx.set_decision("hit")
        ctx.annotate("cachetier", "hit")
        ctx.reply = BrokerReply(
            request_id=request.request_id,
            status=ReplyStatus.OK,
            payload=value,
            fidelity=1.0,
            from_cache=True,
            broker=broker.name,
            context=ctx,
        )
        return StageOutcome.REPLY


def _request_tenant(request) -> str:
    """Best-effort tenant extraction from a broker request payload.

    Recognizes a ``{"tenant": ...}`` key in dict payloads and in the
    params half of ``(path, params)`` tuples; everything else maps to
    the shared ``"public"`` bucket.
    """
    payload = request.payload
    if isinstance(payload, dict):
        return str(payload.get("tenant", "public"))
    if (
        isinstance(payload, (tuple, list))
        and len(payload) == 2
        and isinstance(payload[1], dict)
    ):
        return str(payload[1].get("tenant", "public"))
    return "public"


class ThrottleStage(BrokerStage):
    """Per-tenant token-bucket rate limiting at the broker's front door.

    Placed *before* admission, so a refused request never touches the
    admission ledger or the recovery journal — it is answered with an
    immediate ``DROPPED`` reply (``error="throttled"``) and counted
    under ``broker.throttle.rejected`` / ``.qos<N>`` / ``.<tenant>``,
    deliberately distinct from admission drops (``broker.drops.*``, we
    chose not to serve) and backpressure sheds (``broker.shed.*``, we
    admitted but could not keep). Not part of any default stage plan;
    insert it explicitly (the front end carries the first-line tenant
    throttle — see :class:`~repro.frontend.server.FrontendWebServer` —
    and this stage protects brokers reachable without that front end).
    """

    name = "throttle"

    def __init__(self, throttle, tenant_of=None) -> None:
        super().__init__()
        #: The shared :class:`~repro.core.autoscale.TenantThrottle`.
        self.throttle = throttle
        self.tenant_of = tenant_of if tenant_of is not None else _request_tenant

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Refuse the request when its tenant's bucket is empty."""
        broker = self.broker
        request = ctx.request
        tenant = self.tenant_of(request)
        if self.throttle.allow(tenant, broker.sim._now):
            return StageOutcome.CONTINUE
        level = ctx.qos_level
        metrics = broker.metrics
        metrics.increment("broker.throttle.rejected")
        metrics.increment(f"broker.throttle.rejected.qos{level}")
        metrics.increment(f"broker.throttle.rejected.{tenant}")
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "broker", "throttle",
                broker=broker.name, request_id=request.request_id,
                qos=level, tenant=tenant,
            )
        ctx.set_decision("throttled")
        ctx.reply = BrokerReply(
            request_id=request.request_id,
            status=ReplyStatus.DROPPED,
            payload="tenant throttled",
            fidelity=0.0,
            error="throttled",
            broker=broker.name,
            context=ctx,
        )
        return StageOutcome.REPLY


class AdmissionStage(BrokerStage):
    """QoS admission control: the threshold and intensity gates.

    On rejection the request is *not* answered here — the decision is
    recorded on the context and the fidelity-fallback stage produces
    the immediate low-fidelity reply. The centralized stage plan omits
    this stage entirely (admission happens at the front end).
    """

    name = "admission"

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Apply the admission gates and record the decision."""
        broker = self.broker
        decision = broker.admission.decide(
            ctx.effective_level, protected=ctx.protected
        )
        ctx.admission = decision
        if decision.admitted:
            ctx.set_decision("admitted")
            return StageOutcome.CONTINUE
        level = ctx.qos_level
        broker.metrics.increment("broker.drops")
        broker.metrics.increment(f"broker.drops.qos{level}")
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "broker", "drop",
                broker=broker.name, request_id=ctx.request.request_id, qos=level,
                reason=decision.reason, outstanding=broker.outstanding,
            )
        ctx.set_decision(decision.reason)
        return StageOutcome.CONTINUE


class FidelityFallbackStage(BrokerStage):
    """Immediate low-fidelity replies for rejected or faulted requests.

    On the ingress path it is a pass-through for admitted requests and
    builds the paper's adaptive reply for admission-rejected ones — a
    stale cached result with decayed fidelity when one exists, else a
    "system busy" indication (§III).

    On the dispatch path (where the fault-tolerant plan installs a
    second instance) it does the same for *faulted* batches: when
    retries and failover could not reach a backend — breaker open,
    deadline exhausted, every replica unreachable — each request in the
    batch is answered degraded rather than with an error, which is
    precisely the availability story of §III ("even when the backend
    servers are not available").
    """

    name = "fidelity"

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Degrade rejected requests; admitted ones pass through."""
        broker = self.broker
        if ctx.admission is None or ctx.admission.admitted:
            ctx.set_decision("pass")
            return StageOutcome.CONTINUE
        reply = broker.fidelity.degrade(
            ctx.request,
            broker.cache,
            ctx.admission.reason,
            broker_name=broker.name,
            context=ctx,
        )
        if reply.status is ReplyStatus.DEGRADED:
            broker.metrics.increment("broker.degraded_replies")
        ctx.set_decision(reply.status.value)
        ctx.reply = reply
        return StageOutcome.REPLY

    def on_batch(self, batch: BatchContext):
        """Answer faulted batches with degraded replies; else pass."""
        broker = self.broker
        if batch.failure is None or batch.fault is None:
            for ctx in batch.contexts:
                ctx.set_decision("pass")
            return StageOutcome.CONTINUE
        for item in batch.items:
            reply = broker.fidelity.degrade(
                item.request,
                broker.cache,
                batch.failure,
                broker_name=broker.name,
                context=item.context,
            )
            if reply.status is ReplyStatus.DEGRADED:
                broker.metrics.increment("broker.degraded_replies")
            broker.metrics.increment("broker.fault.replies")
            broker.metrics.increment(
                f"broker.fault.replies.{reply.status.value}"
            )
            if item.context is not None:
                item.context.reply = reply
                item.context.set_decision(reply.status.value)
            broker.send_reply(item.request, reply)
            broker.admission.request_finished()
        broker.sim.trace(
            "fault", "degrade",
            broker=broker.name, fault=batch.fault, batch=len(batch.items),
        )
        return StageOutcome.DONE


class EnqueueStage(BrokerStage):
    """Hands admitted requests to the QoS priority queue.

    The boundary stage: ingress processing ends here and a dispatcher
    process resumes the request at the first dispatch stage.
    """

    name = "enqueue"
    boundary = True

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind and pre-resolve the admission counters."""
        super().bind(broker)
        self._admitted = broker.metrics.handle("broker.admitted")
        self._admitted_by_level: Dict[int, Any] = {}
        #: Queue depth → preformatted decision label (bounded cache).
        self._depth_labels: Dict[int, str] = {}

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Count the admitted request and enqueue it (with its context)."""
        broker = self.broker
        broker.admission.request_started()
        level = ctx.qos_level
        self._admitted.inc()
        by_level = self._admitted_by_level
        counter = by_level.get(level)
        if counter is None:
            counter = by_level[level] = broker.metrics.handle(
                f"broker.admitted.qos{level}"
            )
        counter.inc()
        item = broker.queue.put(ctx.request, context=ctx)
        if item is None:
            # A bounded queue shed the arrival itself (reject-new, or
            # no strictly-worse victim): answer busy/degraded now.
            return self._shed_arrival(ctx)
        if broker.journal is not None:
            broker.journal.record_admitted(ctx.request)
        ctx.enqueued_at = item.enqueued_at
        depth = len(broker.queue)
        labels = self._depth_labels
        label = labels.get(depth)
        if label is None:
            label = f"depth={depth}"
            if len(labels) < 1024:
                labels[depth] = label
        ctx.set_decision(label)
        return StageOutcome.QUEUED

    def _shed_arrival(self, ctx: RequestContext) -> StageOutcome:
        """Answer an arrival the bounded queue refused to hold."""
        broker = self.broker
        # Undo the request_started() above: the request never reaches a
        # dispatcher, so nothing else will balance the ledger.
        broker.admission.request_finished()
        reason = f"shed-{broker.queue.shed_policy}"
        reply = broker.fidelity.degrade(
            ctx.request,
            broker.cache,
            reason,
            broker_name=broker.name,
            context=ctx,
        )
        if reply.status is ReplyStatus.DEGRADED:
            broker.metrics.increment("broker.degraded_replies")
        broker.record_shed(ctx.qos_level, broker.queue.shed_policy)
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "backpressure", "shed",
                broker=broker.name, request_id=ctx.request.request_id,
                qos=ctx.qos_level, reason=reason,
            )
        ctx.set_decision(f"shed={broker.queue.shed_policy}")
        ctx.reply = reply
        return StageOutcome.REPLY


class BackpressureStage(BrokerStage):
    """Bounded-queue overload protection with QoS-aware shedding.

    Binding this stage installs a capacity and shedding policy (see
    :data:`~repro.core.queueing.SHED_POLICIES`) on the broker's queue
    and answers every shed victim immediately through
    :class:`~repro.core.fidelity.FidelityPolicy` — a stale-cache
    DEGRADED reply when one exists, else a "system busy" DROPPED reply.

    The stage also runs a watermark admission throttle: when the
    backlog crosses ``high_watermark × capacity`` it flips *engaged*
    and notifies every listener registered via :meth:`add_listener`
    (typically ``FrontendWebServer.set_throttled``), releasing once the
    backlog drains below ``low_watermark × capacity``.
    """

    name = "backpressure"

    def __init__(
        self,
        capacity: int,
        shed_policy: str = "drop-lowest",
        high_watermark: float = 0.75,
        low_watermark: float = 0.5,
    ) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        self.capacity = capacity
        self.shed_policy = shed_policy
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.engaged = False
        self._listeners: List[Any] = []

    def bind(self, broker: "ServiceBroker") -> None:
        """Bound the broker's queue and pre-resolve the metric handles."""
        super().bind(broker)
        broker.queue.configure(
            self.capacity, self.shed_policy, self._shed_victim
        )
        self._high = max(1, int(self.capacity * self.high_watermark))
        self._low = min(int(self.capacity * self.low_watermark), self._high - 1)
        self._engaged_counter = broker.metrics.handle(
            "broker.backpressure.engaged"
        )
        self._released_counter = broker.metrics.handle(
            "broker.backpressure.released"
        )

    def summary(self) -> str:
        """One-line description for ``repro pipeline --describe``."""
        return (
            f"bounds the queue at {self.capacity} ({self.shed_policy}); "
            f"watermarks {self.high_watermark:g}/{self.low_watermark:g}"
        )

    def add_listener(self, listener: Any) -> None:
        """Register ``listener(engaged, broker_name)`` for transitions."""
        self._listeners.append(listener)

    def on_request(self, ctx: RequestContext) -> StageOutcome:
        """Apply watermark hysteresis; requests always pass through."""
        depth = self.broker.queue._waiting
        if self.engaged:
            if depth <= self._low:
                self._transition(False, depth)
        elif depth >= self._high:
            self._transition(True, depth)
        ctx.set_decision("throttling" if self.engaged else "pass")
        return StageOutcome.CONTINUE

    def _transition(self, engaged: bool, depth: int) -> None:
        self.engaged = engaged
        broker = self.broker
        if engaged:
            self._engaged_counter.inc()
        else:
            self._released_counter.inc()
        broker.sim.trace(
            "backpressure", "engage" if engaged else "release",
            broker=broker.name, depth=depth,
            high=self._high, low=self._low,
        )
        for listener in self._listeners:
            listener(engaged, broker.name)

    def _shed_victim(self, item: Any, policy: str) -> None:
        """``on_shed`` hook: answer an evicted, already-admitted request."""
        broker = self.broker
        reason = f"shed-{policy}"
        ctx = item.context
        reply = broker.fidelity.degrade(
            item.request,
            broker.cache,
            reason,
            broker_name=broker.name,
            context=ctx,
        )
        if reply.status is ReplyStatus.DEGRADED:
            broker.metrics.increment("broker.degraded_replies")
        now = broker.sim._now
        if ctx is not None:
            ctx.record_stage(self.name, now, now, f"shed={policy}")
            ctx.reply = reply
            ctx.completed_at = now
        broker.send_reply(item.request, reply)
        # The victim was counted into the admission ledger at enqueue;
        # its dispatcher will never run, so balance it here.
        broker.admission.request_finished()
        level = broker.qos.clamp(item.request.qos_level)
        broker.record_shed(level, policy)
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "backpressure", "shed",
                broker=broker.name, request_id=item.request.request_id,
                qos=level, reason=reason,
            )


# ---------------------------------------------------------------------------
# Dispatch stages (run inside dispatcher processes; may advance sim time)
# ---------------------------------------------------------------------------


class ClusterStage(BrokerStage):
    """Gathers compatible queued requests into one batched backend call.

    Waits the configured gather window, claims companions that share
    the leader's cluster key, and computes the combined
    ``(operation, payload)`` for the batch.
    """

    name = "cluster"

    def on_batch(self, batch: BatchContext):
        """Batch companions behind the leader and combine the call."""
        broker = self.broker
        config = broker.clustering
        leader = batch.items[0]
        if config is not None and config.max_batch > 1:
            key = config.combiner.key(leader.request)
            if key is not None:
                if config.window > 0:
                    yield broker.sim.timeout(config.window)
                companions = broker.queue.take_matching(
                    lambda queued: config.combiner.key(queued.request) == key,
                    config.max_batch - 1,
                )
                batch.items.extend(companions)
                if companions:
                    broker.metrics.increment("broker.clustered_batches")
                    broker.metrics.observe("broker.batch_size", len(batch.items))
        if config is not None and len(batch.items) > 1:
            batch.operation, batch.payload = config.combiner.combine(
                batch.requests
            )
        else:
            head = leader.request
            batch.operation, batch.payload = head.operation, head.payload
        for ctx in batch.contexts:
            ctx.batch_size = len(batch.items)
        return StageOutcome.CONTINUE


class QueryCombineStage(BrokerStage):
    """Combines equal-shape queries queued at *different* brokers.

    :class:`ClusterStage` batches combinable queries that happen to be
    queued at the same broker; with ``B`` brokers behind a balancer,
    simultaneous arrivals of the same shape scatter and each broker
    issues its own (smaller) combined query. This stage extends the
    combining window across the peer mesh:

    1. the dispatcher about to execute a combinable shape broadcasts a
       :class:`~repro.core.peering.CombinableAdvert` over the peer
       group's gossip and holds its window open;
    2. a peer whose own dispatcher reaches the same shape while a fresh
       advert is live *yields* — it skips advertising, claiming, and
       waiting, because the advertiser will take its queued matches;
    3. when the window closes, the advertiser claims matching queued
       requests from every peer's queue (transferring each request's
       admission slot and journal entry to itself) and issues one
       combined IN-list query for the whole deployment.

    Requires the broker to have both a clustering config (for the
    combiner) and a peer group (for the gossip); otherwise it is a
    pass-through. Counters live under ``broker.cachetier.combine.*``.
    """

    name = "query-combine"

    def __init__(
        self,
        window: Optional[float] = None,
        max_batch: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.window = window
        self.max_batch = max_batch

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind and pre-resolve the combine counters."""
        super().bind(broker)
        metrics = broker.metrics
        self._batches = metrics.handle("broker.cachetier.combine.batches")
        self._remote_items = metrics.handle(
            "broker.cachetier.combine.remote_items"
        )
        self._yields = metrics.handle("broker.cachetier.combine.yields")

    def on_batch(self, batch: BatchContext):
        """Advertise, gather across the mesh, and re-combine the batch."""
        broker = self.broker
        config = broker.clustering
        peer_group = broker.peer_group
        if config is None or peer_group is None or config.max_batch <= 1:
            return StageOutcome.CONTINUE
        key = config.combiner.key(batch.items[0].request)
        if key is None:
            return StageOutcome.CONTINUE
        limit = self.max_batch if self.max_batch is not None else config.max_batch
        capacity = limit - len(batch.items)
        if capacity <= 0:
            return StageOutcome.CONTINUE

        now = broker.sim.now
        advert = broker.combinable_adverts.get(key)
        if (
            advert is not None
            and advert.origin != broker.name
            and now - advert.sent_at <= advert.window
        ):
            # A peer opened a window for this shape moments ago; it will
            # claim our queued matches. Execute only what we hold.
            self._yields.inc()
            for ctx in batch.contexts:
                ctx.set_decision("yield")
                ctx.annotate("combine", f"yield:{advert.origin}")
            return StageOutcome.CONTINUE

        window = self.window if self.window is not None else config.window
        peer_group.advertise_combinable(broker, key, len(batch.items), window)
        if window > 0:
            yield broker.sim.timeout(window)

        def _matches(queued: QueuedRequest) -> bool:
            return config.combiner.key(queued.request) == key

        # Late local arrivals first, then the peers' queues.
        companions = broker.queue.take_matching(_matches, capacity)
        batch.items.extend(companions)
        capacity -= len(companions)
        claimed = 0
        for peer in peer_group.members:
            if capacity <= 0:
                break
            if peer is broker or not peer.alive:
                continue
            taken = peer.queue.take_matching(_matches, capacity)
            for item in taken:
                # Transfer ownership: the peer's admission slot closes,
                # ours opens (the reply stage releases it), and the
                # peer's journal entry is cleared so a supervisor
                # fail-fast can never answer the request a second time.
                peer.admission.request_finished()
                broker.admission.request_started()
                if peer.journal is not None:
                    peer.journal.record_answered(item.request.request_id)
                if item.context is not None:
                    item.context.annotate("combine", f"claimed:{broker.name}")
            batch.items.extend(taken)
            capacity -= len(taken)
            claimed += len(taken)
        if claimed:
            self._batches.inc()
            self._remote_items.inc(claimed)
            if broker.sim.tracer is not None:
                broker.sim.trace(
                    "broker", "cross-combine",
                    broker=broker.name, key=key, remote=claimed,
                    batch=len(batch.items),
                )
        if len(batch.items) > 1:
            batch.operation, batch.payload = config.combiner.combine(
                batch.requests
            )
            for ctx in batch.contexts:
                ctx.batch_size = len(batch.items)
        return StageOutcome.CONTINUE


def execute_batch_on(
    broker: "ServiceBroker", batch: BatchContext, backend: "BackendState"
):
    """Run *batch*'s combined call against *backend*; ``yield from`` this.

    The shared execution core of :class:`ExecuteStage` and
    :class:`FailoverStage`: acquires a persistent connection from the
    backend's pool, runs the adapter, and retries once on transport
    failure. Records latency/result/failure on the batch; a transport
    failure additionally classifies the batch as faulted
    (``batch.fault = "unreachable"``) so downstream fault-handling
    stages know a retry elsewhere could still succeed.
    """
    batch.backend = backend
    if broker.sim.tracer is not None:
        broker.sim.trace(
            "broker", "dispatch",
            broker=broker.name, backend=backend.name, batch=len(batch.items),
            operation=batch.operation,
            request_id=batch.items[0].request.request_id,
        )
    backend.note_dispatch()
    batch.started = broker.sim.now
    for ctx in batch.contexts:
        ctx.dispatched_at = batch.started
        ctx.backend = backend.name
    attempts = 0
    result: Any = None
    failure: Optional[str] = None
    fault: Optional[str] = None
    while True:
        try:
            connection = yield from backend.pool.acquire()
        except (ConnectionClosed, NetworkError) as exc:
            attempts += 1
            if attempts >= 2:
                failure = f"backend unreachable: {exc}"
                fault = "unreachable"
                break
            continue
        try:
            result = yield from backend.adapter.execute(
                connection, batch.operation, batch.payload
            )
        except (ConnectionClosed, NetworkError) as exc:
            backend.pool.release(connection, discard=True)
            attempts += 1
            if attempts >= 2:
                failure = f"backend unreachable: {exc}"
                fault = "unreachable"
                break
            continue
        except ServiceError as exc:
            backend.pool.release(connection)
            failure = str(exc)
            break
        backend.pool.release(connection)
        break
    batch.latency = broker.sim.now - batch.started
    batch.result = result
    batch.failure = failure
    batch.fault = fault
    if failure is not None:
        backend.note_completion(batch.latency, error=True)
        broker.metrics.increment("broker.backend_errors")
        if fault is not None:
            broker.metrics.increment("broker.fault.unreachable")
        if broker.sim.tracer is not None:
            broker.sim.trace(
                "broker", "backend-error",
                broker=broker.name, backend=backend.name, error=failure,
                request_id=batch.items[0].request.request_id,
            )
        for ctx in batch.contexts:
            ctx.set_decision("error")
    else:
        backend.note_completion(batch.latency)
    return StageOutcome.CONTINUE


class ExecuteStage(BrokerStage):
    """Pooled execution of the batch against a load-balanced backend.

    Picks a backend replica (honouring ``batch.candidates`` when a
    fault-handling stage narrowed the field), acquires a persistent
    connection from its pool, runs the adapter, and retries once on
    transport failure. Records the chosen backend and service latency
    on the batch.
    """

    name = "execute"

    def on_batch(self, batch: BatchContext):
        """Run the combined call over a pooled connection."""
        broker = self.broker
        candidates = (
            batch.candidates if batch.candidates is not None else broker.backends
        )
        backend = broker.balancer.pick(candidates)
        outcome = yield from execute_batch_on(broker, batch, backend)
        return outcome


class CircuitBreakerStage(BrokerStage):
    """Per-backend circuit breakers gating dispatch (closed/open/half-open).

    :meth:`bind` installs a
    :class:`~repro.core.faulttolerance.CircuitBreaker` on every backend
    replica; dispatch completions feed it through
    :meth:`BackendState.note_completion
    <repro.core.loadbalance.BackendState.note_completion>`. Per batch,
    the stage narrows ``batch.candidates`` to the replicas whose
    breakers admit traffic. A HALF_OPEN replica is *probed*: the batch
    is routed to it alone, so recovery is detected by live traffic (the
    paper's broker "can track the traffic and monitor their workload" —
    §III — rather than pinging). With every breaker open the batch is
    marked faulted (``breaker-open``) and falls through to the fidelity
    fallback without touching a dead backend.
    """

    name = "breaker"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
    ) -> None:
        super().__init__()
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind and install a breaker on each backend lacking one."""
        super().bind(broker)
        for backend in broker.backends:
            if backend.breaker is None:
                backend.breaker = CircuitBreaker(
                    broker.sim,
                    name=backend.name,
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    half_open_probes=self.half_open_probes,
                    metrics=broker.metrics,
                )

    def on_batch(self, batch: BatchContext):
        """Narrow the candidate replicas to what the breakers admit."""
        broker = self.broker
        closed: List["BackendState"] = []
        probing: List["BackendState"] = []
        for backend in broker.backends:
            breaker = backend.breaker
            if breaker is None:
                closed.append(backend)
                continue
            state = breaker.current_state()
            if state is BreakerState.CLOSED:
                closed.append(backend)
            elif state is BreakerState.HALF_OPEN and breaker.try_probe():
                probing.append(backend)
        if probing:
            # Route this batch at the recovering replica: a live probe.
            batch.candidates = probing[:1]
            decision = "probe"
        elif closed:
            batch.candidates = closed
            decision = f"closed={len(closed)}"
        else:
            batch.failure = "all backends circuit-open"
            batch.fault = "breaker-open"
            batch.candidates = None
            broker.metrics.increment("broker.fault.breaker_open")
            decision = "open"
        for ctx in batch.contexts:
            ctx.set_decision(decision)
        return StageOutcome.CONTINUE


class RetryStage(BrokerStage):
    """Re-attempts faulted executions with exponential backoff + jitter.

    Wraps an inner :class:`ExecuteStage`: while the batch keeps coming
    back with a *retryable* fault (``batch.fault`` set — transport
    failures, not service errors) and the deadline allows, it waits the
    :class:`~repro.core.faulttolerance.RetryPolicy` backoff and runs the
    execution again against whatever replicas the breakers currently
    admit. Backoff draws come from the broker-scoped ``<name>.retry``
    RNG substream, so retry schedules are reproducible and independent
    of the workload's randomness. Exhausted deadlines and exhausted
    attempts leave the batch faulted for the failover/fidelity stages.
    """

    name = "retry"

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        execute: Optional[ExecuteStage] = None,
    ) -> None:
        super().__init__()
        self.policy = policy or RetryPolicy()
        self.execute = execute or ExecuteStage()
        self._rng: Optional[Any] = None

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind self plus the inner execution stage; set up the RNG."""
        super().bind(broker)
        self.execute.bind(broker)
        self._rng = broker.sim.rng(f"{broker.name}.retry")

    def on_batch(self, batch: BatchContext):
        """Execute, then retry transport faults until deadline/attempts."""
        broker = self.broker
        sim = broker.sim
        deadline = batch.deadline
        if batch.fault == "breaker-open":
            # Nothing admits traffic; skip straight to the fallback.
            for ctx in batch.contexts:
                ctx.set_decision("open")
            return StageOutcome.CONTINUE
        attempt = 0
        while True:
            if deadline is not None and sim.now >= deadline:
                batch.failure = "deadline exceeded"
                batch.fault = "deadline"
                broker.metrics.increment("broker.fault.deadline")
                decision = "deadline"
                break
            batch.result = None
            batch.failure = None
            batch.fault = None
            yield from self.execute.on_batch(batch)
            attempt += 1
            if batch.failure is None:
                decision = "ok" if attempt == 1 else "recovered"
                if attempt > 1:
                    broker.metrics.increment("broker.retry.recovered")
                break
            if batch.fault is None:
                # A ServiceError: the backend answered; retrying is futile.
                decision = "service-error"
                break
            if attempt >= self.policy.max_attempts:
                broker.metrics.increment("broker.retry.exhausted")
                decision = "exhausted"
                break
            delay = self.policy.backoff(attempt, self._rng)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - sim.now))
            broker.metrics.increment("broker.retry.attempts")
            broker.metrics.observe("broker.retry.backoff", delay)
            if delay > 0:
                yield delay
            candidates = available_backends(broker.backends)
            if not candidates:
                batch.failure = "all backends circuit-open"
                batch.fault = "breaker-open"
                broker.metrics.increment("broker.fault.breaker_open")
                decision = "open"
                break
            batch.candidates = candidates
        if broker.sim.obs is not None:
            # Tracing attribution only — never touches sim state.
            retries = attempt - 1 if attempt > 0 else 0
            for ctx in batch.contexts:
                ctx.annotations["obs.retries"] = retries
        for ctx in batch.contexts:
            ctx.set_decision(decision)
        return StageOutcome.CONTINUE


class FailoverStage(BrokerStage):
    """Last-chance re-route of a still-faulted batch to another replica.

    The retry stage may spend all its attempts against replicas that
    keep failing; before the batch degrades, this stage re-routes it
    once to a breaker-admitted replica *other than* the one that just
    failed — the paper's replicated-backend story ("switch to other
    servers when some servers are not reachable", §II) distilled into a
    stage. Pass-through when the batch is healthy, the deadline is
    spent, or no alternate replica exists.
    """

    name = "failover"

    def on_batch(self, batch: BatchContext):
        """Re-run a faulted batch on an alternate admitted replica."""
        broker = self.broker
        sim = broker.sim
        if batch.failure is None or batch.fault is None:
            for ctx in batch.contexts:
                ctx.set_decision("pass")
            return StageOutcome.CONTINUE
        if batch.fault == "deadline":
            for ctx in batch.contexts:
                ctx.set_decision("deadline")
            return StageOutcome.CONTINUE
        deadline = batch.deadline
        if deadline is not None and sim.now >= deadline:
            batch.failure = "deadline exceeded"
            batch.fault = "deadline"
            broker.metrics.increment("broker.fault.deadline")
            for ctx in batch.contexts:
                ctx.set_decision("deadline")
            return StageOutcome.CONTINUE
        exclude = (batch.backend,) if batch.backend is not None else ()
        candidates = available_backends(broker.backends, exclude=exclude)
        if not candidates:
            for ctx in batch.contexts:
                ctx.set_decision("no-replica")
            return StageOutcome.CONTINUE
        broker.metrics.increment("broker.fault.failover")
        backend = broker.balancer.pick(candidates)
        batch.result = None
        batch.failure = None
        batch.fault = None
        yield from execute_batch_on(broker, batch, backend)
        if batch.failure is None:
            broker.metrics.increment("broker.fault.failover_recovered")
            decision = "recovered"
        else:
            decision = "failed"
        if broker.sim.obs is not None:
            for ctx in batch.contexts:
                ctx.annotations["obs.failover"] = decision
        for ctx in batch.contexts:
            ctx.set_decision(decision)
        return StageOutcome.CONTINUE


class CacheFillStage(BrokerStage):
    """Splits the combined result per request and fills the cache(s).

    Fresh results go into the per-broker
    :class:`~repro.core.cache.ResultCache` and — when the broker is
    attached to a :class:`~repro.core.cachetier.SharedCacheTier` — into
    the shared tier as well, completing the read-through path for every
    peer broker.
    """

    name = "cache-fill"

    def on_batch(self, batch: BatchContext):
        """Scatter the result back per request; write fresh cache entries."""
        broker = self.broker
        if batch.failure is not None:
            return StageOutcome.CONTINUE
        if broker.clustering is not None and len(batch.items) > 1:
            batch.payloads = broker.clustering.combiner.split(
                batch.requests, batch.result
            )
        else:
            batch.payloads = [batch.result]
        cache = broker.cache
        tier = broker.cache_tier
        if cache is not None or tier is not None:
            for item, payload in zip(batch.items, batch.payloads):
                if item.request.cacheable:
                    key = item.request.key()
                    if cache is not None:
                        cache.put(key, payload)
                    if tier is not None:
                        tier.put(key, payload)
        return StageOutcome.CONTINUE


class ReplyStage(BrokerStage):
    """Builds and sends the per-request replies; closes the books.

    Emits the served/queue-time/service-time metrics, sends OK replies
    (or ERROR replies when execution failed), and releases each
    request's admission slot.
    """

    name = "reply"

    def bind(self, broker: "ServiceBroker") -> None:
        """Bind and pre-resolve the serving metrics."""
        super().bind(broker)
        metrics = broker.metrics
        self._served = metrics.handle("broker.served")
        self._queue_time = metrics.sample_handle("broker.queue_time")
        self._service_time = metrics.sample_handle("broker.service_time")
        self._served_by_level: Dict[int, Any] = {}
        self._queue_time_by_level: Dict[int, Any] = {}

    def on_batch(self, batch: BatchContext):
        """Answer every request of the batch and release admission slots."""
        broker = self.broker
        started, latency = batch.started, batch.latency
        if batch.failure is not None:
            for item in batch.items:
                reply = BrokerReply(
                    request_id=item.request.request_id,
                    status=ReplyStatus.ERROR,
                    error=batch.failure,
                    broker=broker.name,
                    queue_time=started - item.enqueued_at,
                    service_time=latency,
                    context=item.context,
                )
                self._answer(item, reply)
            return StageOutcome.DONE
        for item, payload in zip(batch.items, batch.payloads):
            request = item.request
            level = broker.qos.clamp(request.qos_level)
            queue_time = started - item.enqueued_at
            self._served.inc()
            served = self._served_by_level.get(level)
            if served is None:
                served = self._served_by_level[level] = broker.metrics.handle(
                    f"broker.served.qos{level}"
                )
            served.inc()
            self._queue_time.add(queue_time)
            qt_level = self._queue_time_by_level.get(level)
            if qt_level is None:
                qt_level = self._queue_time_by_level[level] = (
                    broker.metrics.sample_handle(f"broker.queue_time.qos{level}")
                )
            qt_level.add(queue_time)
            self._service_time.add(latency)
            reply = BrokerReply(
                request_id=request.request_id,
                status=ReplyStatus.OK,
                payload=payload,
                fidelity=1.0,
                broker=broker.name,
                queue_time=queue_time,
                service_time=latency,
                context=item.context,
            )
            self._answer(item, reply)
        return StageOutcome.DONE

    def _answer(self, item: "QueuedRequest", reply: BrokerReply) -> None:
        broker = self.broker
        if item.context is not None:
            item.context.reply = reply
        broker.send_reply(item.request, reply)
        broker.admission.request_finished()


class LoadReportStage(BrokerStage):
    """Periodic load reporting to the centralized model's listener.

    Not a per-request step: :meth:`start` launches the reporter process
    that streams :class:`~repro.core.centralized.LoadReport` datagrams
    to the front end's load listener. Part of the centralized stage
    plan; :meth:`ServiceBroker.report_load_to` activates it.
    """

    name = "load-report"

    def __init__(self) -> None:
        super().__init__()
        self.address: Optional[Address] = None
        self.interval = 0.1

    def start(self, address: Address, interval: float = 0.1):
        """Begin streaming load reports to *address* every *interval* s."""
        # Local import avoids a cycle.
        from .centralized import LoadReport, ShardLoadReport

        broker = self.broker
        self.address = address
        self.interval = interval

        def reporter():
            while True:
                yield broker.sim.timeout(self.interval)
                group = broker.shard_group
                if group is None:
                    report = LoadReport(
                        broker=broker.name,
                        service=broker.service,
                        outstanding=broker.outstanding,
                        queue_depth=len(broker.queue),
                        threshold=broker.qos.threshold,
                        sent_at=broker.sim.now,
                    )
                else:
                    # Shard replicas only report while leading: the
                    # listener's load is bounded by the shard count, not
                    # the replica count (every replica runs a reporter,
                    # so the reporting role follows bully elections
                    # automatically — a demoted broker falls silent, the
                    # promoted one starts claiming the role). Leadership
                    # is re-checked every tick, at send time.
                    if group.leader is not broker:
                        continue
                    report = ShardLoadReport(
                        broker=broker.name,
                        service=broker.service,
                        outstanding=broker.outstanding,
                        queue_depth=len(broker.queue),
                        threshold=broker.qos.threshold,
                        sent_at=broker.sim.now,
                        shard=group.index,
                        leader=group.leader is broker,
                    )
                broker.socket.sendto(report, self.address)

        return broker.sim.process(
            reporter(), name=f"{broker.name}:load-report"
        )


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


class StagePipeline:
    """An ordered list of :class:`BrokerStage` objects run per request.

    The list splits at the boundary stage (normally
    :class:`EnqueueStage`): stages up to and including it form the
    *ingress* section, run synchronously in the broker's receive loop;
    stages after it form the *dispatch* section, run by dispatcher
    processes (and may advance simulated time). Per-stage latency and
    decisions are recorded on each request's :class:`RequestContext`
    and mirrored into the broker's metrics registry.
    """

    def __init__(
        self, broker: "ServiceBroker", stages: Sequence[BrokerStage]
    ) -> None:
        if not stages:
            raise BrokerError("a pipeline needs at least one stage")
        self.broker = broker
        self.stages: List[BrokerStage] = list(stages)
        for stage in self.stages:
            stage.bind(broker)
        self._split()

    def _split(self) -> None:
        boundary = next(
            (i for i, stage in enumerate(self.stages) if stage.boundary),
            len(self.stages) - 1,
        )
        self._ingress = self.stages[: boundary + 1]
        self._dispatch = self.stages[boundary + 1 :]
        self._compile()

    def _compile(self) -> None:
        """Precompile the per-request execution plan.

        Run once at construction and after every composition change.
        For each stage the plan pre-binds the ``on_request``/``on_batch``
        method, interns the stage's metric names into registry handles
        (``broker.stage.<name>.time`` sample, plus a per-decision
        counter cache filled lazily as decisions occur), and records
        whether ``on_batch`` is a generator function — so the
        per-request path does no f-string formatting, no dict hashing
        on metric names, and no ``hasattr`` probing for the stock
        stages.
        """
        metrics = self.broker.metrics
        self._pipeline_time = metrics.sample_handle("broker.pipeline.time")
        self._ingress_plan = [
            (
                stage.on_request,
                stage.name,
                metrics.sample_handle(f"broker.stage.{stage.name}.time"),
                {},
            )
            for stage in self._ingress
        ]
        self._dispatch_plan = [
            (
                stage.on_batch,
                stage.name,
                isgeneratorfunction(stage.on_batch),
                metrics.sample_handle(f"broker.stage.{stage.name}.time"),
                {},
            )
            for stage in self._dispatch
        ]

    def _decision_counter(
        self, cache: Dict[str, Any], stage_name: str, decision: str
    ):
        """The counter for one stage decision, memoized on the plan.

        Decisions are cached by their full label (``"depth=3"``), so a
        repeat decision costs one dict hit; the counter name keeps only
        the key before ``=``. The cache is bounded — pathological label
        variety falls back to an uncached handle lookup.
        """
        counter = self.broker.metrics.handle(
            f"broker.stage.{stage_name}.{decision.split('=')[0]}"
        )
        if len(cache) < 512:
            cache[decision] = counter
        return counter

    # -- composition -----------------------------------------------------

    @property
    def ingress_stages(self) -> List[BrokerStage]:
        """The stages run synchronously at request arrival."""
        return list(self._ingress)

    @property
    def dispatch_stages(self) -> List[BrokerStage]:
        """The stages run by dispatcher processes after dequeue."""
        return list(self._dispatch)

    def stage(self, name: str) -> BrokerStage:
        """The stage called *name* (raises :class:`BrokerError` if absent)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise BrokerError(f"no stage named {name!r} in {self.describe()}")

    def _index_of(self, name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage.name == name:
                return index
        raise BrokerError(f"no stage named {name!r} in {self.describe()}")

    def insert_before(self, name: str, stage: BrokerStage) -> None:
        """Insert *stage* immediately before the stage called *name*."""
        stage.bind(self.broker)
        self.stages.insert(self._index_of(name), stage)
        self._split()

    def insert_after(self, name: str, stage: BrokerStage) -> None:
        """Insert *stage* immediately after the stage called *name*."""
        stage.bind(self.broker)
        self.stages.insert(self._index_of(name) + 1, stage)
        self._split()

    def append(self, stage: BrokerStage) -> None:
        """Add *stage* at the end of the dispatch section."""
        stage.bind(self.broker)
        self.stages.append(stage)
        self._split()

    def describe(self) -> List[str]:
        """The configured stage names, in execution order."""
        return [stage.name for stage in self.stages]

    def __iter__(self) -> Iterator[BrokerStage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    # -- execution -------------------------------------------------------

    def run_ingress(self, ctx: RequestContext) -> StageOutcome:
        """Run the ingress section for one arriving request.

        Ingress stages are synchronous — the simulated clock cannot
        advance inside ``on_request`` — so the timestamp is read once
        for the whole section and every stage record spans zero time,
        exactly as the generic entered/exited bookkeeping would have
        produced.
        """
        now = self.broker.sim._now
        continue_ = StageOutcome.CONTINUE
        reply_ = StageOutcome.REPLY
        records = ctx.stages
        outcome = continue_
        for on_request, name, time_stats, decisions in self._ingress_plan:
            outcome = on_request(ctx) or continue_
            time_stats.add(0.0)
            # ``_value_`` skips the enum's DynamicClassAttribute descriptor.
            decision = ctx.take_decision(outcome._value_)
            records.append(StageRecord(name, now, now, decision))
            counter = decisions.get(decision)
            if counter is None:
                counter = self._decision_counter(decisions, name, decision)
            counter.value += 1.0
            if outcome is continue_:
                continue
            if outcome is reply_:
                self._complete(ctx)
            return outcome
        return outcome

    def run_dispatch(self, leader: "QueuedRequest"):
        """Run the dispatch section for one dequeued request.

        A ``yield from`` generator driven by a dispatcher process; the
        batch may grow at the clustering stage.
        """
        broker = self.broker
        sim = broker.sim
        batch = BatchContext(broker, [leader])
        done_ = StageOutcome.DONE
        for on_batch, name, is_generator, time_stats, decisions in self._dispatch_plan:
            entered = sim._now
            outcome = on_batch(batch)
            if is_generator:
                outcome = yield from outcome
            elif outcome is not None and hasattr(outcome, "send"):
                # A custom stage returned a generator from a plain
                # function; drive it the slow way.
                outcome = yield from outcome
            outcome = outcome or StageOutcome.CONTINUE
            exited = sim._now
            time_stats.add(exited - entered)
            value = outcome._value_
            for ctx in batch.contexts:
                decision = ctx.take_decision(value)
                ctx.stages.append(StageRecord(name, entered, exited, decision))
                counter = decisions.get(decision)
                if counter is None:
                    counter = self._decision_counter(decisions, name, decision)
                counter.value += 1.0
            if outcome is done_:
                break
        for ctx in batch.contexts:
            if ctx.reply is None:
                # A custom terminal stage answered out of band (or not
                # at all); there is nothing to stamp as completed.
                continue
            self._complete(ctx, send=False)

    def _complete(self, ctx: RequestContext, send: bool = True) -> None:
        broker = self.broker
        sim = broker.sim
        ctx.completed_at = sim._now
        if send and ctx.reply is not None and ctx.request is not None:
            if ctx.reply.context is None:
                # Replies built by stock stages carry the context; patch
                # replies a custom stage built without one.
                ctx.reply = ctx.reply.with_context(ctx)
            broker.send_reply(ctx.request, ctx.reply)
        anchor = ctx.received_at if ctx.received_at is not None else ctx.created_at
        self._pipeline_time.add(ctx.completed_at - anchor)
        if sim.tracer is not None:
            sim.trace(
                "pipeline", "complete",
                broker=broker.name,
                request_id=ctx.request.request_id if ctx.request else None,
                status=ctx.reply.status.value if ctx.reply is not None else None,
                stages=ctx.stage_names(),
            )

    def __repr__(self) -> str:
        return f"<StagePipeline {' -> '.join(self.describe())}>"


# ---------------------------------------------------------------------------
# Stock stage plans (the paper's two models as configurations)
# ---------------------------------------------------------------------------


def distributed_stage_plan() -> List[BrokerStage]:
    """The distributed model (§III): admission happens at the broker."""
    return [
        ValidateServiceStage(),
        ArrivalStage(),
        CacheLookupStage(),
        AdmissionStage(),
        FidelityFallbackStage(),
        EnqueueStage(),
        ClusterStage(),
        ExecuteStage(),
        CacheFillStage(),
        ReplyStage(),
    ]


def centralized_stage_plan() -> List[BrokerStage]:
    """The centralized model (§IV): front-end admission + load reports.

    The broker omits its admission gate (the front end rejects from
    streamed load state before requests reach the broker) and carries a
    :class:`LoadReportStage` feeding the front end's listener.
    """
    return [
        ValidateServiceStage(),
        ArrivalStage(),
        CacheLookupStage(),
        FidelityFallbackStage(),
        EnqueueStage(),
        ClusterStage(),
        ExecuteStage(),
        CacheFillStage(),
        ReplyStage(),
        LoadReportStage(),
    ]


def fault_tolerant_stage_plan(
    default_budget: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    failure_threshold: int = 3,
    reset_timeout: float = 1.0,
    half_open_probes: int = 1,
) -> List[BrokerStage]:
    """The distributed plan hardened against backend faults.

    Ingress gains a :class:`TimeoutBudgetStage` (per-request deadlines
    from the QoS spec, *default_budget* for classes without one);
    dispatch runs breaker → retry → failover around the execution, and
    a second :class:`FidelityFallbackStage` converts anything still
    faulted into the §III degraded reply. With healthy backends the
    added stages are pass-throughs and behavior matches the distributed
    plan.
    """
    return [
        ValidateServiceStage(),
        ArrivalStage(),
        TimeoutBudgetStage(default_budget=default_budget),
        CacheLookupStage(),
        AdmissionStage(),
        FidelityFallbackStage(),
        EnqueueStage(),
        ClusterStage(),
        CircuitBreakerStage(
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            half_open_probes=half_open_probes,
        ),
        RetryStage(policy=retry),
        FailoverStage(),
        FidelityFallbackStage(),
        CacheFillStage(),
        ReplyStage(),
    ]


def overload_protected_stage_plan(
    capacity: int,
    shed_policy: str = "drop-lowest",
    high_watermark: float = 0.75,
    low_watermark: float = 0.5,
) -> List[BrokerStage]:
    """The distributed plan plus bounded-queue backpressure.

    Inserts a :class:`BackpressureStage` just before the enqueue
    boundary: the queue is capped at *capacity*, overflow is shed per
    *shed_policy*, and the watermark throttle can signal the front end
    (see :meth:`BackpressureStage.add_listener`).
    """
    plan = distributed_stage_plan()
    boundary = next(
        index for index, stage in enumerate(plan) if stage.boundary
    )
    plan.insert(
        boundary,
        BackpressureStage(
            capacity,
            shed_policy=shed_policy,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        ),
    )
    return plan


def sharded_stage_plan(
    directory=None,
    shard: int = 0,
    base: str = "distributed",
) -> List[BrokerStage]:
    """The *base* model's plan with shard routing at ingress.

    Inserts a :class:`ShardRouteStage` immediately after service
    validation, so a request landing on the wrong shard is relayed to
    the owning shard's leader *before* it consumes any local admission
    slot or queue capacity. Pass the topology's
    :class:`~repro.core.sharding.ShardDirectory` and this broker's
    *shard* index; with the defaults (no directory) the stage is a
    pass-through and the plan behaves exactly like the base model —
    the degenerate 1-shard/1-replica configuration.
    """
    plan = stage_plan(base)
    index = next(
        (
            i + 1
            for i, stage in enumerate(plan)
            if stage.name == ValidateServiceStage.name
        ),
        0,
    )
    plan.insert(index, ShardRouteStage(directory=directory, shard=shard))
    return plan


def cache_tier_stage_plan(
    tier=None,
    base: str = "distributed",
    combine_window: Optional[float] = None,
    combine_max_batch: Optional[int] = None,
) -> List[BrokerStage]:
    """The *base* model's plan with the cross-request optimization tier.

    Inserts a :class:`CacheTierStage` right after the per-broker
    ``cache-lookup`` (local hits stay local; local misses get a second
    chance against the shared tier) and a :class:`QueryCombineStage`
    right after ``cluster`` (per-broker batches widen across the peer
    mesh before execution). Pass the deployment's
    :class:`~repro.core.cachetier.SharedCacheTier`; with the default
    (``tier=None``, no peer group) both stages are pass-throughs and
    the plan behaves exactly like the base model.
    """
    plan = stage_plan(base)
    lookup = next(
        (
            i + 1
            for i, stage in enumerate(plan)
            if stage.name == CacheLookupStage.name
        ),
        0,
    )
    plan.insert(lookup, CacheTierStage(tier=tier))
    cluster = next(
        (
            i + 1
            for i, stage in enumerate(plan)
            if stage.name == ClusterStage.name
        ),
        len(plan),
    )
    plan.insert(
        cluster,
        QueryCombineStage(window=combine_window, max_batch=combine_max_batch),
    )
    return plan


#: Factories for the stock stage plans, by model name.
_STAGE_PLANS: Dict[str, Callable[[], List[BrokerStage]]] = {
    "distributed": distributed_stage_plan,
    "centralized": centralized_stage_plan,
    "fault-tolerant": fault_tolerant_stage_plan,
    "sharded": sharded_stage_plan,
    "cache-tier": cache_tier_stage_plan,
}


def stage_plan(model: str) -> List[BrokerStage]:
    """The stock stage plan for *model* (e.g. ``"distributed"``,
    ``"centralized"``, ``"fault-tolerant"``)."""
    try:
        factory = _STAGE_PLANS[model]
    except KeyError:
        raise BrokerError(
            f"unknown broker model {model!r}; "
            f"expected one of {sorted(_STAGE_PLANS)}"
        ) from None
    return factory()
