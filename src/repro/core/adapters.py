"""Service adapters: how a broker talks to one backend server.

A broker is "per service based" (paper §III) and sits on top of the raw
API sets (its Figure 3). Each adapter wraps one backend server's client
API behind a uniform interface:

* ``connect()`` — a ``yield from`` generator establishing an
  authenticated connection (expensive; the pool amortizes it),
* ``execute(conn, operation, payload)`` — a ``yield from`` generator
  performing one operation and returning the result payload,
* ``close(conn)`` — orderly teardown.

Connections expose a ``closed`` attribute the pool uses for health
checks.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..db.client import DatabaseClient, DatabaseConnection
from ..errors import ProtocolError
from ..http.client import HttpClient, HttpConnection
from ..http.messages import HttpRequest
from ..ldapdir.client import DirectoryClient, DirectoryConnection
from ..mail.client import MailClient, MailConnection
from ..net.address import Address
from ..net.network import Node
from ..sim.core import Simulation

__all__ = [
    "ServiceAdapter",
    "DatabaseAdapter",
    "HttpAdapter",
    "DirectoryAdapter",
    "MailAdapter",
    "FileAdapter",
]


class ServiceAdapter:
    """Base class; subclasses implement connect/execute/close."""

    def __init__(self, sim: Simulation, node: Node, address: Address, name: str = "") -> None:
        self.sim = sim
        self.node = node
        self.address = address
        self.name = name or str(address)

    def connect(self):  # pragma: no cover - abstract
        """Establish one connection; a ``yield from`` generator."""
        raise NotImplementedError

    def execute(self, connection: Any, operation: str, payload: Any):  # pragma: no cover
        """Perform one operation; a ``yield from`` generator."""
        raise NotImplementedError

    def close(self, connection: Any):  # pragma: no cover - abstract
        """Tear the connection down; a ``yield from`` generator."""
        raise NotImplementedError

    def trace_execute(self, operation: str) -> None:
        """Emit an ``adapter.execute`` trace record for *operation*.

        Subclasses call this at the top of ``execute``; a no-op unless a
        tracer is attached, keeping the hot path to one attribute check.
        """
        if self.sim.tracer is not None:
            self.sim.trace(
                "adapter", "execute", adapter=self.name, operation=operation
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class DatabaseAdapter(ServiceAdapter):
    """Fronts a :class:`repro.db.DatabaseServer`.

    Operations:

    * ``"query"`` — payload is a SQL string; returns a
      :class:`repro.db.QueryResult`.
    """

    def connect(self):
        connection = yield from DatabaseClient.connect(
            self.sim, self.node, self.address, client_name=f"broker:{self.name}"
        )
        return connection

    def execute(self, connection: DatabaseConnection, operation: str, payload: Any):
        self.trace_execute(operation)
        if operation != "query":
            raise ProtocolError(f"database adapter: unknown operation {operation!r}")
        result = yield from connection.query(payload)
        return result

    def close(self, connection: DatabaseConnection):
        yield from connection.close()


class HttpAdapter(ServiceAdapter):
    """Fronts a :class:`repro.http.BackendWebServer`.

    Operations:

    * ``"get"`` — payload is ``(path, params)``; returns an
      :class:`HttpResponse`.
    * ``"mget"`` — payload is ``(paths, params)``; returns the batched
      206 response with per-path parts.
    * ``"request"`` — payload is a full :class:`HttpRequest`.
    """

    def connect(self):
        connection = yield from HttpClient.open(self.sim, self.node, self.address)
        return connection

    def execute(self, connection: HttpConnection, operation: str, payload: Any):
        self.trace_execute(operation)
        if operation == "get":
            path, params = payload
            response = yield from connection.get(path, dict(params or {}))
        elif operation == "mget":
            paths, params = payload
            response = yield from connection.mget(list(paths), dict(params or {}))
        elif operation == "request":
            if not isinstance(payload, HttpRequest):
                raise ProtocolError("'request' operation expects an HttpRequest")
            response = yield from connection.request(payload)
        else:
            raise ProtocolError(f"http adapter: unknown operation {operation!r}")
        return response

    def close(self, connection: HttpConnection):
        connection.close()
        return
        yield  # pragma: no cover - makes this a generator


class DirectoryAdapter(ServiceAdapter):
    """Fronts a :class:`repro.ldapdir.DirectoryServer`.

    Operations:

    * ``"search"`` — payload is ``(base, scope, filter)``; returns a
      :class:`SearchResult`.
    * ``"modify"`` — payload is ``(dn, changes)``.
    """

    def connect(self):
        connection = yield from DirectoryClient.connect(
            self.sim, self.node, self.address, principal=f"broker:{self.name}"
        )
        return connection

    def execute(self, connection: DirectoryConnection, operation: str, payload: Any):
        self.trace_execute(operation)
        if operation == "search":
            base, scope, filter_expr = payload
            result = yield from connection.search(base, scope, filter_expr)
            return result
        if operation == "modify":
            dn, changes = payload
            yield from connection.modify(dn, changes)
            return True
        raise ProtocolError(f"directory adapter: unknown operation {operation!r}")

    def close(self, connection: DirectoryConnection):
        yield from connection.unbind()


class MailAdapter(ServiceAdapter):
    """Fronts a :class:`repro.mail.MailServer`.

    Operations: ``"send"`` (payload ``(sender, recipient, subject,
    body)``), ``"list"`` (payload owner), ``"retr"`` (payload
    ``(owner, message_id)``).
    """

    def connect(self):
        connection = yield from MailClient.connect(
            self.sim, self.node, self.address, name=f"broker:{self.name}"
        )
        return connection

    def execute(self, connection: MailConnection, operation: str, payload: Any):
        self.trace_execute(operation)
        if operation == "send":
            sender, recipient, subject, body = payload
            message_id = yield from connection.send(sender, recipient, subject, body)
            return message_id
        if operation == "list":
            ids = yield from connection.list(payload)
            return ids
        if operation == "retr":
            owner, message_id = payload
            message = yield from connection.retrieve(owner, message_id)
            return message
        raise ProtocolError(f"mail adapter: unknown operation {operation!r}")

    def close(self, connection: MailConnection):
        yield from connection.quit()


class FileAdapter(ServiceAdapter):
    """Fronts a :class:`repro.fileserver.FileServer`.

    Operations:

    * ``"read"`` — payload is a file name; returns the result dict.
    * ``"read_batch"`` — payload is a tuple of names; returns the list
      of per-file results in request order.
    * ``"stat"`` — payload is a file name; returns its size in blocks.
    """

    def connect(self):
        from ..fileserver.client import FileClient

        connection = yield from FileClient.connect(
            self.sim, self.node, self.address, name=f"broker:{self.name}"
        )
        return connection

    def execute(self, connection: Any, operation: str, payload: Any):
        self.trace_execute(operation)
        if operation == "read":
            result = yield from connection.read(payload)
            return result
        if operation == "read_batch":
            results = yield from connection.read_batch(payload)
            return results
        if operation == "stat":
            size = yield from connection.stat(payload)
            return size
        raise ProtocolError(f"file adapter: unknown operation {operation!r}")

    def close(self, connection: Any):
        yield from connection.bye()
