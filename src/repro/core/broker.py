"""The service broker (distributed model).

A :class:`ServiceBroker` is the dedicated middleware process the paper
proposes: it owns the access point to one backend service, receives
request messages from web applications over UDP, and runs every request
through a composable :class:`~repro.core.pipeline.StagePipeline`:

* answering cache hits immediately (:class:`CacheLookupStage`),
* applying QoS admission control — threshold + per-class intensity
  gates (:class:`AdmissionStage`), answering rejected requests at once
  with an adaptive low-fidelity reply (:class:`FidelityFallbackStage`),
* queueing admitted requests in QoS order (:class:`EnqueueStage`),
* clustering compatible requests into batched backend accesses
  (:class:`ClusterStage`),
* executing them over pooled persistent connections to (possibly
  replicated) backends chosen by a load balancer
  (:class:`ExecuteStage`),
* caching results for future requests (:class:`CacheFillStage`),
* and periodically reporting its load for the centralized model's
  listener (:class:`LoadReportStage`).

The stage list is a constructor argument (``stages=``), so the
distributed and centralized models — and any custom policy — are stage
configurations rather than separate code paths. See
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from ..errors import (
    BrokerError,
    ConnectionClosed,
    NetworkError,
    ServiceError,
)
from ..metrics import MetricsRegistry
from ..net.address import Address
from ..net.network import Node
from ..sim.core import Simulation
from .admission import AdmissionController
from .adapters import ServiceAdapter
from .cache import ResultCache
from .clustering import ClusteringConfig
from .fidelity import FidelityPolicy
from .loadbalance import BackendState, Balancer, LeastOutstandingBalancer
from .peering import CombinableAdvert, JournalSync, RouteAdvert, TxnStateUpdate
from .pipeline import (
    BrokerStage,
    LoadReportStage,
    RequestContext,
    StagePipeline,
    distributed_stage_plan,
)
from .pool import ConnectionPool
from .protocol import BrokerReply, BrokerRequest, ReplyStatus
from .qos import QoSPolicy
from .queueing import BrokerQueue, QueuedRequest
from .transactions import TransactionTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .peering import BrokerPeerGroup

__all__ = ["ServiceBroker", "DEFAULT_BROKER_PORT"]

#: Default UDP port brokers listen on.
DEFAULT_BROKER_PORT = 7000

#: Peer-plane message types, checked with one tuple isinstance so the
#: request hot path pays the same two type checks as before sharding.
_PEER_MESSAGES = (TxnStateUpdate, JournalSync, RouteAdvert, CombinableAdvert)


class ServiceBroker:
    """One broker fronting one backend service.

    Parameters
    ----------
    sim, node:
        Simulation and the host the broker process runs on (usually the
        front-end web server's host or a dedicated middleware host).
    service:
        The service name requests must carry (e.g. ``"db"``).
    adapters:
        One :class:`ServiceAdapter` per backend replica.
    qos:
        The :class:`QoSPolicy` (threshold, fractions, rate limits).
    cache, clustering, transactions:
        Optional features; pass ``None`` to disable.
    pool_size:
        Persistent connections kept per backend replica.
    dispatchers:
        Concurrent dispatcher processes (default: total pool capacity).
    stages:
        The broker's stage plan — an ordered list of
        :class:`~repro.core.pipeline.BrokerStage` objects. Defaults to
        :func:`~repro.core.pipeline.distributed_stage_plan`; pass
        :func:`~repro.core.pipeline.centralized_stage_plan` () for the
        centralized model, or any custom list. Plans are per-broker
        (stages bind to exactly one broker).
    """

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        service: str,
        adapters: Sequence[ServiceAdapter],
        port: int = DEFAULT_BROKER_PORT,
        qos: Optional[QoSPolicy] = None,
        cache: Optional[ResultCache] = None,
        clustering: Optional[ClusteringConfig] = None,
        balancer: Optional[Balancer] = None,
        pool_size: int = 2,
        dispatchers: Optional[int] = None,
        transactions: Optional[TransactionTracker] = None,
        fidelity: Optional[FidelityPolicy] = None,
        rate_window: float = 1.0,
        priority_queueing: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "",
        stages: Optional[Sequence[BrokerStage]] = None,
    ) -> None:
        if not adapters:
            raise BrokerError("a broker needs at least one backend adapter")
        self.sim = sim
        self.node = node
        self.service = service
        self.name = name or f"broker:{service}"
        self.qos = qos or QoSPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache
        if cache is not None:
            # Mirror CacheStats onto broker.cache.* registry counters so
            # per-broker cache accounting lives with the other metrics.
            cache.bind_metrics(self.metrics)
        self.clustering = clustering
        self.transactions = transactions
        self.fidelity = fidelity or FidelityPolicy()
        self.balancer = balancer or LeastOutstandingBalancer()
        self.backends: List[BackendState] = [
            BackendState(
                adapter, ConnectionPool(sim, adapter, pool_size, self.metrics)
            )
            for adapter in adapters
        ]
        self.admission = AdmissionController(
            sim, self.qos, rate_window=rate_window, metrics=self.metrics
        )
        # With priority queueing the backlog is served in QoS order; with
        # FCFS (the paper's binary forward-or-drop testbed) admission is
        # the only differentiation mechanism and the bounded queue is
        # drained in arrival order.
        self.priority_queueing = priority_queueing
        queue_priority = self.priority_of if priority_queueing else (lambda _r: 0)
        self.queue = BrokerQueue(sim, priority_of=queue_priority)
        self._port = port
        self._pool_size = pool_size
        self.socket = node.datagram_socket(port)
        self.address = self.socket.address
        #: Set by :meth:`BrokerPeerGroup.join`; enables txn-state gossip.
        self.peer_group: Optional["BrokerPeerGroup"] = None
        #: Set by :meth:`ShardGroup.add` when this broker is a shard
        #: replica; ``None`` in unsharded (degenerate) topologies.
        self.shard_group = None
        #: ``(service, shard) → leader name`` learned from RouteAdverts.
        self.shard_view: dict = {}
        #: Per-peer shadow of replicated journal entries
        #: (``origin name → {request_id: request}``), fed by JournalSync.
        self.shard_shadow: dict = {}
        #: ``combine key → CombinableAdvert`` learned from peers; the
        #: query-combine stage yields to a peer with a fresh advert.
        self.combinable_adverts: dict = {}
        #: Optional :class:`~repro.core.cachetier.SharedCacheTier`;
        #: installed by :meth:`SharedCacheTier.attach` (via the
        #: cache-tier stage plan). ``None`` keeps the legacy single-broker
        #: behaviour byte-identical.
        self.cache_tier = None
        #: False while crashed (see :meth:`crash` / :meth:`restart`).
        self.alive = True
        #: True once :meth:`begin_drain` ran: the receive loop refuses
        #: new requests (raced arrivals get an immediate ``DROPPED``
        #: reply) while queued/in-flight work finishes. Survives a
        #: crash/restart cycle so a resurrected mid-drain broker keeps
        #: refusing work until its drain completes.
        self.draining = False
        #: True once :meth:`decommission` ran; a retired broker is
        #: permanently gone (``restart`` refuses to revive it).
        self.retired = False
        #: Optional :class:`~repro.core.lifecycle.RecoveryJournal`;
        #: installed by :meth:`BrokerSupervisor.watch` (or directly).
        self.journal = None
        self._heartbeat: Optional[tuple] = None
        #: The request path as an ordered, composable stage list.
        self.pipeline = StagePipeline(
            self, stages if stages is not None else distributed_stage_plan()
        )
        worker_count = (
            dispatchers if dispatchers is not None else len(self.backends) * pool_size
        )
        if worker_count < 1:
            raise BrokerError(f"dispatchers must be >= 1: {worker_count!r}")
        self._worker_count = worker_count
        self._processes: List[Any] = []
        self._spawn_processes()

    def _spawn_processes(self) -> None:
        """Start (or re-start, after a crash) the broker's processes."""
        sim = self.sim
        self._processes = [
            sim.process(self._receive_loop(), name=f"{self.name}:rx")
        ]
        for index in range(self._worker_count):
            self._processes.append(
                sim.process(self._dispatcher(), name=f"{self.name}:dispatch{index}")
            )

    # -- derived state ---------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet answered (queued + in service)."""
        return self.admission.outstanding

    def drop_ratio(self, level: int) -> float:
        """Fraction of level-*level* arrivals rejected by QoS admission.

        Counts only ``broker.drops.*`` (admission-gate rejections);
        backpressure sheds are accounted separately under
        ``broker.shed.*`` — see :meth:`shed_ratio`.
        """
        arrivals = self.metrics.counter(f"broker.arrivals.qos{level}")
        drops = self.metrics.counter(f"broker.drops.qos{level}")
        return drops / arrivals if arrivals else 0.0

    def shed_ratio(self, level: int) -> float:
        """Fraction of level-*level* arrivals shed by backpressure.

        The complement of :meth:`drop_ratio`: sheds happen after
        admission, when a bounded queue overflows (or on a shedding
        restart), and are tagged ``broker.shed.<reason>``.
        """
        arrivals = self.metrics.counter(f"broker.arrivals.qos{level}")
        sheds = self.metrics.counter(f"broker.shed.qos{level}")
        return sheds / arrivals if arrivals else 0.0

    def record_shed(self, level: int, reason: str) -> None:
        """Count one backpressure shed, kept apart from admission drops."""
        metrics = self.metrics
        metrics.increment("broker.shed")
        metrics.increment(f"broker.shed.{reason}")
        metrics.increment(f"broker.shed.qos{level}")

    def load_gauges(self) -> "dict[str, Any]":
        """Live load readings keyed exactly like the listener's samples.

        Returns ``name -> zero-argument callable`` for this broker's
        outstanding count plus every :meth:`BrokerQueue.gauges
        <repro.core.queueing.BrokerQueue.gauges>` reading, under the
        ``broker.load.<name>`` / ``broker.load.<name>.queue_depth``
        names :class:`~repro.core.centralized.LoadListener` already
        observes from :class:`~repro.core.centralized.LoadReport`
        datagrams — so scraped gauge series and streamed load reports
        describe the same quantities under the same keys.
        """
        prefix = f"broker.load.{self.name}"
        gauges: "dict[str, Any]" = {prefix: lambda: float(self.outstanding)}
        for key, reader in self.queue.gauges().items():
            gauges[f"{prefix}.{key}"] = reader
        return gauges

    def priority_of(self, request: BrokerRequest) -> int:
        """A request's effective QoS level (transaction escalation aware)."""
        if self.transactions is not None:
            return self.qos.clamp(self.transactions.effective_level(request))
        return self.qos.clamp(request.qos_level)

    def describe_pipeline(self) -> List[str]:
        """The broker's configured stage names, in execution order."""
        return self.pipeline.describe()

    # -- receive path (never blocks) -------------------------------------

    def _receive_loop(self):
        """Demultiplex datagrams and feed requests to the ingress stages.

        Only transport-level concerns live here (peer gossip, malformed
        payloads); all request processing is pipeline stages.
        """
        recv = self.socket.recv
        sim = self.sim
        name = self.name
        adopt = RequestContext.adopt
        run_ingress = self.pipeline.run_ingress
        while True:
            envelope = yield recv()
            message = envelope.payload
            if isinstance(message, _PEER_MESSAGES):
                if type(message) is TxnStateUpdate:
                    if self.transactions is not None:
                        self.transactions.observe_remote(
                            message.txn_id, message.step
                        )
                        self.metrics.increment("peering.updates_received")
                elif self.peer_group is not None:
                    self.peer_group.handle(self, message)
                else:
                    self.metrics.increment("broker.malformed")
                continue
            if not isinstance(message, BrokerRequest):
                self.metrics.increment("broker.malformed")
                continue
            if self.draining:
                # Refuse raced arrivals during a graceful drain with an
                # immediate DROPPED reply, bypassing the pipeline so the
                # admission ledger and recovery journal never see them.
                self.metrics.increment("broker.drain.refused")
                self.socket.sendto(
                    BrokerReply(
                        request_id=message.request_id,
                        status=ReplyStatus.DROPPED,
                        payload="broker draining",
                        fidelity=0.0,
                        error="draining",
                        broker=name,
                        context=message.context,
                    ),
                    message.reply_to,
                )
                continue
            run_ingress(adopt(message, now=sim._now, broker=name))

    # -- dispatch path -----------------------------------------------------

    def _dispatcher(self):
        """Pull queued requests and run them through the dispatch stages."""
        queue_get = self.queue.get
        run_dispatch = self.pipeline.run_dispatch
        while True:
            item: QueuedRequest = yield queue_get()
            yield from run_dispatch(item)

    # -- direct execution (prefetcher, warmup) -----------------------------

    def execute_direct(self, operation: str, payload: Any):
        """Run one backend call outside admission; ``yield from`` this.

        Used by the prefetcher and by warm-up code; the result is
        returned but *not* automatically cached (callers decide). By
        design this bypasses the stage pipeline: prefetches must not
        consume admission slots or skew per-request metrics.
        """
        backend = self.balancer.pick(self.backends)
        backend.note_dispatch()
        started = self.sim.now
        try:
            connection = yield from backend.pool.acquire()
        except (ConnectionClosed, NetworkError):
            backend.note_completion(self.sim.now - started, error=True)
            raise
        try:
            result = yield from backend.adapter.execute(connection, operation, payload)
        except (ConnectionClosed, NetworkError):
            backend.pool.release(connection, discard=True)
            backend.note_completion(self.sim.now - started, error=True)
            raise
        except ServiceError:
            backend.pool.release(connection)
            backend.note_completion(self.sim.now - started, error=True)
            raise
        backend.pool.release(connection)
        backend.note_completion(self.sim.now - started)
        return result

    # -- lifecycle (crash / restart / heartbeats) --------------------------

    def crash(self) -> None:
        """Kill the broker process mid-flight (a ``BrokerCrash`` fault).

        Models a real process death: the receive/dispatcher processes
        are interrupted, the UDP socket is unbound (datagrams sent while
        down vanish, exactly like datagrams to a dead host), the backlog
        is discarded, and the admission ledger is cleared. An installed
        :class:`~repro.core.lifecycle.RecoveryJournal` keeps the set of
        admitted-but-unanswered requests so a supervisor can fail them
        fast and :meth:`restart` can replay or shed them.
        """
        if not self.alive:
            return
        self.alive = False
        self.metrics.increment("broker.crashes")
        self.sim.trace(
            "lifecycle", "crash",
            broker=self.name, queued=len(self.queue),
            outstanding=self.outstanding,
        )
        for process in self._processes:
            if process.is_alive:
                # The event the process was blocked on survives the kill
                # (a pooled connection's recv, a queue get, ...). Nobody
                # listens to it any more: mark it cancelled for the
                # owning inbox/queue and defused so a later failure
                # (e.g. a link fault severing the idle connection) does
                # not abort the whole simulation.
                target = process._target
                if target is not None:
                    target.defused = True
                    if hasattr(target, "cancelled"):
                        target.cancelled = True
                process.defused = True
                process.interrupt("broker-crash")
        self._processes = []
        self.queue.reset()
        self.admission.outstanding = 0
        self.socket.close()

    def restart(self) -> None:
        """Bring a crashed broker back: fresh socket, pools, processes.

        Work journaled before the crash is replayed through the ingress
        pipeline or shed with a degraded reply, according to the
        installed journal's policy (see
        :class:`~repro.core.lifecycle.RecoveryJournal`).
        """
        if self.alive or self.retired:
            return
        self.alive = True
        self.metrics.increment("broker.restarts")
        self.socket = self.node.datagram_socket(self._port)
        self.address = self.socket.address
        for backend in self.backends:
            # Connections the killed dispatchers had checked out never
            # come back; rebuild each pool rather than leak its slots.
            backend.pool = ConnectionPool(
                self.sim, backend.adapter, self._pool_size, self.metrics
            )
            backend.outstanding = 0
        self._spawn_processes()
        if self._heartbeat is not None:
            self._start_heartbeat()
        for stage in self.pipeline.stages:
            if isinstance(stage, LoadReportStage) and stage.address is not None:
                self._processes.append(
                    stage.start(stage.address, interval=stage.interval)
                )
        self.sim.trace("lifecycle", "restart", broker=self.name)
        if self.journal is not None:
            self.journal.recover(self)

    def begin_drain(self) -> None:
        """Stop accepting new work ahead of a graceful decommission.

        The receive loop answers raced arrivals with an immediate
        ``DROPPED`` reply (``error="draining"``); already-queued and
        in-flight requests keep draining through the dispatchers, and
        heartbeats keep flowing so the supervisor still covers a crash
        mid-drain. Idempotent. The pool-level protocol around this —
        ring removal first, hand-off, deregistration, then
        :meth:`decommission` — lives in
        :class:`~repro.core.autoscale.BrokerPool`.
        """
        if self.draining:
            return
        self.draining = True
        self.metrics.increment("broker.drain.begin")
        self.sim.trace(
            "lifecycle", "drain-begin",
            broker=self.name, queued=len(self.queue),
            outstanding=self.outstanding,
        )

    def decommission(self) -> None:
        """Terminate a drained broker for good.

        Unlike :meth:`crash` this is an orderly exit — the caller is
        responsible for having quiesced the queue, ledger, and journal
        first (see :class:`~repro.core.autoscale.BrokerPool`). Residual
        state is deliberately left in place (not zeroed) so chaos
        invariants can audit that the drain really finished clean. A
        retired broker refuses :meth:`restart`.
        """
        if not self.alive:
            return
        self.alive = False
        self.retired = True
        self.metrics.increment("broker.drained")
        self.sim.trace(
            "lifecycle", "decommission",
            broker=self.name, queued=len(self.queue),
            outstanding=self.outstanding,
        )
        for process in self._processes:
            if process.is_alive:
                target = process._target
                if target is not None:
                    target.defused = True
                    if hasattr(target, "cancelled"):
                        target.cancelled = True
                process.defused = True
                process.interrupt("broker-drained")
        self._processes = []
        self.socket.close()

    def start_heartbeat(self, address: Address, interval: float = 0.05) -> None:
        """Emit liveness heartbeats to *address* every *interval* seconds.

        Normally installed by
        :meth:`~repro.core.lifecycle.BrokerSupervisor.watch`. The
        heartbeat process dies with the broker on :meth:`crash` and is
        revived by :meth:`restart` — silence is the death signal.
        """
        self._heartbeat = (address, interval)
        self._start_heartbeat()

    def _start_heartbeat(self) -> None:
        self._processes.append(
            self.sim.process(
                self._heartbeat_loop(), name=f"{self.name}:heartbeat"
            )
        )

    def _heartbeat_loop(self):
        from .lifecycle import Heartbeat  # local import avoids a cycle

        address, interval = self._heartbeat
        seq = 0
        while True:
            self.socket.sendto(
                Heartbeat(broker=self.name, sent_at=self.sim.now, seq=seq),
                address,
            )
            seq += 1
            yield interval

    # -- replies and load reports -----------------------------------------

    def send_reply(self, request: BrokerRequest, reply: BrokerReply) -> None:
        """Send *reply* to the request's ``reply_to`` address."""
        if self.journal is not None:
            self.journal.record_answered(request.request_id)
        self.socket.sendto(reply, request.reply_to)

    def report_load_to(self, address: Address, interval: float = 0.1):
        """Start periodically sending load reports to *address*.

        Activates the pipeline's :class:`LoadReportStage` (appending one
        if the current stage plan has none — brokers built with the
        distributed plan can still feed a listener).
        """
        try:
            stage = self.pipeline.stage(LoadReportStage.name)
        except BrokerError:
            stage = LoadReportStage()
            self.pipeline.append(stage)
        process = stage.start(address, interval=interval)
        self._processes.append(process)
        return process

    def __repr__(self) -> str:
        return (
            f"<ServiceBroker {self.name} service={self.service!r} "
            f"outstanding={self.outstanding} queue={len(self.queue)}>"
        )
