"""The service broker (distributed model).

A :class:`ServiceBroker` is the dedicated middleware process the paper
proposes: it owns the access point to one backend service, receives
request messages from web applications over UDP, and

* answers cache hits immediately,
* applies QoS admission control (threshold + per-class intensity gates),
  answering rejected requests at once with an adaptive low-fidelity
  reply,
* queues admitted requests in QoS order,
* clusters compatible requests into batched backend accesses,
* executes them over pooled persistent connections to (possibly
  replicated) backends chosen by a load balancer,
* caches results for future requests,
* and periodically reports its load (for the centralized model's
  listener).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..errors import (
    BrokerError,
    ConnectionClosed,
    NetworkError,
    ServiceError,
)
from ..metrics import MetricsRegistry
from ..net.address import Address
from ..net.network import Node
from ..sim.core import Simulation
from .admission import AdmissionController
from .adapters import ServiceAdapter
from .cache import ResultCache
from .clustering import ClusteringConfig
from .fidelity import FidelityPolicy
from .loadbalance import BackendState, Balancer, LeastOutstandingBalancer
from .pool import ConnectionPool
from typing import TYPE_CHECKING

from .peering import TxnStateUpdate
from .protocol import BrokerReply, BrokerRequest, ReplyStatus
from .qos import QoSPolicy
from .queueing import BrokerQueue, QueuedRequest
from .transactions import TransactionTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .peering import BrokerPeerGroup

__all__ = ["ServiceBroker", "DEFAULT_BROKER_PORT"]

#: Default UDP port brokers listen on.
DEFAULT_BROKER_PORT = 7000


class ServiceBroker:
    """One broker fronting one backend service.

    Parameters
    ----------
    sim, node:
        Simulation and the host the broker process runs on (usually the
        front-end web server's host or a dedicated middleware host).
    service:
        The service name requests must carry (e.g. ``"db"``).
    adapters:
        One :class:`ServiceAdapter` per backend replica.
    qos:
        The :class:`QoSPolicy` (threshold, fractions, rate limits).
    cache, clustering, transactions:
        Optional features; pass ``None`` to disable.
    pool_size:
        Persistent connections kept per backend replica.
    dispatchers:
        Concurrent dispatcher processes (default: total pool capacity).
    """

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        service: str,
        adapters: Sequence[ServiceAdapter],
        port: int = DEFAULT_BROKER_PORT,
        qos: Optional[QoSPolicy] = None,
        cache: Optional[ResultCache] = None,
        clustering: Optional[ClusteringConfig] = None,
        balancer: Optional[Balancer] = None,
        pool_size: int = 2,
        dispatchers: Optional[int] = None,
        transactions: Optional[TransactionTracker] = None,
        fidelity: Optional[FidelityPolicy] = None,
        rate_window: float = 1.0,
        priority_queueing: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "",
    ) -> None:
        if not adapters:
            raise BrokerError("a broker needs at least one backend adapter")
        self.sim = sim
        self.node = node
        self.service = service
        self.name = name or f"broker:{service}"
        self.qos = qos or QoSPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache
        self.clustering = clustering
        self.transactions = transactions
        self.fidelity = fidelity or FidelityPolicy()
        self.balancer = balancer or LeastOutstandingBalancer()
        self.backends: List[BackendState] = [
            BackendState(
                adapter, ConnectionPool(sim, adapter, pool_size, self.metrics)
            )
            for adapter in adapters
        ]
        self.admission = AdmissionController(
            sim, self.qos, rate_window=rate_window, metrics=self.metrics
        )
        # With priority queueing the backlog is served in QoS order; with
        # FCFS (the paper's binary forward-or-drop testbed) admission is
        # the only differentiation mechanism and the bounded queue is
        # drained in arrival order.
        self.priority_queueing = priority_queueing
        queue_priority = self._priority_of if priority_queueing else (lambda _r: 0)
        self.queue = BrokerQueue(sim, priority_of=queue_priority)
        self.socket = node.datagram_socket(port)
        self.address = self.socket.address
        #: Set by :meth:`BrokerPeerGroup.join`; enables txn-state gossip.
        self.peer_group: Optional["BrokerPeerGroup"] = None
        worker_count = (
            dispatchers if dispatchers is not None else len(self.backends) * pool_size
        )
        if worker_count < 1:
            raise BrokerError(f"dispatchers must be >= 1: {worker_count!r}")
        sim.process(self._receive_loop(), name=f"{self.name}:rx")
        for index in range(worker_count):
            sim.process(self._dispatcher(), name=f"{self.name}:dispatch{index}")

    # -- derived state ---------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet answered (queued + in service)."""
        return self.admission.outstanding

    def drop_ratio(self, level: int) -> float:
        """Fraction of level-*level* arrivals rejected by admission."""
        arrivals = self.metrics.counter(f"broker.arrivals.qos{level}")
        drops = self.metrics.counter(f"broker.drops.qos{level}")
        return drops / arrivals if arrivals else 0.0

    def _priority_of(self, request: BrokerRequest) -> int:
        if self.transactions is not None:
            return self.qos.clamp(self.transactions.effective_level(request))
        return self.qos.clamp(request.qos_level)

    # -- receive path (never blocks) -------------------------------------

    def _receive_loop(self):
        while True:
            envelope = yield self.socket.recv()
            request = envelope.payload
            if isinstance(request, TxnStateUpdate):
                if self.transactions is not None:
                    self.transactions.observe_remote(request.txn_id, request.step)
                    self.metrics.increment("peering.updates_received")
                continue
            if not isinstance(request, BrokerRequest):
                self.metrics.increment("broker.malformed")
                continue
            if request.service != self.service:
                self._send_reply(
                    request,
                    BrokerReply(
                        request_id=request.request_id,
                        status=ReplyStatus.ERROR,
                        error=f"unknown service {request.service!r}",
                        broker=self.name,
                    ),
                )
                continue
            self._on_request(request)

    def _on_request(self, request: BrokerRequest) -> None:
        level = self.qos.clamp(request.qos_level)
        self.metrics.increment("broker.arrivals")
        self.metrics.increment(f"broker.arrivals.qos{level}")
        self.admission.record_arrival(level)
        if self.transactions is not None:
            advanced_to = self.transactions.observe(request)
            if advanced_to is not None and self.peer_group is not None:
                self.peer_group.publish(self, request.txn_id, advanced_to)

        self.sim.trace(
            "broker", "arrival",
            broker=self.name, request_id=request.request_id, qos=level,
            operation=request.operation,
        )
        if self.cache is not None and request.cacheable:
            value = self.cache.get(request.key())
            if value is not None:
                self.metrics.increment("broker.cache_replies")
                self.sim.trace(
                    "broker", "cache-hit",
                    broker=self.name, request_id=request.request_id,
                )
                self._send_reply(
                    request,
                    BrokerReply(
                        request_id=request.request_id,
                        status=ReplyStatus.OK,
                        payload=value,
                        fidelity=1.0,
                        from_cache=True,
                        broker=self.name,
                    ),
                )
                return

        effective = self._priority_of(request)
        protected = (
            self.transactions.protected(request)
            if self.transactions is not None
            else False
        )
        decision = self.admission.decide(effective, protected=protected)
        if not decision.admitted:
            self.metrics.increment("broker.drops")
            self.metrics.increment(f"broker.drops.qos{level}")
            self.sim.trace(
                "broker", "drop",
                broker=self.name, request_id=request.request_id, qos=level,
                reason=decision.reason, outstanding=self.outstanding,
            )
            reply = self.fidelity.degrade(
                request, self.cache, decision.reason, broker_name=self.name
            )
            if reply.status is ReplyStatus.DEGRADED:
                self.metrics.increment("broker.degraded_replies")
            self._send_reply(request, reply)
            return

        self.admission.request_started()
        self.metrics.increment("broker.admitted")
        self.metrics.increment(f"broker.admitted.qos{level}")
        self.queue.put(request)

    # -- dispatch path -----------------------------------------------------

    def _dispatcher(self):
        while True:
            item: QueuedRequest = yield self.queue.get()
            batch = [item]
            config = self.clustering
            if config is not None and config.max_batch > 1:
                key = config.combiner.key(item.request)
                if key is not None:
                    if config.window > 0:
                        yield self.sim.timeout(config.window)
                    companions = self.queue.take_matching(
                        lambda queued: config.combiner.key(queued.request) == key,
                        config.max_batch - 1,
                    )
                    batch.extend(companions)
                    if companions:
                        self.metrics.increment("broker.clustered_batches")
                        self.metrics.observe("broker.batch_size", len(batch))
            yield from self._execute_batch(batch)

    def _combined_call(self, batch: List[QueuedRequest]):
        if self.clustering is not None and len(batch) > 1:
            return self.clustering.combiner.combine([item.request for item in batch])
        head = batch[0].request
        return head.operation, head.payload

    def _execute_batch(self, batch: List[QueuedRequest]):
        operation, payload = self._combined_call(batch)
        backend = self.balancer.pick(self.backends)
        self.sim.trace(
            "broker", "dispatch",
            broker=self.name, backend=backend.name, batch=len(batch),
            operation=operation,
        )
        backend.note_dispatch()
        started = self.sim.now
        attempts = 0
        result: Any = None
        failure: Optional[str] = None
        while True:
            try:
                connection = yield from backend.pool.acquire()
            except (ConnectionClosed, NetworkError) as exc:
                attempts += 1
                if attempts >= 2:
                    failure = f"backend unreachable: {exc}"
                    break
                continue
            try:
                result = yield from backend.adapter.execute(
                    connection, operation, payload
                )
            except (ConnectionClosed, NetworkError) as exc:
                backend.pool.release(connection, discard=True)
                attempts += 1
                if attempts >= 2:
                    failure = f"backend unreachable: {exc}"
                    break
                continue
            except ServiceError as exc:
                backend.pool.release(connection)
                failure = str(exc)
                break
            backend.pool.release(connection)
            break
        latency = self.sim.now - started

        if failure is not None:
            backend.note_completion(latency, error=True)
            self.metrics.increment("broker.backend_errors")
            self.sim.trace(
                "broker", "backend-error",
                broker=self.name, backend=backend.name, error=failure,
            )
            for item in batch:
                self._send_reply(
                    item.request,
                    BrokerReply(
                        request_id=item.request.request_id,
                        status=ReplyStatus.ERROR,
                        error=failure,
                        broker=self.name,
                        queue_time=started - item.enqueued_at,
                        service_time=latency,
                    ),
                )
                self.admission.request_finished()
            return

        backend.note_completion(latency)
        requests = [item.request for item in batch]
        if self.clustering is not None and len(batch) > 1:
            payloads = self.clustering.combiner.split(requests, result)
        else:
            payloads = [result]
        for item, item_payload in zip(batch, payloads):
            request = item.request
            if self.cache is not None and request.cacheable:
                self.cache.put(request.key(), item_payload)
            level = self.qos.clamp(request.qos_level)
            queue_time = started - item.enqueued_at
            self.metrics.increment("broker.served")
            self.metrics.increment(f"broker.served.qos{level}")
            self.metrics.observe("broker.queue_time", queue_time)
            self.metrics.observe(f"broker.queue_time.qos{level}", queue_time)
            self.metrics.observe("broker.service_time", latency)
            self._send_reply(
                request,
                BrokerReply(
                    request_id=request.request_id,
                    status=ReplyStatus.OK,
                    payload=item_payload,
                    fidelity=1.0,
                    broker=self.name,
                    queue_time=queue_time,
                    service_time=latency,
                ),
            )
            self.admission.request_finished()

    # -- direct execution (prefetcher, warmup) -----------------------------

    def execute_direct(self, operation: str, payload: Any):
        """Run one backend call outside admission; ``yield from`` this.

        Used by the prefetcher and by warm-up code; the result is
        returned but *not* automatically cached (callers decide).
        """
        backend = self.balancer.pick(self.backends)
        backend.note_dispatch()
        started = self.sim.now
        try:
            connection = yield from backend.pool.acquire()
        except (ConnectionClosed, NetworkError):
            backend.note_completion(self.sim.now - started, error=True)
            raise
        try:
            result = yield from backend.adapter.execute(connection, operation, payload)
        except (ConnectionClosed, NetworkError):
            backend.pool.release(connection, discard=True)
            backend.note_completion(self.sim.now - started, error=True)
            raise
        except ServiceError:
            backend.pool.release(connection)
            backend.note_completion(self.sim.now - started, error=True)
            raise
        backend.pool.release(connection)
        backend.note_completion(self.sim.now - started)
        return result

    # -- replies and load reports -----------------------------------------

    def _send_reply(self, request: BrokerRequest, reply: BrokerReply) -> None:
        self.socket.sendto(reply, request.reply_to)

    def report_load_to(self, address: Address, interval: float = 0.1):
        """Start periodically sending load reports to *address*."""
        from .centralized import LoadReport  # local import avoids a cycle

        def reporter():
            while True:
                yield self.sim.timeout(interval)
                report = LoadReport(
                    broker=self.name,
                    service=self.service,
                    outstanding=self.outstanding,
                    queue_depth=len(self.queue),
                    threshold=self.qos.threshold,
                    sent_at=self.sim.now,
                )
                self.socket.sendto(report, address)

        return self.sim.process(reporter(), name=f"{self.name}:load-report")

    def __repr__(self) -> str:
        return (
            f"<ServiceBroker {self.name} service={self.service!r} "
            f"outstanding={self.outstanding} queue={len(self.queue)}>"
        )
