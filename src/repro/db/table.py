"""Row storage with secondary index maintenance.

Rows are tuples held in a slotted list; deletion tombstones the slot so
row ids stay stable (indexes reference row ids). All mutations keep
every index consistent.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from .index import HashIndex, SortedIndex
from .schema import Column, Schema

__all__ = ["Table"]

Row = Tuple[Any, ...]


class Table:
    """One table: a schema, row storage, and secondary indexes."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._rows: List[Optional[Row]] = []
        self._live = 0
        self.indexes: Dict[str, Union[HashIndex, SortedIndex]] = {}

    # -- bookkeeping -----------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of live (non-deleted) rows."""
        return self._live

    def __len__(self) -> int:
        return self._live

    # -- mutation --------------------------------------------------------

    def insert(self, values: Union[Sequence[Any], Mapping[str, Any]]) -> int:
        """Insert one row; returns its row id.

        *values* is either a sequence in schema order or a mapping of
        column name to value (missing columns become ``None``).
        """
        if isinstance(values, Mapping):
            row = self.schema.coerce_row(
                [values.get(c.name) for c in self.schema.columns]
            )
        else:
            row = self.schema.coerce_row(values)
        row_id = len(self._rows)
        self._rows.append(row)
        self._live += 1
        for column, index in self.indexes.items():
            index.insert(row[self.schema.index_of(column)], row_id)
        return row_id

    def delete(self, row_id: int) -> None:
        """Tombstone the row with *row_id*."""
        row = self._fetch(row_id)
        self._rows[row_id] = None
        self._live -= 1
        for column, index in self.indexes.items():
            index.remove(row[self.schema.index_of(column)], row_id)

    def update(self, row_id: int, changes: Mapping[str, Any]) -> None:
        """Overwrite columns of one row, keeping indexes consistent."""
        row = list(self._fetch(row_id))
        for column, value in changes.items():
            pos = self.schema.index_of(column)
            coerced = self.schema.columns[pos].coerce(value)
            index = self.indexes.get(column)
            if index is not None:
                index.remove(row[pos], row_id)
                index.insert(coerced, row_id)
            row[pos] = coerced
        self._rows[row_id] = tuple(row)

    def _fetch(self, row_id: int) -> Row:
        if not 0 <= row_id < len(self._rows) or self._rows[row_id] is None:
            raise QueryError(f"no live row with id {row_id} in {self.name!r}")
        return self._rows[row_id]  # type: ignore[return-value]

    # -- access ----------------------------------------------------------

    def get(self, row_id: int) -> Optional[Row]:
        """The row with *row_id*, or ``None`` if deleted/out of range."""
        if 0 <= row_id < len(self._rows):
            return self._rows[row_id]
        return None

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Iterate (row id, row) over all live rows."""
        for row_id, row in enumerate(self._rows):
            if row is not None:
                yield row_id, row

    def value(self, row: Row, column: str) -> Any:
        """The value of *column* within *row*."""
        return row[self.schema.index_of(column)]

    # -- indexes ---------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash") -> None:
        """Build a secondary index over *column* (``"hash"`` or ``"sorted"``)."""
        self.schema.index_of(column)  # validates the column exists
        if column in self.indexes:
            raise QueryError(f"index on {self.name}.{column} already exists")
        if kind == "hash":
            index: Union[HashIndex, SortedIndex] = HashIndex(column)
            for row_id, row in self.scan():
                index.insert(self.value(row, column), row_id)
        elif kind == "sorted":
            index = SortedIndex(column)
            index.bulk_load(
                (self.value(row, column), row_id) for row_id, row in self.scan()
            )
        else:
            raise QueryError(f"unknown index kind: {kind!r}")
        self.indexes[column] = index

    def __repr__(self) -> str:
        return (
            f"<Table {self.name!r} rows={self._live} "
            f"indexes={sorted(self.indexes)}>"
        )
