"""Cost model: executed work → simulated service time.

The paper's motivating example — "a search operation involves traversal
of database tables with many comparison operations, which only results
in a few lines of output" — is exactly what this model captures: service
time scales with rows *examined*, not rows returned. Constants are
calibrated so a full scan of the 42,000-record experiment table costs
roughly 0.2 s, in the ballpark of a 2003-era MySQL table traversal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .executor import ExecutionStats

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Converts :class:`ExecutionStats` into seconds of service time."""

    base: float = 0.002
    """Fixed per-query overhead: parse, plan, buffer management."""

    per_row_examined: float = 5e-6
    """Cost of touching one row (comparison + buffer access)."""

    per_row_returned: float = 2e-5
    """Cost of materializing one result row onto the wire."""

    per_row_sorted: float = 2e-6
    """Multiplier applied as n·log2(n) for ORDER BY."""

    per_row_written: float = 5e-5
    """Cost of one insert/update/delete, including index maintenance."""

    def service_time(self, stats: ExecutionStats) -> float:
        """Seconds of backend CPU/IO time for the statement's work."""
        time = self.base
        time += stats.rows_examined * self.per_row_examined
        time += stats.rows_returned * self.per_row_returned
        time += stats.rows_written * self.per_row_written
        if stats.sorted_rows > 1:
            time += self.per_row_sorted * stats.sorted_rows * math.log2(
                stats.sorted_rows
            )
        return time
