"""The in-process database engine: named tables plus SQL execution."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

from ..errors import QueryError, UnknownTableError
from .executor import ResultSet, execute_statement
from .parser import parse
from .query import Statement
from .schema import Column, Schema, SqlType
from .table import Table

__all__ = ["Database"]


class Database:
    """A collection of tables with a SQL front door.

    >>> db = Database()
    >>> _ = db.create_table("movies", [("id", int), ("title", str)])
    >>> _ = db.execute("INSERT INTO movies (id, title) VALUES (1, 'Heat')")
    >>> db.execute("SELECT title FROM movies WHERE id = 1").rows
    (('Heat',),)
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        #: Optional :class:`~repro.db.views.ViewCatalog`; ``None`` means
        #: every statement goes straight to the executor (byte-identical
        #: legacy behaviour). Install with :meth:`install_views`.
        self.views = None

    def create_table(
        self,
        name: str,
        columns: Sequence[Union[Column, Tuple[str, SqlType]]],
    ) -> Table:
        """Create a table; *columns* are Column objects or (name, type) pairs."""
        if name in self.tables:
            raise QueryError(f"table {name!r} already exists")
        schema = Schema(
            [c if isinstance(c, Column) else Column(c[0], c[1]) for c in columns]
        )
        table = Table(name, schema)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove table *name*; raises :class:`UnknownTableError`."""
        if name not in self.tables:
            raise UnknownTableError(f"unknown table {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        """The table called *name*; raises :class:`UnknownTableError`."""
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(
                f"unknown table {name!r}; have {sorted(self.tables)!r}"
            ) from None

    def install_views(self, catalog) -> None:
        """Route statements through a materialized-view catalog.

        Writes against a view's base table mark it dirty; reads a view
        can answer are served from its index instead of the executor
        (see :mod:`repro.db.views`).
        """
        self.views = catalog

    def execute(self, statement: Union[str, Statement]) -> ResultSet:
        """Parse (if needed) and execute one statement.

        With a view catalog installed, the statement is offered to the
        views first: a served read returns immediately, a write falls
        through after invalidating the affected views.
        """
        stmt = parse(statement) if isinstance(statement, str) else statement
        views = self.views
        if views is not None:
            served = views.intercept(self, stmt)
            if served is not None:
                return served
        return execute_statement(self.table(stmt.table), stmt)

    def __repr__(self) -> str:
        return f"<Database {self.name!r} tables={sorted(self.tables)}>"
