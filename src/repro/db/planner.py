"""Query planner: choose an access path for a predicate.

The planner flattens a top-level conjunction, looks for one indexable
conjunct (equality on a hash or sorted index, range/BETWEEN on a sorted
index, IN on either), and leaves the remaining conjuncts as a residual
filter. Disjunctions and un-indexed predicates fall back to a full scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .index import HashIndex, SortedIndex
from .query import And, Between, Comparison, InList, Like, Or, Predicate
from .table import Table

__all__ = ["AccessPath", "plan_access"]

#: Preference order of access kinds (lower = better).
_KIND_RANK = {
    "hash-eq": 0,
    "sorted-eq": 1,
    "in-list": 2,
    "range": 3,
    "prefix-range": 4,
    "scan": 9,
}

#: Upper bound appended to a LIKE prefix to form its half-open range.
_PREFIX_CEILING = "￿"


@dataclass(frozen=True)
class AccessPath:
    """The chosen way to fetch candidate rows for a query.

    ``kind`` is one of ``"scan"``, ``"hash-eq"``, ``"sorted-eq"``,
    ``"range"``, ``"in-list"``; index paths carry the column and the
    lookup arguments, plus the residual predicate to apply per row.
    """

    kind: str
    column: Optional[str] = None
    equals: Any = None
    values: Optional[Tuple[Any, ...]] = None
    low: Any = None
    high: Any = None
    low_open: bool = False
    high_open: bool = False
    residual: Optional[Predicate] = None

    @property
    def uses_index(self) -> bool:
        return self.kind != "scan"


def _conjuncts(where: Optional[Predicate]) -> List[Predicate]:
    if where is None:
        return []
    if isinstance(where, And):
        return list(where.parts)
    return [where]


def _residual(parts: List[Predicate], used: Predicate) -> Optional[Predicate]:
    rest = [p for p in parts if p is not used]
    if not rest:
        return None
    if len(rest) == 1:
        return rest[0]
    return And(tuple(rest))


def _candidate(table: Table, predicate: Predicate) -> Optional[AccessPath]:
    """An index path for one conjunct, or None if not indexable."""
    if isinstance(predicate, Comparison):
        index = table.indexes.get(predicate.column)
        if index is None:
            return None
        if predicate.op == "=":
            kind = "hash-eq" if isinstance(index, HashIndex) else "sorted-eq"
            return AccessPath(kind=kind, column=predicate.column, equals=predicate.value)
        if isinstance(index, SortedIndex) and predicate.op in ("<", "<=", ">", ">="):
            if predicate.op in ("<", "<="):
                return AccessPath(
                    kind="range",
                    column=predicate.column,
                    high=predicate.value,
                    high_open=(predicate.op == "<"),
                )
            return AccessPath(
                kind="range",
                column=predicate.column,
                low=predicate.value,
                low_open=(predicate.op == ">"),
            )
        return None
    if isinstance(predicate, Between):
        index = table.indexes.get(predicate.column)
        if isinstance(index, SortedIndex):
            return AccessPath(
                kind="range",
                column=predicate.column,
                low=predicate.low,
                high=predicate.high,
            )
        return None
    if isinstance(predicate, InList):
        index = table.indexes.get(predicate.column)
        if index is not None:
            return AccessPath(
                kind="in-list", column=predicate.column, values=predicate.values
            )
        return None
    if isinstance(predicate, Like):
        # LIKE 'abc%...' can seed a sorted-index range over the literal
        # prefix; the pattern itself must stay as a residual filter
        # because the range is an over-approximation.
        index = table.indexes.get(predicate.column)
        prefix = predicate.prefix
        if isinstance(index, SortedIndex) and prefix is not None:
            return AccessPath(
                kind="prefix-range",
                column=predicate.column,
                low=prefix,
                high=prefix + _PREFIX_CEILING,
            )
        return None
    if isinstance(predicate, (And, Or)):
        return None
    return None


def plan_access(table: Table, where: Optional[Predicate]) -> AccessPath:
    """Choose the cheapest access path for *where* on *table*."""
    parts = _conjuncts(where)
    if not parts:
        return AccessPath(kind="scan", residual=None)
    if isinstance(where, Or):
        return AccessPath(kind="scan", residual=where)

    best: Optional[Tuple[int, Predicate, AccessPath]] = None
    for part in parts:
        path = _candidate(table, part)
        if path is None:
            continue
        rank = _KIND_RANK[path.kind]
        if best is None or rank < best[0]:
            best = (rank, part, path)
    if best is None:
        return AccessPath(kind="scan", residual=where)
    _, used, path = best
    # A prefix-range only narrows the candidates; the LIKE predicate
    # itself must still run as a residual filter.
    consumed = None if path.kind == "prefix-range" else used
    return AccessPath(
        kind=path.kind,
        column=path.column,
        equals=path.equals,
        values=path.values,
        low=path.low,
        high=path.high,
        low_open=path.low_open,
        high_open=path.high_open,
        residual=_residual(parts, consumed),
    )
