"""Mini relational database: engine, networked server, and client."""

from .client import DatabaseClient, DatabaseConnection, QueryResult
from .cost import CostModel
from .engine import Database
from .executor import ExecutionStats, ResultSet
from .index import HashIndex, SortedIndex
from .parser import parse, tokenize
from .query import (
    And,
    Between,
    Comparison,
    DeleteStatement,
    InList,
    InsertStatement,
    Like,
    Or,
    SelectStatement,
    UpdateStatement,
)
from .schema import Column, Schema
from .server import DatabaseServer
from .table import Table
from .views import MaterializedView, ViewCatalog

__all__ = [
    "Database",
    "DatabaseServer",
    "DatabaseClient",
    "DatabaseConnection",
    "QueryResult",
    "CostModel",
    "ExecutionStats",
    "ResultSet",
    "HashIndex",
    "SortedIndex",
    "parse",
    "tokenize",
    "Column",
    "Schema",
    "Table",
    "Comparison",
    "Between",
    "InList",
    "Like",
    "And",
    "Or",
    "SelectStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "MaterializedView",
    "ViewCatalog",
]
