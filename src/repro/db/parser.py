"""Tokenizer and recursive-descent parser for the mini-SQL dialect.

Grammar (case-insensitive keywords)::

    statement  := select | insert | update | delete
    select     := SELECT ('*' | COUNT '(' '*' ')' | ident (',' ident)*)
                  FROM ident [WHERE or_expr]
                  [ORDER BY ident [ASC|DESC]] [LIMIT int]
    insert     := INSERT INTO ident '(' ident (',' ident)* ')'
                  VALUES '(' literal (',' literal)* ')'
    update     := UPDATE ident SET ident '=' literal (',' ident '=' literal)*
                  [WHERE or_expr]
    delete     := DELETE FROM ident [WHERE or_expr]
    or_expr    := and_expr (OR and_expr)*
    and_expr   := predicate (AND predicate)*
    predicate  := '(' or_expr ')'
                | ident BETWEEN literal AND literal
                | ident IN '(' literal (',' literal)* ')'
                | ident LIKE string
                | ident op literal
    op         := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    literal    := int | float | string
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..errors import SqlSyntaxError
from .query import (
    And,
    Between,
    Comparison,
    DeleteStatement,
    InList,
    InsertStatement,
    Like,
    Or,
    Predicate,
    SelectStatement,
    Statement,
    UpdateStatement,
)

__all__ = ["parse", "tokenize", "Token"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "AND", "OR", "BETWEEN", "IN", "LIKE",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
}

AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Token:
    """One lexical token: a *kind* plus its decoded *value*."""

    kind: str  # 'keyword' | 'ident' | 'int' | 'float' | 'string' | 'op' | 'punct'
    value: Any
    position: int


def tokenize(text: str) -> List[Token]:
    """Convert *text* to tokens; raises :class:`SqlSyntaxError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError(f"unexpected character {text[pos]!r} at {pos}")
        kind = match.lastgroup
        raw = match.group()
        if kind == "ws":
            pass
        elif kind == "float":
            tokens.append(Token("float", float(raw), pos))
        elif kind == "int":
            tokens.append(Token("int", int(raw), pos))
        elif kind == "string":
            tokens.append(Token("string", raw[1:-1].replace("''", "'"), pos))
        elif kind == "ident":
            upper = raw.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, pos))
            else:
                tokens.append(Token("ident", raw, pos))
        elif kind == "op":
            tokens.append(Token("op", "!=" if raw == "<>" else raw, pos))
        else:
            tokens.append(Token("punct", raw, pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError(f"unexpected end of statement: {self.text!r}")
        self.pos += 1
        return token

    def expect(self, kind: str, value: Any = None) -> Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise SqlSyntaxError(
                f"expected {wanted!r}, got {token.value!r} at {token.position}"
            )
        return token

    def accept(self, kind: str, value: Any = None) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind == kind and (
            value is None or token.value == value
        ):
            self.pos += 1
            return token
        return None

    def literal(self) -> Any:
        token = self.next()
        if token.kind not in ("int", "float", "string"):
            raise SqlSyntaxError(
                f"expected a literal, got {token.value!r} at {token.position}"
            )
        return token.value

    def ident(self) -> str:
        token = self.next()
        if token.kind != "ident":
            raise SqlSyntaxError(
                f"expected an identifier, got {token.value!r} at {token.position}"
            )
        return token.value

    # -- statements --------------------------------------------------------

    def statement(self) -> Statement:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("empty statement")
        if token.kind != "keyword":
            raise SqlSyntaxError(f"statement must start with a keyword: {self.text!r}")
        if token.value == "SELECT":
            result: Statement = self.select()
        elif token.value == "INSERT":
            result = self.insert()
        elif token.value == "UPDATE":
            result = self.update()
        elif token.value == "DELETE":
            result = self.delete()
        else:
            raise SqlSyntaxError(f"unsupported statement: {token.value}")
        trailing = self.peek()
        if trailing is not None:
            raise SqlSyntaxError(
                f"trailing input at {trailing.position}: {trailing.value!r}"
            )
        return result

    def select(self) -> SelectStatement:
        self.expect("keyword", "SELECT")
        columns: list = []
        aggregates: list = []
        if self.accept("punct", "*"):
            pass
        else:
            self.select_item(columns, aggregates)
            while self.accept("punct", ","):
                self.select_item(columns, aggregates)
        self.expect("keyword", "FROM")
        table = self.ident()
        where = self.where_clause()
        group_by: Optional[str] = None
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by = self.ident()
        order_by: Optional[str] = None
        descending = False
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by = self.ident()
            if self.accept("keyword", "DESC"):
                descending = True
            else:
                self.accept("keyword", "ASC")
        limit: Optional[int] = None
        if self.accept("keyword", "LIMIT"):
            token = self.next()
            if token.kind != "int" or token.value < 0:
                raise SqlSyntaxError("LIMIT expects a non-negative integer")
            limit = token.value
        if group_by is not None and not aggregates:
            raise SqlSyntaxError("GROUP BY requires at least one aggregate")
        if aggregates and columns:
            if group_by is None:
                raise SqlSyntaxError(
                    "mixing plain columns with aggregates requires GROUP BY"
                )
            for name in columns:
                if name != group_by:
                    raise SqlSyntaxError(
                        f"column {name!r} must appear in GROUP BY"
                    )
        return SelectStatement(
            table=table,
            columns=tuple(columns),
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            aggregates=tuple(aggregates),
            group_by=group_by,
        )

    def select_item(self, columns: list, aggregates: list) -> None:
        """Parse one select-list item: a column or an aggregate call."""
        token = self.peek()
        if (
            token is not None
            and token.kind == "keyword"
            and token.value in AGGREGATE_KEYWORDS
        ):
            function = self.next().value
            self.expect("punct", "(")
            if self.accept("punct", "*"):
                if function != "COUNT":
                    raise SqlSyntaxError(f"{function}(*) is not supported")
                argument: Optional[str] = None
            else:
                argument = self.ident()
            self.expect("punct", ")")
            aggregates.append((function, argument))
        else:
            columns.append(self.ident())

    def insert(self) -> InsertStatement:
        self.expect("keyword", "INSERT")
        self.expect("keyword", "INTO")
        table = self.ident()
        self.expect("punct", "(")
        columns = [self.ident()]
        while self.accept("punct", ","):
            columns.append(self.ident())
        self.expect("punct", ")")
        self.expect("keyword", "VALUES")
        self.expect("punct", "(")
        values = [self.literal()]
        while self.accept("punct", ","):
            values.append(self.literal())
        self.expect("punct", ")")
        if len(columns) != len(values):
            raise SqlSyntaxError(
                f"INSERT has {len(columns)} columns but {len(values)} values"
            )
        return InsertStatement(table, tuple(columns), tuple(values))

    def update(self) -> UpdateStatement:
        self.expect("keyword", "UPDATE")
        table = self.ident()
        self.expect("keyword", "SET")
        assignments = [self.assignment()]
        while self.accept("punct", ","):
            assignments.append(self.assignment())
        where = self.where_clause()
        return UpdateStatement(table, tuple(assignments), where)

    def assignment(self) -> Tuple[str, Any]:
        column = self.ident()
        self.expect("op", "=")
        return column, self.literal()

    def delete(self) -> DeleteStatement:
        self.expect("keyword", "DELETE")
        self.expect("keyword", "FROM")
        table = self.ident()
        return DeleteStatement(table, self.where_clause())

    # -- predicates ----------------------------------------------------

    def where_clause(self) -> Optional[Predicate]:
        if self.accept("keyword", "WHERE"):
            return self.or_expr()
        return None

    def or_expr(self) -> Predicate:
        parts = [self.and_expr()]
        while self.accept("keyword", "OR"):
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def and_expr(self) -> Predicate:
        parts = [self.predicate()]
        while self.accept("keyword", "AND"):
            parts.append(self.predicate())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def predicate(self) -> Predicate:
        if self.accept("punct", "("):
            inner = self.or_expr()
            self.expect("punct", ")")
            return inner
        column = self.ident()
        if self.accept("keyword", "BETWEEN"):
            low = self.literal()
            self.expect("keyword", "AND")
            high = self.literal()
            return Between(column, low, high)
        if self.accept("keyword", "IN"):
            self.expect("punct", "(")
            values = [self.literal()]
            while self.accept("punct", ","):
                values.append(self.literal())
            self.expect("punct", ")")
            return InList(column, tuple(values))
        if self.accept("keyword", "LIKE"):
            token = self.next()
            if token.kind != "string":
                raise SqlSyntaxError("LIKE expects a string pattern")
            return Like(column, token.value)
        token = self.next()
        if token.kind != "op":
            raise SqlSyntaxError(
                f"expected an operator after {column!r}, got {token.value!r}"
            )
        return Comparison(column, token.value, self.literal())


def parse(text: str) -> Statement:
    """Parse one SQL statement; raises :class:`SqlSyntaxError` on error."""
    return _Parser(text).statement()
