"""Client-side database access over the simulated network.

This is the raw building block both access models share. The API-based
baseline opens a fresh connection per request (handshake + auth every
time); the broker keeps a :class:`DatabaseConnection` open and reuses it.

Usage inside a process generator::

    conn = yield from DatabaseClient.connect(sim, node, server_address)
    rows = yield from conn.query("SELECT * FROM t WHERE id = 7")
    yield from conn.close()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..errors import ConnectionClosed, ProtocolError, QueryError
from ..net.address import Address
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation

__all__ = ["DatabaseClient", "DatabaseConnection", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """Rows returned by one query, plus the server's work accounting."""

    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]
    stats: Dict[str, Any]

    def __len__(self) -> int:
        return len(self.rows)


class DatabaseConnection:
    """An established, authenticated connection to a database server."""

    def __init__(self, sim: Simulation, stream: StreamConnection) -> None:
        self.sim = sim
        self._stream = stream

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def query(self, sql: str):
        """Run *sql*; a ``yield from`` generator returning :class:`QueryResult`."""
        self._stream.send(("query", sql))
        envelope = yield self._stream.recv()
        reply = envelope.payload
        if reply[0] == "ok":
            return QueryResult(columns=reply[1], rows=reply[2], stats=reply[3])
        if reply[0] == "error":
            raise QueryError(reply[1])
        raise ProtocolError(f"unexpected reply: {reply!r}")

    def close(self):
        """Orderly shutdown; a ``yield from`` generator."""
        if not self._stream.closed:
            self._stream.send(("close",))
            self._stream.close()
        return
        yield  # pragma: no cover - makes this a generator


class DatabaseClient:
    """Factory for :class:`DatabaseConnection`."""

    @staticmethod
    def connect(sim: Simulation, node: Node, address: Address, client_name: str = ""):
        """Connect and authenticate; ``yield from`` this generator.

        Costs one TCP handshake round trip plus one authentication round
        trip — the setup cost the API-based model pays per request and
        the broker amortizes over a persistent connection.
        """
        stream = yield from node.connect_stream(address)
        stream.send(("hello", client_name or node.name))
        envelope = yield stream.recv()
        reply = envelope.payload
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            stream.close()
            raise ProtocolError(f"authentication failed: {reply!r}")
        return DatabaseConnection(sim, stream)
