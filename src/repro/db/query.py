"""Query AST for the mini-SQL dialect.

Statements: ``SELECT`` (with ``WHERE``/``ORDER BY``/``LIMIT`` and
``COUNT(*)``), ``INSERT``, ``UPDATE``, ``DELETE``. Predicates form a
small boolean algebra over column/literal comparisons.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Comparison",
    "Between",
    "InList",
    "Like",
    "And",
    "Or",
    "Predicate",
    "SelectStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "Statement",
]

#: Comparison operators and their Python semantics.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """``column OP literal``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"bad comparison operator: {self.op!r}")

    def matches(self, value: Any) -> bool:
        """True if *value* satisfies the comparison (NULL never does)."""
        if value is None:
            return False
        if self.op == "=":
            return value == self.value
        if self.op == "!=":
            return value != self.value
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        return value >= self.value


@dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high`` (inclusive both ends)."""

    column: str
    low: Any
    high: Any

    def matches(self, value: Any) -> bool:
        """True if *value* lies in [low, high]."""
        return value is not None and self.low <= value <= self.high


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: str
    values: Tuple[Any, ...]

    def matches(self, value: Any) -> bool:
        """True if *value* is one of the listed literals."""
        return value in self.values


@dataclass(frozen=True)
class Like:
    """``column LIKE pattern`` with SQL ``%`` and ``_`` wildcards."""

    column: str
    pattern: str

    def _regex(self) -> "re.Pattern[str]":
        parts = []
        for ch in self.pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)

    @property
    def prefix(self) -> Optional[str]:
        """Literal prefix before the first wildcard (None if empty)."""
        cut = len(self.pattern)
        for wildcard in ("%", "_"):
            pos = self.pattern.find(wildcard)
            if pos != -1:
                cut = min(cut, pos)
        return self.pattern[:cut] or None

    def matches(self, value: Any) -> bool:
        """True if the string *value* matches the LIKE pattern."""
        return isinstance(value, str) and bool(self._regex().match(value))


@dataclass(frozen=True)
class And:
    """Conjunction of predicates."""

    parts: Tuple["Predicate", ...]


@dataclass(frozen=True)
class Or:
    """Disjunction of predicates."""

    parts: Tuple["Predicate", ...]


Predicate = Union[Comparison, Between, InList, Like, And, Or]


#: An aggregate item in a select list: (function, column). ``COUNT`` may
#: take ``None`` for ``COUNT(*)``.
Aggregate = Tuple[str, Union[str, None]]

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def aggregate_label(aggregate: Aggregate) -> str:
    """The output column name of an aggregate: ``count``, ``sum_price``, ..."""
    function, column = aggregate
    if column is None:
        return function.lower()
    return f"{function.lower()}_{column}"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed ``SELECT``.

    ``columns`` and ``aggregates`` together form the select list; with a
    ``group_by`` column, plain columns must name the grouping column.
    """

    table: str
    columns: Tuple[str, ...]  # empty tuple means '*' (when no aggregates)
    where: Optional[Predicate] = None
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    aggregates: Tuple[Aggregate, ...] = ()
    group_by: Optional[str] = None

    @property
    def count_star(self) -> bool:
        """True for a bare ``SELECT COUNT(*)`` (no grouping)."""
        return (
            self.aggregates == (("COUNT", None),)
            and not self.columns
            and self.group_by is None
        )

    @property
    def is_star(self) -> bool:
        return not self.columns and not self.aggregates


@dataclass(frozen=True)
class InsertStatement:
    """A parsed ``INSERT INTO t (cols) VALUES (...)``."""

    table: str
    columns: Tuple[str, ...]
    values: Tuple[Any, ...]


@dataclass(frozen=True)
class UpdateStatement:
    """A parsed ``UPDATE t SET col = lit [, ...] [WHERE ...]``."""

    table: str
    assignments: Tuple[Tuple[str, Any], ...]
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class DeleteStatement:
    """A parsed ``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Optional[Predicate] = None


Statement = Union[SelectStatement, InsertStatement, UpdateStatement, DeleteStatement]
