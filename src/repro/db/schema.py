"""Table schemas for the mini relational engine.

A schema is an ordered list of typed columns. Types are deliberately
minimal — ``int``, ``float``, ``str`` — which covers everything the
paper's workloads (keyed lookups over a 42,000-record table, movie
schedules, product catalogs) require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple, Type, Union

from ..errors import QueryError, UnknownColumnError

__all__ = ["Column", "Schema", "SqlType"]

SqlType = Union[Type[int], Type[float], Type[str]]

_TYPE_NAMES: Dict[SqlType, str] = {int: "INT", float: "FLOAT", str: "TEXT"}


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    type: SqlType

    def __post_init__(self) -> None:
        if self.type not in _TYPE_NAMES:
            raise QueryError(f"unsupported column type: {self.type!r}")
        if not self.name.isidentifier():
            raise QueryError(f"invalid column name: {self.name!r}")

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES[self.type]

    def coerce(self, value: Any) -> Any:
        """Validate/convert *value* for storage in this column."""
        if value is None:
            return None
        if self.type is float and isinstance(value, int):
            return float(value)
        if not isinstance(value, self.type) or isinstance(value, bool):
            raise QueryError(
                f"column {self.name!r} expects {self.type_name}, got {value!r}"
            )
        return value


class Schema:
    """An ordered collection of :class:`Column` with name lookup."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise QueryError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate column names: {names!r}")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of column *name*; raises :class:`UnknownColumnError`."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(
                f"unknown column {name!r}; have {self.column_names!r}"
            ) from None

    def column(self, name: str) -> Column:
        """The :class:`Column` called *name*."""
        return self.columns[self.index_of(name)]

    def coerce_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate a full row of values against the schema."""
        if len(values) != len(self.columns):
            raise QueryError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        return tuple(col.coerce(v) for col, v in zip(self.columns, values))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type_name}" for c in self.columns)
        return f"<Schema {cols}>"
