"""Materialized views: precomputed answers for hot query shapes.

The §V.A workload's hot query — ``SELECT COUNT(*) FROM records WHERE
grp = k`` — rescans (or re-probes) the base table for every request.
A :class:`MaterializedView` computes the *grouped* form of that shape
once (``SELECT grp, COUNT(*) FROM records GROUP BY grp``) and then
answers each keyed aggregate with a single dictionary probe, following
the ``materialized-views-pattern`` named in the roadmap.

Invalidation is hooked into the write path: a
:class:`ViewCatalog` installed on a :class:`~repro.db.engine.Database`
intercepts every statement — writes against a view's base table mark
the view *dirty*, and the next read that the view can answer triggers a
lazy refresh (one base-table recompute, amortized over every read until
the next write). Reads the view cannot answer fall through to the
normal executor untouched, so installing a catalog with no matching
views changes nothing.

The served :class:`~repro.db.executor.ResultSet` carries
``plan="view:<name>"`` and a one-row ``rows_examined``, so the database
server's cost model naturally charges a view probe far less than a
table scan — that cost difference *is* the optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import QueryError
from ..metrics import MetricsRegistry
from .engine import Database
from .executor import ExecutionStats, ResultSet, execute_statement
from .parser import parse
from .query import (
    Comparison,
    DeleteStatement,
    InList,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    aggregate_label,
)

__all__ = ["MaterializedView", "ViewCatalog"]

_WRITE_STATEMENTS = (InsertStatement, UpdateStatement, DeleteStatement)


class MaterializedView:
    """One precomputed grouped aggregate over a base table.

    Parameters
    ----------
    name:
        Identifier; appears in the served plan as ``view:<name>``.
    database:
        The database holding the base table.
    definition:
        SQL (or parsed statement) of the form
        ``SELECT <group_col>, <aggregates...> FROM <table> GROUP BY
        <group_col>`` — a plain grouped aggregate with no WHERE, ORDER
        BY, or LIMIT.
    """

    def __init__(
        self,
        name: str,
        database: Database,
        definition: Union[str, SelectStatement],
    ) -> None:
        stmt = parse(definition) if isinstance(definition, str) else definition
        if not isinstance(stmt, SelectStatement):
            raise QueryError(f"view {name!r}: definition must be a SELECT")
        if stmt.group_by is None or not stmt.aggregates:
            raise QueryError(
                f"view {name!r}: definition must be a grouped aggregate "
                f"(SELECT <col>, <agg...> FROM t GROUP BY <col>)"
            )
        if stmt.where is not None or stmt.order_by is not None or stmt.limit:
            raise QueryError(
                f"view {name!r}: definition must not filter, order, or limit"
            )
        if stmt.columns != (stmt.group_by,):
            raise QueryError(
                f"view {name!r}: definition must select its grouping column"
            )
        self.name = name
        self.database = database
        self.definition = stmt
        self.table = stmt.table
        self.group_by = stmt.group_by
        self.aggregates = stmt.aggregates
        self._labels: Tuple[str, ...] = tuple(
            aggregate_label(agg) for agg in self.aggregates
        )
        self._index: Dict[object, Tuple] = {}
        self.dirty = True
        self.refreshes = 0

    def refresh(self) -> None:
        """Recompute the view from the base table (clears ``dirty``)."""
        result = execute_statement(
            self.database.table(self.table), self.definition
        )
        # Definition output: the group key first, then the aggregates in
        # select-list order (see the executor's aggregate layout).
        self._index = {row[0]: tuple(row[1:]) for row in result.rows}
        self.dirty = False
        self.refreshes += 1

    def note_write(self) -> None:
        """Mark the view stale; the next served read refreshes first."""
        self.dirty = True

    def _empty_group_row(self) -> Tuple:
        # Aggregates over an empty group: COUNT is 0, the rest NULL.
        return tuple(
            0 if function == "COUNT" else None
            for function, _column in self.aggregates
        )

    def answer(self, stmt: SelectStatement) -> Optional[ResultSet]:
        """Serve *stmt* from the view, or ``None`` if it doesn't match.

        Matching shapes, given a definition grouped on ``g``:

        * ``SELECT <same aggregates> FROM t WHERE g = k`` — one probe;
        * ``SELECT g, <same aggregates> FROM t WHERE g IN (...) GROUP
          BY g`` — one probe per listed key;
        * the definition itself (full grouped read) — the whole index.
        """
        if stmt.table != self.table or stmt.aggregates != self.aggregates:
            return None
        if stmt.order_by is not None or stmt.limit is not None:
            return None

        probes = self._match_probes(stmt)
        if probes is None:
            return None
        if self.dirty:
            self.refresh()

        keyed, keys = probes
        rows: List[Tuple] = []
        if keys is None:  # full grouped read
            for key in sorted(self._index):
                rows.append((key,) + self._index[key])
            examined = len(rows)
        else:
            for key in keys:
                value = self._index.get(key)
                if keyed:
                    if value is not None:
                        rows.append((key,) + value)
                else:
                    rows.append(
                        value if value is not None else self._empty_group_row()
                    )
            examined = len(keys)
        columns = ((self.group_by,) if keyed else ()) + self._labels
        return ResultSet(
            columns=columns,
            rows=tuple(rows),
            stats=ExecutionStats(
                plan=f"view:{self.name}",
                rows_examined=examined,
                rows_matched=len(rows),
                rows_returned=len(rows),
            ),
        )

    def _match_probes(self, stmt: SelectStatement):
        """``(keyed, keys)`` for an answerable *stmt*, else ``None``.

        ``keys=None`` means the full grouped read; ``keyed`` says
        whether the group column appears in the output.
        """
        if stmt.group_by is None:
            # Keyed lookup: SELECT <aggs> FROM t WHERE g = k.
            if stmt.columns:
                return None
            where = stmt.where
            if (
                isinstance(where, Comparison)
                and where.op == "="
                and where.column == self.group_by
            ):
                return (False, (where.value,))
            if isinstance(where, InList) and where.column == self.group_by:
                return (False, tuple(where.values))
            return None
        # Grouped form: must group on the view's key and select it.
        if stmt.group_by != self.group_by:
            return None
        if stmt.columns not in ((), (self.group_by,)):
            return None
        keyed = bool(stmt.columns)
        if stmt.where is None:
            return (keyed, None)
        if isinstance(stmt.where, InList) and stmt.where.column == self.group_by:
            return (keyed, tuple(stmt.where.values))
        if (
            isinstance(stmt.where, Comparison)
            and stmt.where.op == "="
            and stmt.where.column == self.group_by
        ):
            return (keyed, (stmt.where.value,))
        return None

    def __repr__(self) -> str:
        return (
            f"<MaterializedView {self.name!r} on {self.table!r} "
            f"groups={len(self._index)} dirty={self.dirty}>"
        )


class ViewCatalog:
    """The set of materialized views installed on one database.

    Install with :meth:`Database.install_views`; the database then
    routes every statement through :meth:`intercept` — writes
    invalidate, answerable reads are served, everything else falls
    through to the executor.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._by_table: Dict[str, List[MaterializedView]] = {}
        self._h_hits = self.metrics.handle("db.view.hits")
        self._h_invalidations = self.metrics.handle("db.view.invalidations")

    @property
    def views(self) -> List[MaterializedView]:
        """Every registered view, in registration order."""
        return [v for views in self._by_table.values() for v in views]

    def create(
        self,
        name: str,
        database: Database,
        definition: Union[str, SelectStatement],
    ) -> MaterializedView:
        """Define, register, and return a view over *database*."""
        view = MaterializedView(name, database, definition)
        self._by_table.setdefault(view.table, []).append(view)
        return view

    def intercept(
        self, database: Database, stmt: Statement
    ) -> Optional[ResultSet]:
        """Apply the catalog to *stmt*; a ResultSet if a view served it.

        Write statements mark every view on their base table dirty and
        return ``None`` (the write still executes normally). Reads
        return the first matching view's answer, or ``None`` to fall
        through.
        """
        views = self._by_table.get(stmt.table)
        if not views:
            return None
        if isinstance(stmt, _WRITE_STATEMENTS):
            for view in views:
                if not view.dirty:
                    view.note_write()
                    self._h_invalidations.inc()
            return None
        if isinstance(stmt, SelectStatement):
            for view in views:
                result = view.answer(stmt)
                if result is not None:
                    self._h_hits.inc()
                    return result
        return None

    def __repr__(self) -> str:
        return f"<ViewCatalog views={[v.name for v in self.views]}>"
