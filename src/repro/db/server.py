"""The networked database server.

Speaks a simple framed protocol over a stream connection:

* client → ``("hello", client_name)`` — authentication round trip
* server → ``("welcome", server_name)``
* client → ``("query", sql)``
* server → ``("ok", columns, rows, stats_dict)`` or ``("error", message)``
* client → ``("close",)``

Queries contend for a bounded worker pool (``max_workers``), which is
what makes an under-provisioned backend the bottleneck of the whole
request path — the paper's "hot spot" scenario.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConnectionClosed, ProtocolError, QueryError
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from ..sim.resources import Resource
from .cost import CostModel
from .engine import Database

__all__ = ["DatabaseServer"]

#: Default database server port (MySQL's).
DEFAULT_PORT = 3306


class DatabaseServer:
    """Serves a :class:`Database` over the simulated network.

    Parameters
    ----------
    sim, node:
        Simulation and the host to bind on.
    database:
        The engine instance to serve.
    port:
        Listening port (default 3306).
    max_workers:
        Number of queries processed concurrently; further queries queue.
    cost_model:
        Converts executed work into virtual service time.
    auth_time:
        Server-side processing time for the authentication handshake.
    """

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        database: Database,
        port: int = DEFAULT_PORT,
        max_workers: int = 8,
        cost_model: Optional[CostModel] = None,
        auth_time: float = 0.002,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.database = database
        self.cost_model = cost_model or CostModel()
        self.auth_time = auth_time
        self.metrics = metrics or MetricsRegistry()
        self.workers = Resource(sim, max_workers)
        self.listener = node.listen_stream(port)
        self.address = node.address(port)
        self._accept_process = sim.process(self._accept_loop(), name=f"db:{node.name}")

    @property
    def active_queries(self) -> int:
        """Queries currently holding a worker."""
        return self.workers.in_use

    @property
    def queued_queries(self) -> int:
        """Queries waiting for a worker."""
        return self.workers.queued

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.metrics.increment("db.connections")
            self.sim.process(self._session(connection))

    def _session(self, connection: StreamConnection):
        try:
            envelope = yield connection.recv()
        except ConnectionClosed:
            return
        message = envelope.payload
        if not (isinstance(message, tuple) and message and message[0] == "hello"):
            connection.send(("error", "expected hello"))
            connection.close()
            return
        yield self.auth_time
        connection.send(("welcome", self.database.name))

        while True:
            try:
                envelope = yield connection.recv()
            except ConnectionClosed:
                return
            message = envelope.payload
            if not isinstance(message, tuple) or not message:
                connection.send(("error", f"malformed message: {message!r}"))
                continue
            if message[0] == "close":
                connection.close()
                return
            if message[0] != "query" or len(message) != 2:
                connection.send(("error", f"unknown command: {message[0]!r}"))
                continue
            yield from self._serve_query(connection, message[1])

    def _serve_query(self, connection: StreamConnection, sql: str):
        request = self.workers.request()
        yield request
        self.metrics.increment("db.queries")
        try:
            try:
                result = self.database.execute(sql)
            except QueryError as exc:
                yield self.cost_model.base
                self.metrics.increment("db.errors")
                if not connection.closed:
                    connection.send(("error", str(exc)))
                return
            service_time = self.cost_model.service_time(result.stats)
            yield service_time
            self.metrics.observe("db.service_time", service_time)
            self.metrics.increment("db.rows_examined", result.stats.rows_examined)
            if not connection.closed:
                connection.send(
                    ("ok", result.columns, result.rows, result.stats.to_dict())
                )
        finally:
            self.workers.release(request)

    def close(self) -> None:
        """Stop accepting new connections."""
        self.listener.close()

    def __repr__(self) -> str:
        return f"<DatabaseServer {self.address} active={self.active_queries}>"
