"""Statement execution over :class:`Table` storage.

Execution returns both the result rows and an :class:`ExecutionStats`
describing the work done (rows examined, plan used); the database server
converts that work into simulated service time via the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import QueryError, UnknownColumnError
from .index import HashIndex, SortedIndex
from .planner import AccessPath, plan_access
from .query import (
    And,
    Between,
    Comparison,
    DeleteStatement,
    InList,
    InsertStatement,
    Like,
    Or,
    Predicate,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .table import Row, Table

__all__ = ["ExecutionStats", "ResultSet", "execute_statement", "evaluate_predicate"]


@dataclass(frozen=True)
class ExecutionStats:
    """Work accounting for one executed statement."""

    plan: str
    rows_examined: int
    rows_matched: int
    rows_returned: int
    rows_written: int = 0
    sorted_rows: int = 0

    def to_dict(self) -> dict:
        """A plain-dict form (what the server sends over the wire)."""
        return {
            "plan": self.plan,
            "rows_examined": self.rows_examined,
            "rows_matched": self.rows_matched,
            "rows_returned": self.rows_returned,
            "rows_written": self.rows_written,
            "sorted_rows": self.sorted_rows,
        }


@dataclass(frozen=True)
class ResultSet:
    """Rows plus metadata returned by :func:`execute_statement`."""

    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]
    stats: ExecutionStats

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise QueryError("scalar() requires exactly one row and column")
        return self.rows[0][0]


def evaluate_predicate(table: Table, predicate: Predicate, row: Row) -> bool:
    """True if *row* satisfies *predicate*."""
    if isinstance(predicate, And):
        return all(evaluate_predicate(table, p, row) for p in predicate.parts)
    if isinstance(predicate, Or):
        return any(evaluate_predicate(table, p, row) for p in predicate.parts)
    if isinstance(predicate, (Comparison, Between, InList, Like)):
        value = table.value(row, predicate.column)
        try:
            return predicate.matches(value)
        except TypeError as exc:
            raise QueryError(
                f"type mismatch comparing column {predicate.column!r}: {exc}"
            ) from exc
    raise QueryError(f"unsupported predicate: {predicate!r}")


def _candidate_ids(table: Table, path: AccessPath) -> Tuple[List[int], int]:
    """Row ids selected by the access path, plus rows-examined count."""
    if path.kind == "scan":
        ids = [row_id for row_id, _ in table.scan()]
        return ids, len(ids)
    index = table.indexes[path.column]  # type: ignore[index]
    if path.kind in ("hash-eq", "sorted-eq"):
        ids = index.lookup(path.equals)
    elif path.kind in ("range", "prefix-range"):
        assert isinstance(index, SortedIndex)
        ids = index.range(
            low=path.low,
            high=path.high,
            low_open=path.low_open,
            high_open=path.high_open,
        )
    elif path.kind == "in-list":
        seen: List[int] = []
        for value in path.values or ():
            seen.extend(index.lookup(value))
        ids = sorted(set(seen))
    else:  # pragma: no cover - planner only emits the kinds above
        raise QueryError(f"unknown access path kind: {path.kind!r}")
    return ids, len(ids)


def _match_rows(
    table: Table, where: Optional[Predicate]
) -> Tuple[List[Tuple[int, Row]], str, int]:
    """Rows matching *where*, with plan name and rows-examined count."""
    path = plan_access(table, where)
    ids, examined = _candidate_ids(table, path)
    matched: List[Tuple[int, Row]] = []
    for row_id in ids:
        row = table.get(row_id)
        if row is None:
            continue
        if path.residual is None or evaluate_predicate(table, path.residual, row):
            matched.append((row_id, row))
    return matched, path.kind, examined


def _project(
    table: Table, rows: Sequence[Row], columns: Tuple[str, ...]
) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    if not columns:
        return tuple(table.schema.column_names), [tuple(r) for r in rows]
    positions = [table.schema.index_of(c) for c in columns]
    return tuple(columns), [tuple(r[p] for p in positions) for r in rows]


def _aggregate_value(
    table: Table, function: str, column: Optional[str], rows: Sequence[Row]
) -> Any:
    """Evaluate one aggregate over *rows*."""
    if function == "COUNT":
        if column is None:
            return len(rows)
        position = table.schema.index_of(column)
        return sum(1 for row in rows if row[position] is not None)
    position = table.schema.index_of(column)  # type: ignore[arg-type]
    if function in ("SUM", "AVG") and table.schema.columns[position].type is str:
        raise QueryError(f"{function}({column}) needs a numeric column")
    values = [row[position] for row in rows if row[position] is not None]
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "AVG":
        return sum(values) / len(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    raise QueryError(f"unknown aggregate function {function!r}")


def _execute_aggregate_select(
    table: Table,
    stmt: SelectStatement,
    rows: List[Row],
    plan: str,
    examined: int,
) -> ResultSet:
    """SELECT with aggregates, optionally grouped.

    Output columns: the grouping column first (when selected), then the
    aggregates in select-list order, labelled ``count``, ``sum_price``,
    and so on (see :func:`repro.db.query.aggregate_label`).
    """
    from .query import aggregate_label

    for _function, column in stmt.aggregates:
        if column is not None:
            table.schema.index_of(column)  # validate before computing

    output_columns: List[str] = list(stmt.columns)
    output_columns.extend(aggregate_label(agg) for agg in stmt.aggregates)

    if stmt.group_by is None:
        record = tuple(
            _aggregate_value(table, function, column, rows)
            for function, column in stmt.aggregates
        )
        output_rows = [record]
    else:
        position = table.schema.index_of(stmt.group_by)
        groups: dict = {}
        for row in rows:
            groups.setdefault(row[position], []).append(row)
        output_rows = []
        for key in sorted(groups):
            record_parts: List[Any] = []
            if stmt.columns:
                record_parts.append(key)
            record_parts.extend(
                _aggregate_value(table, function, column, groups[key])
                for function, column in stmt.aggregates
            )
            output_rows.append(tuple(record_parts))

    sorted_rows = 0
    if stmt.order_by is not None:
        if stmt.order_by not in output_columns:
            raise QueryError(
                f"ORDER BY {stmt.order_by!r} must name an output column "
                f"of the aggregate query: {output_columns!r}"
            )
        order_position = output_columns.index(stmt.order_by)
        output_rows.sort(key=lambda r: r[order_position], reverse=stmt.descending)
        sorted_rows = len(output_rows)
    if stmt.limit is not None:
        output_rows = output_rows[: stmt.limit]
    return ResultSet(
        columns=tuple(output_columns),
        rows=tuple(output_rows),
        stats=ExecutionStats(
            plan, examined, len(rows), len(output_rows), 0, sorted_rows
        ),
    )


def execute_select(table: Table, stmt: SelectStatement) -> ResultSet:
    matched, plan, examined = _match_rows(table, stmt.where)
    rows = [row for _, row in matched]
    if stmt.aggregates:
        return _execute_aggregate_select(table, stmt, rows, plan, examined)
    sorted_rows = 0
    if stmt.order_by is not None:
        position = table.schema.index_of(stmt.order_by)
        rows.sort(key=lambda r: r[position], reverse=stmt.descending)
        sorted_rows = len(rows)
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    columns, projected = _project(table, rows, stmt.columns)
    return ResultSet(
        columns=columns,
        rows=tuple(projected),
        stats=ExecutionStats(
            plan, examined, len(matched), len(projected), 0, sorted_rows
        ),
    )


def execute_insert(table: Table, stmt: InsertStatement) -> ResultSet:
    values = dict(zip(stmt.columns, stmt.values))
    for column in stmt.columns:
        table.schema.index_of(column)  # validate names before writing
    table.insert(values)
    return ResultSet(
        columns=(),
        rows=(),
        stats=ExecutionStats("insert", 0, 0, 0, rows_written=1),
    )


def execute_update(table: Table, stmt: UpdateStatement) -> ResultSet:
    matched, plan, examined = _match_rows(table, stmt.where)
    changes = dict(stmt.assignments)
    for row_id, _ in matched:
        table.update(row_id, changes)
    return ResultSet(
        columns=(),
        rows=(),
        stats=ExecutionStats(plan, examined, len(matched), 0, len(matched)),
    )


def execute_delete(table: Table, stmt: DeleteStatement) -> ResultSet:
    matched, plan, examined = _match_rows(table, stmt.where)
    for row_id, _ in matched:
        table.delete(row_id)
    return ResultSet(
        columns=(),
        rows=(),
        stats=ExecutionStats(plan, examined, len(matched), 0, len(matched)),
    )


def execute_statement(table: Table, stmt: Statement) -> ResultSet:
    """Dispatch *stmt* to the right executor for *table*."""
    if isinstance(stmt, SelectStatement):
        return execute_select(table, stmt)
    if isinstance(stmt, InsertStatement):
        return execute_insert(table, stmt)
    if isinstance(stmt, UpdateStatement):
        return execute_update(table, stmt)
    if isinstance(stmt, DeleteStatement):
        return execute_delete(table, stmt)
    raise QueryError(f"unsupported statement: {stmt!r}")
