"""Secondary indexes: hash (equality) and sorted (range).

Indexes map column values to row ids. The planner prefers a hash index
for equality predicates and a sorted index for ranges; both support the
other's lookups where meaningful (a sorted index also answers equality).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """value → set of row ids; O(1) equality lookup."""

    kind = "hash"

    def __init__(self, column: str) -> None:
        self.column = column
        self._map: Dict[Any, Set[int]] = defaultdict(set)

    def insert(self, value: Any, row_id: int) -> None:
        """Index *row_id* under *value*."""
        self._map[value].add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        """Drop the (value, row id) pair if present."""
        ids = self._map.get(value)
        if ids is not None:
            ids.discard(row_id)
            if not ids:
                del self._map[value]

    def lookup(self, value: Any) -> List[int]:
        """Row ids with exactly *value* in the indexed column."""
        return sorted(self._map.get(value, ()))

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._map.values())

    def distinct_values(self) -> int:
        """Number of distinct indexed values."""
        return len(self._map)


class SortedIndex:
    """Sorted (value, row id) pairs; O(log n) range lookup.

    Inserts keep the list sorted via ``bisect.insort`` — O(n) per insert,
    which is fine for bulk-load-then-query workloads; tables built row by
    row should create the index after loading.
    """

    kind = "sorted"

    def __init__(self, column: str) -> None:
        self.column = column
        self._entries: List[Tuple[Any, int]] = []

    def insert(self, value: Any, row_id: int) -> None:
        """Insert keeping the entries sorted (O(n))."""
        bisect.insort(self._entries, (value, row_id))

    def remove(self, value: Any, row_id: int) -> None:
        """Drop the (value, row id) pair if present."""
        pos = bisect.bisect_left(self._entries, (value, row_id))
        if pos < len(self._entries) and self._entries[pos] == (value, row_id):
            del self._entries[pos]

    def bulk_load(self, pairs: Iterable[Tuple[Any, int]]) -> None:
        """Replace contents with *pairs* (sorted once; O(n log n))."""
        self._entries = sorted(pairs)

    def lookup(self, value: Any) -> List[int]:
        """Row ids with exactly *value*."""
        return self.range(low=value, high=value, low_open=False, high_open=False)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        low_open: bool = False,
        high_open: bool = False,
    ) -> List[int]:
        """Row ids whose value lies in the given (half-)open interval."""
        entries = self._entries
        if low is None:
            start = 0
        elif low_open:
            start = bisect.bisect_right(entries, (low, float("inf")))
        else:
            start = bisect.bisect_left(entries, (low, -1))
        if high is None:
            stop = len(entries)
        elif high_open:
            stop = bisect.bisect_left(entries, (high, -1))
        else:
            stop = bisect.bisect_right(entries, (high, float("inf")))
        return [row_id for _, row_id in entries[start:stop]]

    def __len__(self) -> int:
        return len(self._entries)
