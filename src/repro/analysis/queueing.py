"""Closed-form queueing results used to validate the simulator.

The reproduction's credibility rests on the DES kernel producing correct
queueing behaviour, so this module provides the classical results —
M/M/1, M/M/c (Erlang C), and exact single-station closed-network MVA —
and the test suite checks simulated systems against them within tight
tolerances (``tests/analysis/test_queueing_validation.py``).

These are also handy for sizing experiments analytically, e.g. the
EXPERIMENTS.md calibration note derives the QoS-testbed admission
fractions from the closed-loop throughput bound computed here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

__all__ = [
    "QueueMetrics",
    "mm1_metrics",
    "mmc_metrics",
    "erlang_c",
    "ClosedLoopMetrics",
    "mva_single_station",
]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of an open queueing station."""

    utilization: float
    mean_wait: float          # time in queue, excluding service
    mean_response: float      # queue + service
    mean_queue_length: float  # jobs waiting, excluding in service
    mean_jobs: float          # total jobs at the station


def mm1_metrics(arrival_rate: float, service_rate: float) -> QueueMetrics:
    """M/M/1 steady state; requires utilization < 1."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    mean_response = 1.0 / (service_rate - arrival_rate)
    mean_wait = mean_response - 1.0 / service_rate
    return QueueMetrics(
        utilization=rho,
        mean_wait=mean_wait,
        mean_response=mean_response,
        mean_queue_length=arrival_rate * mean_wait,
        mean_jobs=arrival_rate * mean_response,
    )


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """P(wait > 0) for an M/M/c queue (the Erlang C formula)."""
    if servers < 1:
        raise ValueError(f"servers must be >= 1: {servers!r}")
    offered = arrival_rate / service_rate  # in Erlangs
    rho = offered / servers
    if rho >= 1:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    # Sum_{k<c} a^k/k!  and the c-term, computed iteratively for stability.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered / k
        total += term
    term *= offered / servers
    c_term = term / (1.0 - rho)
    return c_term / (total + c_term)


def mmc_metrics(arrival_rate: float, service_rate: float, servers: int) -> QueueMetrics:
    """M/M/c steady state; requires utilization < 1."""
    probability_wait = erlang_c(arrival_rate, service_rate, servers)
    rho = arrival_rate / (servers * service_rate)
    mean_wait = probability_wait / (servers * service_rate - arrival_rate)
    mean_response = mean_wait + 1.0 / service_rate
    return QueueMetrics(
        utilization=rho,
        mean_wait=mean_wait,
        mean_response=mean_response,
        mean_queue_length=arrival_rate * mean_wait,
        mean_jobs=arrival_rate * mean_response,
    )


@dataclass(frozen=True)
class ClosedLoopMetrics:
    """Steady state of a closed interactive system (N clients, think Z)."""

    clients: int
    throughput: float
    mean_response: float
    mean_queue_length: float


def mva_single_station(
    clients: int, service_demand: float, think_time: float
) -> ClosedLoopMetrics:
    """Exact Mean Value Analysis for one single-server station.

    N closed-loop clients cycle: think ``think_time``, then need
    ``service_demand`` seconds at a single-server FCFS station. This is
    the structure of a ClosedLoopClient population hammering one
    capacity-1 resource, and the asymptotic bound
    ``X = min(1/D, N/(D+Z))`` the EXPERIMENTS.md calibration uses.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1: {clients!r}")
    if service_demand <= 0 or think_time < 0:
        raise ValueError("service_demand must be > 0 and think_time >= 0")
    queue_length = 0.0
    response = service_demand
    throughput = 0.0
    for n in range(1, clients + 1):
        response = service_demand * (1.0 + queue_length)
        throughput = n / (response + think_time)
        queue_length = throughput * response
    return ClosedLoopMetrics(
        clients=clients,
        throughput=throughput,
        mean_response=response,
        mean_queue_length=queue_length,
    )
