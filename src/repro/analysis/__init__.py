"""Analytical models used to validate and size the simulations."""

from .queueing import (
    ClosedLoopMetrics,
    QueueMetrics,
    erlang_c,
    mm1_metrics,
    mmc_metrics,
    mva_single_station,
)

__all__ = [
    "QueueMetrics",
    "ClosedLoopMetrics",
    "mm1_metrics",
    "mmc_metrics",
    "erlang_c",
    "mva_single_station",
]
