"""Mail service: message store, server, client."""

from .client import MailClient, MailConnection
from .server import MailCostModel, MailServer
from .store import Mailbox, MailMessage, MessageStore

__all__ = [
    "MailClient",
    "MailConnection",
    "MailServer",
    "MailCostModel",
    "Mailbox",
    "MailMessage",
    "MessageStore",
]
