"""The networked mail server (SMTP-like submission, POP-like retrieval).

Protocol over a stream connection:

* client → ``("helo", name)`` / server → ``("hi",)``
* client → ``("send", sender, recipient, subject, body)``
  server → ``("ok", message_id)`` or ``("error", msg)``
* client → ``("list", owner)`` → ``("ok", [ids])``
* client → ``("retr", owner, id)`` → ``("ok", message_dict)``
* client → ``("dele", owner, id)`` → ``("ok",)``
* client → ``("quit",)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConnectionClosed, MailboxError
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from ..sim.resources import Resource
from .store import MessageStore

__all__ = ["MailServer", "MailCostModel"]

#: Default mail port (SMTP's).
DEFAULT_PORT = 25


@dataclass(frozen=True)
class MailCostModel:
    """Service-time model for mail operations."""

    base: float = 0.001
    per_byte_stored: float = 2e-8
    per_message_listed: float = 1e-5
    helo_time: float = 0.001

    def send_time(self, size: int) -> float:
        """Service time to store a *size*-byte message."""
        return self.base + size * self.per_byte_stored

    def list_time(self, count: int) -> float:
        """Service time to list a *count*-message mailbox."""
        return self.base + count * self.per_message_listed

    def retr_time(self, size: int) -> float:
        """Service time to retrieve a *size*-byte message."""
        return self.base + size * self.per_byte_stored


class MailServer:
    """Serves a :class:`MessageStore` over the simulated network."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        store: Optional[MessageStore] = None,
        port: int = DEFAULT_PORT,
        max_workers: int = 8,
        cost_model: Optional[MailCostModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.store = store if store is not None else MessageStore()
        self.cost_model = cost_model or MailCostModel()
        self.metrics = metrics or MetricsRegistry()
        self.workers = Resource(sim, max_workers)
        self.listener = node.listen_stream(port)
        self.address = node.address(port)
        sim.process(self._accept_loop(), name=f"mail:{node.name}")

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.metrics.increment("mail.connections")
            self.sim.process(self._session(connection))

    def _session(self, connection: StreamConnection):
        greeted = False
        while True:
            try:
                envelope = yield connection.recv()
            except ConnectionClosed:
                return
            message = envelope.payload
            if not isinstance(message, tuple) or not message:
                connection.send(("error", f"malformed message: {message!r}"))
                continue
            command = message[0]
            if command == "helo":
                yield self.cost_model.helo_time
                greeted = True
                connection.send(("hi",))
                continue
            if command == "quit":
                connection.close()
                return
            if not greeted:
                connection.send(("error", "helo first"))
                continue
            yield from self._serve(connection, message)

    def _serve(self, connection: StreamConnection, message: tuple):
        request = self.workers.request()
        yield request
        try:
            try:
                reply = yield from self._handle(message)
            except MailboxError as exc:
                self.metrics.increment("mail.errors")
                reply = ("error", str(exc))
            except (TypeError, ValueError) as exc:
                self.metrics.increment("mail.errors")
                reply = ("error", f"malformed {message[0]!r}: {exc}")
            if not connection.closed:
                connection.send(reply)
        finally:
            self.workers.release(request)

    def _handle(self, message: tuple):
        command = message[0]
        if command == "send":
            _, sender, recipient, subject, body = message
            stored = self.store.deliver(sender, recipient, subject, body, self.sim.now)
            yield self.cost_model.send_time(stored.size)
            self.metrics.increment("mail.delivered")
            return ("ok", stored.message_id)
        if command == "list":
            _, owner = message
            mailbox = self.store.mailbox(owner)
            yield self.sim.timeout(self.cost_model.list_time(len(mailbox)))
            return ("ok", mailbox.list_ids())
        if command == "retr":
            _, owner, message_id = message
            stored = self.store.mailbox(owner).get(message_id)
            yield self.cost_model.retr_time(stored.size)
            self.metrics.increment("mail.retrieved")
            return (
                "ok",
                {
                    "message_id": stored.message_id,
                    "sender": stored.sender,
                    "recipient": stored.recipient,
                    "subject": stored.subject,
                    "body": stored.body,
                    "delivered_at": stored.delivered_at,
                },
            )
        if command == "dele":
            _, owner, message_id = message
            self.store.mailbox(owner).delete(message_id)
            yield self.cost_model.base
            return ("ok",)
        return ("error", f"unknown command: {command!r}")

    def close(self) -> None:
        """Stop accepting new connections."""
        self.listener.close()

    def __repr__(self) -> str:
        return f"<MailServer {self.address} mailboxes={len(self.store)}>"
