"""Client-side mail access (the mail API of the baseline model)."""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import MailboxError, ProtocolError
from ..net.address import Address
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation

__all__ = ["MailClient", "MailConnection"]


class MailConnection:
    """An established connection to a mail server."""

    def __init__(self, sim: Simulation, stream: StreamConnection) -> None:
        self.sim = sim
        self._stream = stream

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def _round_trip(self, message: tuple):
        self._stream.send(message)
        envelope = yield self._stream.recv()
        reply = envelope.payload
        if reply and reply[0] == "error":
            raise MailboxError(reply[1])
        if not reply or reply[0] != "ok":
            raise ProtocolError(f"unexpected reply: {reply!r}")
        return reply

    def send(self, sender: str, recipient: str, subject: str, body: str):
        """Submit a message; returns its server-side id."""
        reply = yield from self._round_trip(("send", sender, recipient, subject, body))
        return reply[1]

    def list(self, owner: str):
        """Message ids in *owner*'s mailbox."""
        reply = yield from self._round_trip(("list", owner))
        return list(reply[1])

    def retrieve(self, owner: str, message_id: int):
        """Fetch one message as a dict."""
        reply = yield from self._round_trip(("retr", owner, message_id))
        return dict(reply[1])

    def delete(self, owner: str, message_id: int):
        """Delete one message; a ``yield from`` generator."""
        yield from self._round_trip(("dele", owner, message_id))

    def quit(self):
        """Orderly shutdown; a ``yield from`` generator."""
        if not self._stream.closed:
            self._stream.send(("quit",))
            self._stream.close()
        return
        yield  # pragma: no cover - makes this a generator


class MailClient:
    """Factory for :class:`MailConnection`."""

    @staticmethod
    def connect(sim: Simulation, node: Node, address: Address, name: str = ""):
        """Connect and greet; ``yield from`` this generator."""
        stream = yield from node.connect_stream(address)
        stream.send(("helo", name or node.name))
        envelope = yield stream.recv()
        reply = envelope.payload
        if not (isinstance(reply, tuple) and reply and reply[0] == "hi"):
            stream.close()
            raise ProtocolError(f"greeting failed: {reply!r}")
        return MailConnection(sim, stream)
