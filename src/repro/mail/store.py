"""Mailbox storage for the mail service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import MailboxError

__all__ = ["MailMessage", "Mailbox", "MessageStore"]


@dataclass(frozen=True)
class MailMessage:
    """One stored message."""

    message_id: int
    sender: str
    recipient: str
    subject: str
    body: str
    delivered_at: float

    @property
    def size(self) -> int:
        """Approximate size in bytes (headers + body)."""
        return len(self.sender) + len(self.recipient) + len(self.subject) + len(self.body) + 64


class Mailbox:
    """Messages for one recipient, POP-style (numbered, deletable)."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._messages: Dict[int, MailMessage] = {}

    def deliver(self, message: MailMessage) -> None:
        """File *message* into this mailbox."""
        self._messages[message.message_id] = message

    def list_ids(self) -> List[int]:
        """Message ids, ascending."""
        return sorted(self._messages)

    def get(self, message_id: int) -> MailMessage:
        """The stored message; raises :class:`MailboxError` if absent."""
        message = self._messages.get(message_id)
        if message is None:
            raise MailboxError(f"no message {message_id} in mailbox {self.owner!r}")
        return message

    def delete(self, message_id: int) -> None:
        """Remove a message; raises :class:`MailboxError` if absent."""
        if message_id not in self._messages:
            raise MailboxError(f"no message {message_id} in mailbox {self.owner!r}")
        del self._messages[message_id]

    @property
    def total_size(self) -> int:
        return sum(m.size for m in self._messages.values())

    def __len__(self) -> int:
        return len(self._messages)


class MessageStore:
    """All mailboxes on one mail server."""

    def __init__(self) -> None:
        self._mailboxes: Dict[str, Mailbox] = {}
        self._next_id = 1

    def create_mailbox(self, owner: str) -> Mailbox:
        """Create an empty mailbox for *owner*."""
        if owner in self._mailboxes:
            raise MailboxError(f"mailbox {owner!r} already exists")
        mailbox = Mailbox(owner)
        self._mailboxes[owner] = mailbox
        return mailbox

    def mailbox(self, owner: str) -> Mailbox:
        """The mailbox of *owner*; raises :class:`MailboxError`."""
        mailbox = self._mailboxes.get(owner)
        if mailbox is None:
            raise MailboxError(f"no mailbox {owner!r}")
        return mailbox

    def has_mailbox(self, owner: str) -> bool:
        """True if *owner* has a mailbox."""
        return owner in self._mailboxes

    def deliver(
        self, sender: str, recipient: str, subject: str, body: str, now: float
    ) -> MailMessage:
        """Store a new message for *recipient*; returns it."""
        mailbox = self.mailbox(recipient)
        message = MailMessage(
            message_id=self._next_id,
            sender=sender,
            recipient=recipient,
            subject=subject,
            body=body,
            delivered_at=now,
        )
        self._next_id += 1
        mailbox.deliver(message)
        return message

    def __len__(self) -> int:
        return len(self._mailboxes)
