"""Point-to-point link model: latency, jitter, bandwidth, loss.

The paper distinguishes *tightly coupled* backends (same LAN: sub-ms
latency, no loss) from *loosely coupled* ones (WAN: tens of ms latency,
jitter, possible loss). :meth:`Link.lan` and :meth:`Link.wan` provide
those two archetypes; experiments override the numbers where the paper
pins them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["Link"]


@dataclass(frozen=True, slots=True)
class Link:
    """Transmission characteristics of a (bidirectional) link.

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds.
    jitter:
        Maximum additional uniform random delay in seconds.
    bandwidth:
        Throughput in bytes/second, or ``None`` for unlimited.
    loss:
        Probability that a *datagram* is silently dropped. Stream
        connections are reliable (retransmission is abstracted into
        latency), so loss only applies to datagrams.
    """

    latency: float = 0.0005
    jitter: float = 0.0
    bandwidth: Optional[float] = None
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative latency: {self.latency!r}")
        if self.jitter < 0:
            raise ValueError(f"negative jitter: {self.jitter!r}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth!r}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {self.loss!r}")

    def delay(self, size: int, rng: random.Random) -> float:
        """One-way transfer delay for a *size*-byte message."""
        delay = self.latency
        if self.jitter:
            delay += rng.uniform(0.0, self.jitter)
        if self.bandwidth is not None:
            delay += size / self.bandwidth
        return delay

    def drops(self, rng: random.Random) -> bool:
        """Sample whether a datagram is lost on this link."""
        return self.loss > 0.0 and rng.random() < self.loss

    def degraded(
        self,
        extra_latency: float = 0.0,
        loss: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> "Link":
        """This link during a fault window (see :mod:`repro.net.faults`).

        Adds *extra_latency* seconds of one-way delay and *loss*
        probability of datagram drop, and scales the bandwidth by
        *bandwidth_factor*. Loss saturates just below 1.
        """
        bandwidth = (
            None if self.bandwidth is None else self.bandwidth * bandwidth_factor
        )
        return Link(
            latency=self.latency + extra_latency,
            jitter=self.jitter,
            bandwidth=bandwidth,
            loss=min(0.999999, self.loss + loss),
        )

    @classmethod
    def lan(cls, latency: float = 0.0002, bandwidth: float = 125e6) -> "Link":
        """A same-machine-room link: 0.2 ms, 1 Gb/s, lossless."""
        return cls(latency=latency, jitter=0.0, bandwidth=bandwidth, loss=0.0)

    @classmethod
    def wan(
        cls,
        latency: float = 0.040,
        jitter: float = 0.010,
        bandwidth: float = 1.25e6,
        loss: float = 0.0,
    ) -> "Link":
        """A cross-Internet link: 40 ms ± 10 ms, 10 Mb/s."""
        return cls(latency=latency, jitter=jitter, bandwidth=bandwidth, loss=loss)

    @classmethod
    def loopback(cls) -> "Link":
        """Intra-host IPC: 20 µs, effectively unlimited bandwidth."""
        return cls(latency=0.00002, jitter=0.0, bandwidth=None, loss=0.0)
