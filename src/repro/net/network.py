"""Network topology: named nodes joined by links — and their failures.

A :class:`Network` registers nodes and the links between them, resolves
addresses to bound sockets/listeners, and accounts traffic. A
:class:`Node` is one host: it binds listeners and sockets and opens
stream connections. All broker-side behaviour lives above this layer,
in the :mod:`repro.core` stage pipeline; the network only moves
messages.

The network is also where link faults land (driven by
:class:`~repro.net.faults.FaultInjector`): :meth:`Network.sever_link`
partitions a host pair — established streams crossing it are killed,
new connects raise :class:`NoRouteError`, datagrams vanish — and
:meth:`Network.override_link` swaps in a degraded link (extra latency,
loss, less bandwidth) until cleared. Both are exact inverses of their
restore operations, so a healed network behaves like one that never
failed (apart from the connections lost in between).
"""

from __future__ import annotations

import random
import weakref
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..errors import (
    AddressInUse,
    ConnectionRefused,
    NetworkError,
    NoRouteError,
)
from ..metrics import MetricsRegistry
from ..sim.core import Event, ProcessGenerator, Simulation
from .address import Address
from .link import Link
from .message import HEADER_BYTES, Envelope
from .transport import DatagramSocket, StreamConnection, StreamListener

__all__ = ["Network", "Node"]

#: First ephemeral port handed out by :meth:`Node.ephemeral_port`.
EPHEMERAL_BASE = 49152


class Node:
    """A host in the simulated network."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.sim = network.sim
        self.name = name
        self._bound: Dict[int, Union[StreamListener, DatagramSocket]] = {}
        self._next_ephemeral = EPHEMERAL_BASE

    def address(self, port: int) -> Address:
        """This node's address at *port*."""
        return Address(self.name, port)

    def ephemeral_port(self) -> int:
        """Allocate a fresh client-side port number."""
        while self._next_ephemeral in self._bound:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- binding -------------------------------------------------------

    def listen_stream(self, port: int, backlog: Optional[int] = None) -> StreamListener:
        """Bind a stream listener at *port*."""
        self._check_free(port)
        listener = StreamListener(self, port, backlog=backlog)
        self._bound[port] = listener
        return listener

    def datagram_socket(self, port: Optional[int] = None) -> DatagramSocket:
        """Bind a datagram socket (ephemeral port when none given)."""
        if port is None:
            port = self.ephemeral_port()
        else:
            self._check_free(port)
        socket = DatagramSocket(self, port)
        self._bound[port] = socket
        return socket

    def _check_free(self, port: int) -> None:
        if port in self._bound:
            raise AddressInUse(f"{self.name}:{port} is already bound")

    def _unbind(self, port: int) -> None:
        self._bound.pop(port, None)

    # -- connecting ----------------------------------------------------

    def connect_stream(self, destination: Address) -> ProcessGenerator:
        """Open a stream connection to *destination*.

        A generator for use with ``yield from``; costs one full round
        trip on the connecting path (the TCP handshake the paper's
        API-based baseline pays on every backend access). Raises
        :class:`ConnectionRefused` if nothing listens there.
        """
        network = self.network
        name = self.name
        host = destination.host
        link = network.link_between(name, host)
        rng = network.link_rng(name, host)
        round_trip = link.delay(HEADER_BYTES, rng) + link.delay(HEADER_BYTES, rng)
        yield round_trip

        if network.link_severed(name, host):
            raise NoRouteError(f"link {name!r}<->{host!r} is down")
        target = network.resolve(destination)
        if not isinstance(target, StreamListener) or target.closed:
            raise ConnectionRefused(f"nothing listening at {destination}")

        local_port = self.ephemeral_port()
        client = StreamConnection(network, self, local_port, destination)
        server_node = network.nodes[host]
        server = StreamConnection(
            network, server_node, destination.port, Address(name, local_port)
        )
        client.peer = server
        server.peer = client
        if not target._offer(server):
            raise ConnectionRefused(f"backlog full at {destination}")
        network._register_stream(client)
        network._register_stream(server)
        network._connections.inc()
        return client

    def __repr__(self) -> str:
        return f"<Node {self.name!r} bound={sorted(self._bound)}>"


class Network:
    """The set of nodes and links making up one simulated network.

    Parameters
    ----------
    sim:
        The owning simulation.
    default_link:
        Optional link used for any node pair without an explicit link —
        convenient for all-on-one-LAN testbeds.
    """

    def __init__(
        self, sim: Simulation, default_link: Optional[Link] = None
    ) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self.default_link = default_link
        self.metrics = MetricsRegistry()
        self._loopback = Link.loopback()
        self._severed: set = set()
        self._link_overrides: Dict[FrozenSet[str], Link] = {}
        # Established streams, registered at connect time so sever_link
        # can kill the ones crossing a partitioned pair. Weak refs in
        # insertion order (NOT a WeakSet: its iteration order is
        # id-dependent and would make fault runs nondeterministic),
        # pruned amortizedly once the dead refs pile up.
        self._streams: List["weakref.ref"] = []
        self._stream_prune_at = 4096
        # Hot-path handles and caches: traffic counters and per-direction
        # link RNGs (one f-string + registry lookup per pair, not per
        # message).
        self._messages = self.metrics.handle("net.messages")
        self._bytes = self.metrics.handle("net.bytes")
        self._connections = self.metrics.handle("net.connections")
        self._link_rngs: Dict[Tuple[str, str], random.Random] = {}

    def node(self, name: str) -> Node:
        """Create and register a node named *name*."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = Node(self, name)
        self.nodes[name] = node
        return node

    def connect(self, a: Union[Node, str], b: Union[Node, str], link: Link) -> None:
        """Join nodes *a* and *b* with *link* (bidirectional)."""
        name_a = a.name if isinstance(a, Node) else a
        name_b = b.name if isinstance(b, Node) else b
        for name in (name_a, name_b):
            if name not in self.nodes:
                raise NetworkError(f"unknown node {name!r}")
        self._links[(name_a, name_b)] = link
        self._links[(name_b, name_a)] = link

    def link_between(self, a: str, b: str) -> Link:
        """The link joining hosts *a* and *b* (loopback when a == b).

        A fault-window override installed with :meth:`override_link`
        takes precedence over the configured link.
        """
        if a == b:
            return self._loopback
        if self._link_overrides:
            override = self._link_overrides.get(frozenset((a, b)))
            if override is not None:
                return override
        link = self._links.get((a, b))
        if link is not None:
            return link
        if self.default_link is not None:
            return self.default_link
        raise NoRouteError(f"no link between {a!r} and {b!r}")

    def link_rng(self, a: str, b: str) -> random.Random:
        """The RNG substream used for jitter/loss on the a→b direction.

        The registry returns the same stream object for a name's
        lifetime, so the pair→stream cache is purely a lookup shortcut.
        """
        rng = self._link_rngs.get((a, b))
        if rng is None:
            rng = self.sim.rng(f"net.link.{a}->{b}")
            self._link_rngs[(a, b)] = rng
        return rng

    # -- link faults ---------------------------------------------------

    def link_severed(self, a: str, b: str) -> bool:
        """True while the *a*/*b* pair is partitioned (loopback never is)."""
        return bool(self._severed) and frozenset((a, b)) in self._severed

    def sever_link(self, a: str, b: str) -> None:
        """Partition hosts *a* and *b* (no-op if already severed).

        Established streams crossing the pair are killed on both
        endpoints — like a TCP reset, not an orderly FIN: pending
        receives fail with :class:`~repro.errors.ConnectionClosed`
        immediately, nothing crosses the dead link. New stream connects
        raise :class:`NoRouteError` and datagrams are silently lost
        until :meth:`restore_link`.
        """
        pair = frozenset((a, b))
        if pair in self._severed:
            return
        self._severed.add(pair)
        live: List["weakref.ref"] = []
        for ref in self._streams:
            stream = ref()
            if stream is None or stream.closed:
                continue
            live.append(ref)
            endpoints = frozenset(
                (stream.local_address.host, stream.remote_address.host)
            )
            if endpoints == pair:
                stream.sever()
        self._streams = live
        self.metrics.increment("net.links.severed")

    def restore_link(self, a: str, b: str) -> None:
        """Heal the partition between *a* and *b* (no-op if not severed)."""
        self._severed.discard(frozenset((a, b)))

    def override_link(self, a: str, b: str, link: Link) -> None:
        """Replace the *a*/*b* link with *link* until :meth:`clear_override`."""
        self._link_overrides[frozenset((a, b))] = link

    def clear_override(self, a: str, b: str) -> None:
        """Remove a fault-window link override (no-op if none installed)."""
        self._link_overrides.pop(frozenset((a, b)), None)

    def _register_stream(self, connection: StreamConnection) -> None:
        """Track an established stream for fault-time teardown."""
        self._streams.append(weakref.ref(connection))
        if len(self._streams) >= self._stream_prune_at:
            self._streams = [
                ref for ref in self._streams if ref() is not None
            ]
            self._stream_prune_at = max(4096, 2 * len(self._streams))

    def resolve(self, address: Address) -> Optional[Union[StreamListener, DatagramSocket]]:
        """The listener or socket bound at *address*, if any."""
        node = self.nodes.get(address.host)
        if node is None:
            raise NoRouteError(f"unknown host {address.host!r}")
        return node._bound.get(address.port)

    def account(self, size: int) -> None:
        """Record one message of *size* bytes in the traffic counters."""
        self._messages.value += 1.0
        self._bytes.value += size

    def _deliver_datagram(self, event: Event) -> None:
        envelope: Envelope = event.value
        try:
            target = self.resolve(envelope.destination)
        except NoRouteError:
            return
        if isinstance(target, DatagramSocket):
            target._deliver(envelope)
        # else: no socket bound — datagram silently dropped, like real UDP.

    def __repr__(self) -> str:
        return f"<Network nodes={len(self.nodes)} links={len(self._links) // 2}>"
