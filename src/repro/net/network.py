"""Network topology: named nodes joined by links.

A :class:`Network` registers nodes and the links between them, resolves
addresses to bound sockets/listeners, and accounts traffic. A
:class:`Node` is one host: it binds listeners and sockets and opens
stream connections.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Union

from ..errors import (
    AddressInUse,
    ConnectionRefused,
    NetworkError,
    NoRouteError,
)
from ..metrics import MetricsRegistry
from ..sim.core import Event, ProcessGenerator, Simulation
from .address import Address
from .link import Link
from .message import HEADER_BYTES, Envelope
from .transport import DatagramSocket, StreamConnection, StreamListener

__all__ = ["Network", "Node"]

#: First ephemeral port handed out by :meth:`Node.ephemeral_port`.
EPHEMERAL_BASE = 49152


class Node:
    """A host in the simulated network."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.sim = network.sim
        self.name = name
        self._bound: Dict[int, Union[StreamListener, DatagramSocket]] = {}
        self._next_ephemeral = EPHEMERAL_BASE

    def address(self, port: int) -> Address:
        """This node's address at *port*."""
        return Address(self.name, port)

    def ephemeral_port(self) -> int:
        """Allocate a fresh client-side port number."""
        while self._next_ephemeral in self._bound:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- binding -------------------------------------------------------

    def listen_stream(self, port: int, backlog: Optional[int] = None) -> StreamListener:
        """Bind a stream listener at *port*."""
        self._check_free(port)
        listener = StreamListener(self, port, backlog=backlog)
        self._bound[port] = listener
        return listener

    def datagram_socket(self, port: Optional[int] = None) -> DatagramSocket:
        """Bind a datagram socket (ephemeral port when none given)."""
        if port is None:
            port = self.ephemeral_port()
        else:
            self._check_free(port)
        socket = DatagramSocket(self, port)
        self._bound[port] = socket
        return socket

    def _check_free(self, port: int) -> None:
        if port in self._bound:
            raise AddressInUse(f"{self.name}:{port} is already bound")

    def _unbind(self, port: int) -> None:
        self._bound.pop(port, None)

    # -- connecting ----------------------------------------------------

    def connect_stream(self, destination: Address) -> ProcessGenerator:
        """Open a stream connection to *destination*.

        A generator for use with ``yield from``; costs one full round
        trip on the connecting path (the TCP handshake the paper's
        API-based baseline pays on every backend access). Raises
        :class:`ConnectionRefused` if nothing listens there.
        """
        link = self.network.link_between(self.name, destination.host)
        rng = self.network.link_rng(self.name, destination.host)
        round_trip = link.delay(HEADER_BYTES, rng) + link.delay(HEADER_BYTES, rng)
        yield self.sim.timeout(round_trip)

        target = self.network.resolve(destination)
        if not isinstance(target, StreamListener) or target.closed:
            raise ConnectionRefused(f"nothing listening at {destination}")

        local_port = self.ephemeral_port()
        client = StreamConnection(self.network, self, local_port, destination)
        server_node = self.network.nodes[destination.host]
        server = StreamConnection(
            self.network, server_node, destination.port, Address(self.name, local_port)
        )
        client.peer = server
        server.peer = client
        if not target._offer(server):
            raise ConnectionRefused(f"backlog full at {destination}")
        self.network.metrics.increment("net.connections")
        return client

    def __repr__(self) -> str:
        return f"<Node {self.name!r} bound={sorted(self._bound)}>"


class Network:
    """The set of nodes and links making up one simulated network.

    Parameters
    ----------
    sim:
        The owning simulation.
    default_link:
        Optional link used for any node pair without an explicit link —
        convenient for all-on-one-LAN testbeds.
    """

    def __init__(
        self, sim: Simulation, default_link: Optional[Link] = None
    ) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self.default_link = default_link
        self.metrics = MetricsRegistry()
        self._loopback = Link.loopback()

    def node(self, name: str) -> Node:
        """Create and register a node named *name*."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = Node(self, name)
        self.nodes[name] = node
        return node

    def connect(self, a: Union[Node, str], b: Union[Node, str], link: Link) -> None:
        """Join nodes *a* and *b* with *link* (bidirectional)."""
        name_a = a.name if isinstance(a, Node) else a
        name_b = b.name if isinstance(b, Node) else b
        for name in (name_a, name_b):
            if name not in self.nodes:
                raise NetworkError(f"unknown node {name!r}")
        self._links[(name_a, name_b)] = link
        self._links[(name_b, name_a)] = link

    def link_between(self, a: str, b: str) -> Link:
        """The link joining hosts *a* and *b* (loopback when a == b)."""
        if a == b:
            return self._loopback
        link = self._links.get((a, b))
        if link is not None:
            return link
        if self.default_link is not None:
            return self.default_link
        raise NoRouteError(f"no link between {a!r} and {b!r}")

    def link_rng(self, a: str, b: str) -> random.Random:
        """The RNG substream used for jitter/loss on the a→b direction."""
        return self.sim.rng(f"net.link.{a}->{b}")

    def resolve(self, address: Address) -> Optional[Union[StreamListener, DatagramSocket]]:
        """The listener or socket bound at *address*, if any."""
        node = self.nodes.get(address.host)
        if node is None:
            raise NoRouteError(f"unknown host {address.host!r}")
        return node._bound.get(address.port)

    def account(self, size: int) -> None:
        """Record one message of *size* bytes in the traffic counters."""
        self.metrics.increment("net.messages")
        self.metrics.increment("net.bytes", size)

    def _deliver_datagram(self, event: Event) -> None:
        envelope: Envelope = event.value
        try:
            target = self.resolve(envelope.destination)
        except NoRouteError:
            return
        if isinstance(target, DatagramSocket):
            target._deliver(envelope)
        # else: no socket bound — datagram silently dropped, like real UDP.

    def __repr__(self) -> str:
        return f"<Network nodes={len(self.nodes)} links={len(self._links) // 2}>"
