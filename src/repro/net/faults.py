"""Deterministic fault injection: crash, partition, degrade — on schedule.

The paper's distributed model exists to keep answering "even when the
backend servers are not available" (§III): brokers fall back to cached
results of lower fidelity or a busy indication instead of leaving the
client hanging. Exercising that promise requires faults, and this
module provides them *deterministically*: a :class:`FaultPlan` is a
fixed schedule of fault windows — built by hand or drawn from a named
RNG substream (:meth:`FaultPlan.crash_restart_cycle`) — and a
:class:`FaultInjector` replays it against live servers and links. Runs
with the same seed produce the same outages at the same instants, and a
run with an *empty* plan is byte-identical to one without an injector
at all.

Five fault shapes cover the failure modes the broker pipeline must
absorb (see ``DESIGN.md`` §5 for the fault-to-stage mapping):

* :class:`BackendCrash` — the server process dies (listener unbound,
  live connections severed) and restarts after ``duration``;
* :class:`BrokerCrash` — the *broker* process dies mid-flight and
  restarts after ``duration`` (see :mod:`repro.core.lifecycle` for
  detection and recovery);
* :class:`LinkDown` — a network partition between two hosts: streams
  crossing the link are killed, new connects fail, datagrams vanish;
* :class:`LinkDegrade` — the link stays up but gains latency, loss,
  and/or loses bandwidth;
* :class:`SlowBackend` — the server stays reachable but serves every
  request ``factor`` times slower (overload, GC pauses, a cold cache).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import SimError
from ..metrics import MetricsRegistry
from ..sim.core import Process, Simulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network

__all__ = [
    "BackendCrash",
    "BrokerCrash",
    "LinkDown",
    "LinkDegrade",
    "SlowBackend",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class BackendCrash:
    """One crash/restart window for a named backend target.

    The target (looked up in the injector's target map) must expose
    ``crash()`` and ``restart()`` — :class:`~repro.http.server.BackendWebServer`
    does. While the window is open the process is gone: its listener is
    unbound, its live connections are severed, and new connection
    attempts are refused.
    """

    kind = "backend-crash"

    target: str
    at: float
    duration: float

    def key(self) -> str:
        """The outage-window key this fault's downtime is recorded under."""
        return self.target

    def describe(self) -> str:
        """One human-readable schedule line."""
        return (
            f"{self.kind}: {self.target} down "
            f"[{self.at:.3f}s, {self.at + self.duration:.3f}s)"
        )


@dataclass(frozen=True)
class BrokerCrash:
    """One crash/restart window for a named *broker* target.

    The target (looked up in the injector's target map) must expose
    ``crash()`` and ``restart()`` —
    :class:`~repro.core.broker.ServiceBroker` does. While the window is
    open the broker's UDP port is unbound: requests sent to it vanish
    exactly like datagrams to a dead host, its queue and in-service
    work are lost, and clients survive via timeouts, retries, or a
    replica broker (detection and recovery live in
    :mod:`repro.core.lifecycle`).
    """

    kind = "broker-crash"

    target: str
    at: float
    duration: float

    def key(self) -> str:
        """The outage-window key this fault's downtime is recorded under."""
        return self.target

    def describe(self) -> str:
        """One human-readable schedule line."""
        return (
            f"{self.kind}: {self.target} down "
            f"[{self.at:.3f}s, {self.at + self.duration:.3f}s)"
        )


@dataclass(frozen=True)
class LinkDown:
    """A full partition of the link between hosts *a* and *b*.

    Streams crossing the pair are killed on both endpoints (a TCP reset,
    not an orderly FIN — the peer is unreachable), new stream connects
    raise :class:`~repro.errors.NoRouteError`, and datagrams are lost.
    """

    kind = "link-down"

    a: str
    b: str
    at: float
    duration: float

    def key(self) -> str:
        """The outage-window key this fault's downtime is recorded under."""
        return f"{self.a}<->{self.b}"

    def describe(self) -> str:
        """One human-readable schedule line."""
        return (
            f"{self.kind}: {self.a}<->{self.b} partitioned "
            f"[{self.at:.3f}s, {self.at + self.duration:.3f}s)"
        )


@dataclass(frozen=True)
class LinkDegrade:
    """A lossy/slow window on the link between hosts *a* and *b*.

    The base link is replaced with one adding ``extra_latency`` seconds
    of one-way delay, ``loss`` additional drop probability (datagrams
    only, as in :class:`~repro.net.link.Link`), and bandwidth scaled by
    ``bandwidth_factor``.
    """

    kind = "link-degrade"

    a: str
    b: str
    at: float
    duration: float
    extra_latency: float = 0.0
    loss: float = 0.0
    bandwidth_factor: float = 1.0

    def key(self) -> str:
        """The outage-window key this fault's downtime is recorded under."""
        return f"{self.a}<->{self.b}"

    def describe(self) -> str:
        """One human-readable schedule line."""
        return (
            f"{self.kind}: {self.a}<->{self.b} "
            f"+{self.extra_latency * 1000:.1f}ms loss+{self.loss:.2%} "
            f"bw×{self.bandwidth_factor:g} "
            f"[{self.at:.3f}s, {self.at + self.duration:.3f}s)"
        )


@dataclass(frozen=True)
class SlowBackend:
    """A degraded-service window: the target serves ``factor``× slower.

    The target must expose a ``service_time_scale`` attribute that its
    request handlers honour (the stock
    :class:`~repro.http.server.BackendWebServer` multiplies static
    service times by it; CGI handlers consult it themselves).
    """

    kind = "slow-backend"

    target: str
    at: float
    duration: float
    factor: float = 4.0

    def key(self) -> str:
        """The outage-window key this fault's downtime is recorded under."""
        return self.target

    def describe(self) -> str:
        """One human-readable schedule line."""
        return (
            f"{self.kind}: {self.target} ×{self.factor:g} slower "
            f"[{self.at:.3f}s, {self.at + self.duration:.3f}s)"
        )


class FaultPlan:
    """An immutable-by-convention schedule of fault windows.

    A plan is just a sequence of fault dataclasses ordered however the
    caller likes; the :class:`FaultInjector` runs each window as its own
    process, so overlap is allowed. An empty plan injects nothing and
    perturbs nothing — seed runs stay byte-identical.
    """

    def __init__(self, faults: Sequence[object] = ()) -> None:
        self.faults: List[object] = list(faults)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-op plan (inject nothing)."""
        return cls()

    @classmethod
    def crash_restart_cycle(
        cls,
        target: str,
        mtbf: float,
        mttr: float,
        until: float,
        rng: random.Random,
        first_at: Optional[float] = None,
    ) -> "FaultPlan":
        """A crash/repair schedule with exponential times-to-failure.

        Time-to-failure is drawn from ``Exp(1/mtbf)`` on *rng* (use a
        named simulation substream so the schedule is reproducible and
        independent of the workload's draws); repair time is the fixed
        *mttr*, which keeps the outage windows easy to reason about in
        the availability benchmark. Windows are generated until *until*.
        """
        if mtbf <= 0 or mttr <= 0:
            raise SimError(f"mtbf and mttr must be > 0: {mtbf!r}, {mttr!r}")
        faults: List[object] = []
        at = first_at if first_at is not None else rng.expovariate(1.0 / mtbf)
        while at < until:
            faults.append(BackendCrash(target=target, at=at, duration=mttr))
            at += mttr + rng.expovariate(1.0 / mtbf)
        return cls(faults)

    @classmethod
    def broker_crash_cycle(
        cls,
        target: str,
        mtbf: float,
        mttr: float,
        until: float,
        rng: random.Random,
        first_at: Optional[float] = None,
    ) -> "FaultPlan":
        """:meth:`crash_restart_cycle`, but the windows kill a *broker*.

        Identical schedule generation, emitting :class:`BrokerCrash`
        faults — the chaos harness points these at
        :class:`~repro.core.broker.ServiceBroker` targets.
        """
        plan = cls.crash_restart_cycle(target, mtbf, mttr, until, rng, first_at)
        plan.faults = [
            BrokerCrash(target=fault.target, at=fault.at, duration=fault.duration)
            for fault in plan.faults
        ]
        return plan

    def add(self, fault: object) -> "FaultPlan":
        """Append *fault* and return the plan (for chaining)."""
        self.faults.append(fault)
        return self

    def describe(self) -> List[str]:
        """One schedule line per fault, in plan order."""
        return [fault.describe() for fault in self.faults]

    def __iter__(self) -> Iterator[object]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.faults)} fault(s)>"


class FaultInjector:
    """Replays a :class:`FaultPlan` against live servers and links.

    Parameters
    ----------
    sim:
        The owning simulation.
    plan:
        The fault schedule to replay.
    network:
        Required for link faults; the network whose links are severed
        or degraded.
    targets:
        Name → target object map for backend faults (crash/restart and
        slow-backend windows).
    metrics:
        Registry receiving ``faults.injected`` / ``faults.healed``
        counters.

    :meth:`start` launches one process per fault; nothing happens until
    it is called, and a plan with no faults starts no processes at all.
    The injector records every fault's ``[start, end)`` window under its
    :meth:`key() <BackendCrash.key>`, so experiments can classify each
    request as issued during an outage or during healthy operation
    (:meth:`windows`, :meth:`is_down`).
    """

    def __init__(
        self,
        sim: Simulation,
        plan: FaultPlan,
        network: Optional["Network"] = None,
        targets: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.network = network
        self.targets: Dict[str, object] = dict(targets or {})
        self.metrics = metrics or MetricsRegistry()
        self._windows: Dict[str, List[Tuple[float, float]]] = {}
        self._open: Dict[int, float] = {}
        self._saved_scale: Dict[int, float] = {}
        self._started = False

    def start(self) -> List[Process]:
        """Launch the per-fault processes; returns them (rarely awaited)."""
        if self._started:
            raise SimError("fault injector already started")
        self._started = True
        return [
            self.sim.process(
                self._drive(index, fault),
                name=f"fault:{fault.kind}:{fault.key()}",
            )
            for index, fault in enumerate(self.plan)
        ]

    def _drive(self, index: int, fault: object):
        if fault.at > 0:
            yield fault.at
        self._apply(fault)
        self._open[index] = self.sim.now
        self.metrics.increment("faults.injected")
        self.sim.trace(
            "fault", "inject", kind=fault.kind, key=fault.key(),
            until=self.sim.now + fault.duration,
        )
        yield fault.duration
        self._revert(fault)
        started = self._open.pop(index)
        self._windows.setdefault(fault.key(), []).append((started, self.sim.now))
        self.metrics.increment("faults.healed")
        self.sim.trace("fault", "heal", kind=fault.kind, key=fault.key())

    # -- applying / reverting -------------------------------------------

    def _target(self, name: str) -> object:
        try:
            return self.targets[name]
        except KeyError:
            raise SimError(
                f"fault targets unknown backend {name!r}; "
                f"known: {sorted(self.targets)}"
            ) from None

    def _require_network(self, fault: object) -> "Network":
        if self.network is None:
            raise SimError(
                f"{fault.kind} fault needs a network, but the injector "
                "was built without one"
            )
        return self.network

    def _apply(self, fault: object) -> None:
        if isinstance(fault, (BackendCrash, BrokerCrash)):
            self._target(fault.target).crash()
        elif isinstance(fault, LinkDown):
            self._require_network(fault).sever_link(fault.a, fault.b)
        elif isinstance(fault, LinkDegrade):
            network = self._require_network(fault)
            base = network.link_between(fault.a, fault.b)
            network.override_link(fault.a, fault.b, base.degraded(
                extra_latency=fault.extra_latency,
                loss=fault.loss,
                bandwidth_factor=fault.bandwidth_factor,
            ))
        elif isinstance(fault, SlowBackend):
            target = self._target(fault.target)
            self._saved_scale[id(fault)] = target.service_time_scale
            target.service_time_scale = fault.factor
        else:
            raise SimError(f"unknown fault type {type(fault).__name__!r}")

    def _revert(self, fault: object) -> None:
        if isinstance(fault, (BackendCrash, BrokerCrash)):
            self._target(fault.target).restart()
        elif isinstance(fault, LinkDown):
            self._require_network(fault).restore_link(fault.a, fault.b)
        elif isinstance(fault, LinkDegrade):
            self._require_network(fault).clear_override(fault.a, fault.b)
        elif isinstance(fault, SlowBackend):
            target = self._target(fault.target)
            target.service_time_scale = self._saved_scale.pop(id(fault))

    # -- outage-window inspection ---------------------------------------

    def windows(self, key: str) -> List[Tuple[float, float]]:
        """Completed ``[start, end)`` outage windows recorded under *key*.

        A window still open at the time of the call is reported as
        ``[start, sim.now)``.
        """
        closed = list(self._windows.get(key, ()))
        for index, started in self._open.items():
            if self.plan.faults[index].key() == key:
                closed.append((started, self.sim.now))
        closed.sort()
        return closed

    def is_down(self, key: str, at: float) -> bool:
        """True when *at* falls inside any outage window of *key*."""
        return any(start <= at < end for start, end in self.windows(key))

    def __repr__(self) -> str:
        return (
            f"<FaultInjector plan={len(self.plan)} "
            f"targets={sorted(self.targets)}>"
        )
