"""Transport endpoints: reliable FIFO streams and unreliable datagrams.

* :class:`StreamConnection` — a TCP-like, connection-oriented channel.
  Establishing one costs a full round trip (the paper's argument for
  broker-side persistent connections rests on exactly this cost);
  messages arrive in order, reliably — *while the link underneath is
  up*. A partition (:meth:`Network.sever_link`) kills crossing streams
  unilaterally: :meth:`StreamConnection.sever` fails pending receives
  without any goodbye crossing the wire, and
  :meth:`StreamConnection.abort` is the crash-local variant (FIN to the
  peer, immediate local teardown) used by
  :meth:`~repro.http.server.BackendWebServer.crash`.
* :class:`DatagramSocket` — a UDP-like socket: connectionless, cheap, no
  delivery or ordering guarantee; datagrams sent across a severed link
  are counted lost. The paper's distributed broker model exchanges
  request/response messages with the front end over UDP.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from ..errors import ConnectionClosed, NetworkError
from ..sim.core import _PENDING, Event, Simulation
from .address import Address
from .message import HEADER_BYTES, Envelope, estimate_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network, Node

__all__ = ["StreamConnection", "StreamListener", "DatagramSocket"]


class _CloseMarker:
    """Sentinel delivered in-band to signal an orderly shutdown."""

    __repr__ = lambda self: "<close>"  # noqa: E731


_CLOSE = _CloseMarker()


class _InboxGet(Event):
    """Pending receive; ``cancelled`` marks an abandoned waiter."""

    __slots__ = ("cancelled",)

    def __init__(self, sim: Simulation) -> None:
        # ``Event.__init__`` inlined: one of these is allocated per
        # stream/datagram receive, making this a hot constructor.
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self.defused = False
        self._waiter = None
        self.cancelled = False


class _Inbox:
    """Receive buffer delivering items to waiting events in FIFO order."""

    __slots__ = ("sim", "items", "_getters", "closed")

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self.items: Deque[Any] = deque()
        self._getters: Deque[_InboxGet] = deque()
        self.closed = False

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            getter.succeed(item)
            return
        self.items.append(item)

    def get(self) -> _InboxGet:
        event = _InboxGet(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
        elif self.closed:
            event.fail(ConnectionClosed("connection closed by peer"))
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> None:
        if isinstance(event, _InboxGet) and not event.triggered:
            event.cancelled = True

    def close(self) -> None:
        self.closed = True
        while self._getters:
            getter = self._getters.popleft()
            if not getter.cancelled:
                getter.fail(ConnectionClosed("connection closed by peer"))


class StreamConnection:
    """One side of an established, reliable, ordered byte stream.

    Obtained from :meth:`Node.connect_stream` (client side) or
    :meth:`StreamListener.accept` (server side). ``send`` is
    fire-and-forget (infinite socket buffer); ``recv`` returns an event
    that succeeds with the next payload or fails with
    :class:`ConnectionClosed`.
    """

    __slots__ = (
        "_network", "sim", "local_address", "remote_address", "peer",
        "_inbox", "_next_arrival", "local_closed", "bytes_sent",
        "messages_sent", "__weakref__",
    )

    def __init__(
        self,
        network: "Network",
        local_node: "Node",
        local_port: int,
        remote_address: Address,
    ) -> None:
        self._network = network
        self.sim = network.sim
        self.local_address = Address(local_node.name, local_port)
        self.remote_address = remote_address
        self.peer: Optional["StreamConnection"] = None
        self._inbox = _Inbox(self.sim)
        self._next_arrival = 0.0
        self.local_closed = False
        self.bytes_sent = 0
        self.messages_sent = 0

    @property
    def closed(self) -> bool:
        """``True`` once either side has closed the connection."""
        return self.local_closed or self._inbox.closed

    def send(self, payload: Any, size: Optional[int] = None) -> Event:
        """Transmit *payload*; returns the delivery event (rarely awaited)."""
        if self.local_closed:
            raise ConnectionClosed("send() on a locally closed connection")
        if self.peer is None:
            raise NetworkError("connection has no peer (not established)")
        return self._transmit(payload, size)

    def _transmit(self, payload: Any, size: Optional[int]) -> Event:
        assert self.peer is not None
        network = self._network
        local_host = self.local_address.host
        remote_host = self.remote_address.host
        size = HEADER_BYTES + (estimate_size(payload) if size is None else size)
        if network.link_severed(local_host, remote_host):
            # Partitioned mid-conversation: the bytes never arrive.
            network.metrics.increment("net.stream.lost")
            return Event(self.sim).succeed(None)
        link = network.link_between(local_host, remote_host)
        rng = network.link_rng(local_host, remote_host)
        # `Link.delay` inlined (this is the busiest call site); the RNG
        # must be consumed exactly as there: one uniform iff jitter.
        delay = link.latency
        if link.jitter:
            delay += rng.uniform(0.0, link.jitter)
        bandwidth = link.bandwidth
        if bandwidth is not None:
            delay += size / bandwidth
        now = self.sim._now
        # FIFO: a message never arrives before its predecessor.
        arrival = now + delay
        if arrival < self._next_arrival:
            arrival = self._next_arrival
        self._next_arrival = arrival
        self.bytes_sent += size
        self.messages_sent += 1
        network.account(size)
        envelope = Envelope(
            payload=payload,
            source=self.local_address,
            destination=self.remote_address,
            size=size,
            sent_at=now,
        )
        delivery = Event(self.sim)
        delivery.callbacks.append(self.peer._deliver)
        delivery.succeed(envelope, delay=arrival - now)
        return delivery

    def _deliver(self, event: Event) -> None:
        envelope = event.value
        if self.local_closed:
            return  # receiver already gone; bytes fall on the floor
        if envelope.payload is _CLOSE:
            self._inbox.close()
        else:
            self._inbox.put(envelope)

    def recv(self) -> Event:
        """Event succeeding with the next :class:`Envelope`."""
        return self._inbox.get()

    def cancel_recv(self, event: Event) -> None:
        """Withdraw a pending ``recv`` (for AnyOf-with-timeout races)."""
        self._inbox.cancel(event)

    def close(self) -> None:
        """Orderly shutdown: the peer sees buffered data, then EOF."""
        if self.local_closed:
            return
        if self.peer is not None and not self._inbox.closed:
            self._transmit(_CLOSE, 0)
        self.local_closed = True

    def abort(self) -> None:
        """Crash-local teardown: FIN to the peer, this side dies *now*.

        Unlike :meth:`close`, any receive pending on this endpoint fails
        immediately with :class:`ConnectionClosed` — the process that
        owned the connection is gone.
        """
        self.close()
        self._inbox.close()

    def sever(self) -> None:
        """Kill this endpoint without telling the peer.

        Used when the link underneath is partitioned
        (:meth:`Network.sever_link`): nothing crosses the dead link, so
        no FIN is sent; pending receives fail with
        :class:`ConnectionClosed` and later sends raise it.
        """
        self.local_closed = True
        self._inbox.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<StreamConnection {self.local_address}->{self.remote_address} {state}>"


class StreamListener:
    """A bound, listening stream endpoint; ``accept`` yields connections."""

    __slots__ = (
        "node", "sim", "address", "backlog", "_pending", "_pending_count",
        "closed",
    )

    def __init__(self, node: "Node", port: int, backlog: Optional[int] = None) -> None:
        self.node = node
        self.sim = node.sim
        self.address = Address(node.name, port)
        self.backlog = backlog
        self._pending = _Inbox(self.sim)
        self._pending_count = 0
        self.closed = False

    def accept(self) -> Event:
        """Event succeeding with the next established :class:`StreamConnection`."""
        event = self._pending.get()
        if event.triggered and event.ok:
            # Served from the backlog queue; a getter that instead gets
            # paired later never occupied the backlog (see _offer).
            self._pending_count -= 1
        return event

    def _offer(self, connection: StreamConnection) -> bool:
        """Queue an incoming connection; False if the backlog is full."""
        if self.closed:
            return False
        if self.backlog is not None and self._pending_count >= self.backlog:
            return False
        self._pending_count += 1
        waiting = bool(self._pending._getters)
        self._pending.put(connection)
        if waiting:
            self._pending_count -= 1
        return True

    def close(self) -> None:
        """Stop listening; pending accepts fail with :class:`ConnectionClosed`."""
        if not self.closed:
            self.closed = True
            self.node._unbind(self.address.port)
            self._pending.close()

    def __repr__(self) -> str:
        return f"<StreamListener {self.address} pending={self._pending_count}>"


class DatagramSocket:
    """A UDP-like socket: unordered, unreliable, connectionless."""

    __slots__ = (
        "node", "sim", "_network", "address", "_inbox", "closed",
        "datagrams_sent", "datagrams_dropped",
    )

    def __init__(self, node: "Node", port: int) -> None:
        self.node = node
        self.sim = node.sim
        self._network = node.network
        self.address = Address(node.name, port)
        self._inbox = _Inbox(self.sim)
        self.closed = False
        self.datagrams_sent = 0
        self.datagrams_dropped = 0

    def sendto(self, payload: Any, destination: Address, size: Optional[int] = None) -> None:
        """Send one datagram; silently dropped on loss or missing receiver."""
        if self.closed:
            raise NetworkError("sendto() on a closed socket")
        network = self._network
        local_host = self.address.host
        size = HEADER_BYTES + (estimate_size(payload) if size is None else size)
        if network.link_severed(local_host, destination.host):
            self.datagrams_sent += 1
            self.datagrams_dropped += 1
            network.metrics.increment("net.datagrams.lost")
            return
        link = network.link_between(local_host, destination.host)
        rng = network.link_rng(local_host, destination.host)
        self.datagrams_sent += 1
        network.account(size)
        # `Link.drops` inlined: sample the RNG only when lossy, exactly
        # as the method does.
        loss = link.loss
        if loss > 0.0 and rng.random() < loss:
            self.datagrams_dropped += 1
            network.metrics.increment("net.datagrams.lost")
            return
        envelope = Envelope(
            payload=payload,
            source=self.address,
            destination=destination,
            size=size,
            sent_at=self.sim._now,
        )
        # `Link.delay` inlined, consuming the RNG identically.
        delay = link.latency
        if link.jitter:
            delay += rng.uniform(0.0, link.jitter)
        bandwidth = link.bandwidth
        if bandwidth is not None:
            delay += size / bandwidth
        delivery = Event(self.sim)
        delivery.callbacks.append(network._deliver_datagram)
        delivery.succeed(envelope, delay=delay)

    def _deliver(self, envelope: Envelope) -> None:
        if not self.closed:
            self._inbox.put(envelope)

    def recv(self) -> Event:
        """Event succeeding with the next :class:`Envelope`."""
        if self.closed:
            raise NetworkError("recv() on a closed socket")
        return self._inbox.get()

    def cancel_recv(self, event: Event) -> None:
        """Withdraw a pending ``recv`` (for AnyOf-with-timeout races)."""
        self._inbox.cancel(event)

    def close(self) -> None:
        """Unbind the port and fail pending receives."""
        if not self.closed:
            self.closed = True
            self.node._unbind(self.address.port)
            self._inbox.close()

    def __repr__(self) -> str:
        return f"<DatagramSocket {self.address}{' closed' if self.closed else ''}>"
