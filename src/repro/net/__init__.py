"""Simulated network substrate: nodes, links, streams, datagrams."""

from .address import Address
from .link import Link
from .message import Envelope, estimate_size
from .network import Network, Node
from .transport import DatagramSocket, StreamConnection, StreamListener

__all__ = [
    "Address",
    "Link",
    "Envelope",
    "estimate_size",
    "Network",
    "Node",
    "DatagramSocket",
    "StreamConnection",
    "StreamListener",
]
