"""Simulated network substrate: nodes, links, streams, datagrams, faults."""

from .address import Address
from .faults import (
    BackendCrash,
    BrokerCrash,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkDown,
    SlowBackend,
)
from .link import Link
from .message import Envelope, estimate_size
from .network import Network, Node
from .transport import DatagramSocket, StreamConnection, StreamListener

__all__ = [
    "Address",
    "Link",
    "Envelope",
    "estimate_size",
    "Network",
    "Node",
    "DatagramSocket",
    "StreamConnection",
    "StreamListener",
    "BackendCrash",
    "BrokerCrash",
    "LinkDown",
    "LinkDegrade",
    "SlowBackend",
    "FaultPlan",
    "FaultInjector",
]
