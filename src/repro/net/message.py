"""On-wire message envelope and payload size estimation.

The simulator never serializes payloads — Python objects are handed
across directly — but transfer times depend on message size, so every
send carries a byte size: explicit when the caller knows it, otherwise
estimated structurally by :func:`estimate_size`.

Size estimation sits on the per-message hot path (every datagram and
stream send calls it), so the implementation dispatches on the payload's
concrete type through a handler cache: the first payload of a given type
walks the classification chain once and compiles a small handler
(constant for ``__wire_bytes__`` types, a precomputed field tuple for
dataclasses); every later payload of that type is a single dict lookup
plus the handler call. Wire attributes (``__wire_bytes__``,
``__nonwire_fields__``) are therefore read once per type, at handler
build time.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict

from .address import Address

__all__ = ["Envelope", "estimate_size", "encode_batch", "decode_batch"]

#: Fixed per-message header overhead, in bytes (IP + transport headers).
HEADER_BYTES = 40


def _size_one(payload: Any) -> int:
    """Size handler for ``None`` and booleans: one byte."""
    return 1


def _size_number(payload: Any) -> int:
    """Size handler for ints and floats: eight bytes."""
    return 8


def _size_str(payload: str) -> int:
    """Size handler for strings: UTF-8 encoded length."""
    if payload.isascii():
        return len(payload)
    return len(payload.encode("utf-8", errors="replace"))


def _size_sequence(payload: Any) -> int:
    """Size handler for list/tuple/set/frozenset: items plus framing."""
    total = 8
    get = _HANDLERS.get
    for item in payload:
        cls = item.__class__
        if cls is str:
            total += (
                len(item)
                if item.isascii()
                else len(item.encode("utf-8", errors="replace"))
            )
            continue
        handler = get(cls)
        total += handler(item) if handler is not None else estimate_size(item)
    return total


def _size_dict(payload: Dict[Any, Any]) -> int:
    """Size handler for dicts: keys and values plus framing."""
    total = 8
    get = _HANDLERS.get
    for key, value in payload.items():
        cls = key.__class__
        if cls is str:
            total += (
                len(key)
                if key.isascii()
                else len(key.encode("utf-8", errors="replace"))
            )
        else:
            handler = get(cls)
            total += handler(key) if handler is not None else estimate_size(key)
        cls = value.__class__
        if cls is str:
            total += (
                len(value)
                if value.isascii()
                else len(value.encode("utf-8", errors="replace"))
            )
        else:
            handler = get(cls)
            total += (
                handler(value) if handler is not None else estimate_size(value)
            )
    return total


def _size_repr(payload: Any) -> int:
    """Fallback size handler: length of ``repr``, at least eight bytes."""
    return max(8, len(repr(payload)))


#: Compiled per-type size handlers (see module docstring).
_HANDLERS: Dict[type, Callable[[Any], int]] = {}

_NONE_TYPE = type(None)

#: Template for one unrolled field of a generated dataclass handler.
#: Strings, numbers, ``None`` and booleans — the overwhelming majority
#: of wire fields — are sized inline; anything else dispatches through
#: the handler cache.
_FIELD_TEMPLATE = """\
    v = payload.{name}
    c = v.__class__
    if c is str:
        total += len(v) if v.isascii() else len(v.encode("utf-8", "replace"))
    elif c is int or c is float:
        total += 8
    elif c is _none or c is bool:
        total += 1
    else:
        h = _get(c)
        total += h(v) if h is not None else _est(v)
"""


def _compile_dataclass_handler(
    cls: type, names: "tuple"
) -> Callable[[Any], int]:
    """Generate an unrolled size handler for a dataclass's wire fields.

    The generated function reads each field by name (no loop, no
    attrgetter tuple) — field sizing is the hottest code in the net
    layer, one call per message per dataclass payload.
    """
    if not names:
        return lambda payload: 8
    lines = ["def handler(payload):", "    total = 8"]
    for name in names:
        lines.append(_FIELD_TEMPLATE.format(name=name))
    lines.append("    return total")
    namespace = {
        "_get": _HANDLERS.get,
        "_est": estimate_size,
        "_none": _NONE_TYPE,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted template
    handler = namespace["handler"]
    handler.__qualname__ = f"_size_{cls.__name__}"
    return handler


def _build_handler(cls: type) -> Callable[[Any], int]:
    """Classify *cls* once, cache and return its size handler."""
    wire_bytes = getattr(cls, "__wire_bytes__", None)
    if wire_bytes is not None:
        size = int(wire_bytes)

        def handler(payload: Any, _size: int = size) -> int:
            """Constant size handler for a ``__wire_bytes__`` type."""
            return _size

    elif cls is type(None) or issubclass(cls, bool):
        handler = _size_one
    elif issubclass(cls, (int, float)):
        handler = _size_number
    elif issubclass(cls, bytes):
        handler = len
    elif issubclass(cls, str):
        handler = _size_str
    elif issubclass(cls, (list, tuple, set, frozenset)):
        handler = _size_sequence
    elif issubclass(cls, dict):
        handler = _size_dict
    elif is_dataclass(cls):
        nonwire = getattr(cls, "__nonwire_fields__", ())
        names = tuple(
            f.name for f in fields(cls) if f.name not in nonwire
        )
        handler = _compile_dataclass_handler(cls, names)

    else:
        handler = _size_repr
    _HANDLERS[cls] = handler
    return handler


def estimate_size(payload: Any) -> int:
    """Structural estimate of a payload's serialized size in bytes.

    Deterministic and cheap; used whenever a caller does not pass an
    explicit size. Numbers count 8 bytes, strings/bytes their length,
    containers the sum of their items plus a small framing overhead.

    Two escape hatches keep simulation-side instrumentation off the
    wire: an object with a ``__wire_bytes__`` attribute contributes
    exactly that many bytes (a :class:`~repro.core.pipeline.RequestContext`
    declares 0 — it models an out-of-band trace header), and a
    dataclass may list fields in ``__nonwire_fields__`` to exclude them
    from its size.
    """
    handler = _HANDLERS.get(payload.__class__)
    if handler is not None:
        return handler(payload)
    return _build_handler(payload.__class__)(payload)


# Pre-compile handlers for the builtin payload types so the very first
# message pays no classification cost.
for _cls in (
    type(None), bool, int, float, bytes, str,
    list, tuple, set, frozenset, dict,
):
    _build_handler(_cls)
del _cls


class Envelope:
    """A payload in flight, stamped with source address and size.

    A plain ``__slots__`` class rather than a (frozen) dataclass: one
    envelope is allocated per message, and a frozen dataclass pays an
    ``object.__setattr__`` call per field on construction.
    """

    __slots__ = ("payload", "source", "destination", "size", "sent_at")

    def __init__(
        self,
        payload: Any,
        source: Address,
        destination: Address,
        size: int,
        sent_at: float,
    ) -> None:
        if size < 0:
            raise ValueError(f"negative message size: {size!r}")
        self.payload = payload
        self.source = source
        self.destination = destination
        self.size = size
        self.sent_at = sent_at

    def __repr__(self) -> str:
        return (
            f"Envelope(payload={self.payload!r}, source={self.source!r}, "
            f"destination={self.destination!r}, size={self.size!r}, "
            f"sent_at={self.sent_at!r})"
        )


# ---------------------------------------------------------------------------
# Wire serialization for cross-process envelope batches
# ---------------------------------------------------------------------------
#
# In-process, payloads cross the simulated network as live Python
# objects. The parallel driver (repro.sim.parallel) is different: its
# envelope batches cross real OS process boundaries at every window
# barrier, so they must be serialized. Batches are pickled with the
# highest protocol; an empty batch is the empty byte string, so the
# common no-traffic window costs neither a pickle call nor pipe volume.


def encode_batch(envelopes: "list") -> bytes:
    """Serialize a list of envelopes for cross-process transfer."""
    if not envelopes:
        return b""
    import pickle

    return pickle.dumps(envelopes, protocol=pickle.HIGHEST_PROTOCOL)


def decode_batch(blob: bytes) -> "list":
    """Inverse of :func:`encode_batch`; ``b""`` decodes to ``[]``."""
    if not blob:
        return []
    import pickle

    return pickle.loads(blob)
