"""On-wire message envelope and payload size estimation.

The simulator never serializes payloads — Python objects are handed
across directly — but transfer times depend on message size, so every
send carries a byte size: explicit when the caller knows it, otherwise
estimated structurally by :func:`estimate_size`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from .address import Address

__all__ = ["Envelope", "estimate_size"]

#: Fixed per-message header overhead, in bytes (IP + transport headers).
HEADER_BYTES = 40


def estimate_size(payload: Any) -> int:
    """Structural estimate of a payload's serialized size in bytes.

    Deterministic and cheap; used whenever a caller does not pass an
    explicit size. Numbers count 8 bytes, strings/bytes their length,
    containers the sum of their items plus a small framing overhead.

    Two escape hatches keep simulation-side instrumentation off the
    wire: an object with a ``__wire_bytes__`` attribute contributes
    exactly that many bytes (a :class:`~repro.core.pipeline.RequestContext`
    declares 0 — it models an out-of-band trace header), and a
    dataclass may list fields in ``__nonwire_fields__`` to exclude them
    from its size.
    """
    wire_bytes = getattr(type(payload), "__wire_bytes__", None)
    if wire_bytes is not None:
        return int(wire_bytes)
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(
            estimate_size(key) + estimate_size(value)
            for key, value in payload.items()
        )
    if is_dataclass(payload) and not isinstance(payload, type):
        nonwire = getattr(type(payload), "__nonwire_fields__", ())
        return 8 + sum(
            estimate_size(getattr(payload, f.name))
            for f in fields(payload)
            if f.name not in nonwire
        )
    return max(8, len(repr(payload)))


@dataclass(frozen=True)
class Envelope:
    """A payload in flight, stamped with source address and size."""

    payload: Any
    source: Address
    destination: Address
    size: int
    sent_at: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size!r}")
