"""Network addresses: (host, port) pairs."""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Address"]


class Address(NamedTuple):
    """A network endpoint: host name plus port number.

    Hosts are symbolic names registered with the :class:`Network`;
    ports are integers, with ephemeral ports assigned from 49152 up.
    """

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"
