"""Client-side directory access (the LDAP API of the baseline model)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ProtocolError, ServiceError
from ..net.address import Address
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from .tree import SCOPE_SUB

__all__ = ["DirectoryClient", "DirectoryConnection", "SearchResult"]


@dataclass(frozen=True)
class SearchResult:
    """Entries returned by one search, plus work accounting."""

    entries: Tuple[Tuple[str, Dict[str, List[str]]], ...]
    examined: int

    def __len__(self) -> int:
        return len(self.entries)

    def dns(self) -> List[str]:
        """The matched entries' DNs, in result order."""
        return [dn for dn, _ in self.entries]


class DirectoryConnection:
    """An established, bound connection to a directory server."""

    def __init__(self, sim: Simulation, stream: StreamConnection) -> None:
        self.sim = sim
        self._stream = stream

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def _round_trip(self, message: tuple):
        self._stream.send(message)
        envelope = yield self._stream.recv()
        reply = envelope.payload
        if reply and reply[0] == "error":
            raise ServiceError(reply[1])
        return reply

    def search(
        self,
        base: str,
        scope: str = SCOPE_SUB,
        filter_expr: Optional[str] = None,
    ):
        """Search; ``yield from`` generator returning :class:`SearchResult`."""
        reply = yield from self._round_trip(("search", base, scope, filter_expr))
        if reply[0] != "ok":
            raise ProtocolError(f"unexpected reply: {reply!r}")
        return SearchResult(entries=tuple(reply[1]), examined=reply[2])

    def add(self, dn: str, attributes: Mapping[str, Union[str, Sequence[str]]]):
        """Add an entry; a ``yield from`` generator."""
        yield from self._round_trip(("add", dn, dict(attributes)))

    def modify(self, dn: str, changes: Mapping[str, Any]):
        """Replace attributes of an entry; a ``yield from`` generator."""
        yield from self._round_trip(("modify", dn, dict(changes)))

    def delete(self, dn: str):
        """Delete a leaf entry; a ``yield from`` generator."""
        yield from self._round_trip(("delete", dn))

    def unbind(self):
        """Orderly shutdown; a ``yield from`` generator."""
        if not self._stream.closed:
            self._stream.send(("unbind",))
            self._stream.close()
        return
        yield  # pragma: no cover - makes this a generator


class DirectoryClient:
    """Factory for :class:`DirectoryConnection`."""

    @staticmethod
    def connect(sim: Simulation, node: Node, address: Address, principal: str = ""):
        """Connect and bind; ``yield from`` this generator."""
        stream = yield from node.connect_stream(address)
        stream.send(("bind", principal or node.name))
        envelope = yield stream.recv()
        reply = envelope.payload
        if not (isinstance(reply, tuple) and reply and reply[0] == "bound"):
            stream.close()
            raise ProtocolError(f"bind failed: {reply!r}")
        return DirectoryConnection(sim, stream)
