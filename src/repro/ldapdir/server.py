"""The networked directory server.

Protocol over a stream connection (mirrors the database server's shape):

* client → ``("bind", principal)`` / server → ``("bound",)``
* client → ``("search", base, scope, filter_or_None)``
  server → ``("ok", [ (dn, attrs), ... ], examined)`` or ``("error", msg)``
* client → ``("add", dn, attrs)`` / ``("modify", dn, changes)`` /
  ``("delete", dn)`` — server → ``("ok",)`` or ``("error", msg)``
* client → ``("unbind",)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConnectionClosed, ServiceError
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from ..sim.resources import Resource
from .tree import DirectoryTree

__all__ = ["DirectoryServer", "DirectoryCostModel"]

#: Default LDAP port.
DEFAULT_PORT = 389


@dataclass(frozen=True)
class DirectoryCostModel:
    """Service-time model for directory operations."""

    base: float = 0.001
    per_entry_examined: float = 8e-6
    per_entry_returned: float = 3e-5
    per_write: float = 1e-4
    bind_time: float = 0.002

    def search_time(self, examined: int, returned: int) -> float:
        """Service time for a search touching *examined* entries."""
        return (
            self.base
            + examined * self.per_entry_examined
            + returned * self.per_entry_returned
        )

    def write_time(self) -> float:
        """Service time for one add/modify/delete."""
        return self.base + self.per_write


class DirectoryServer:
    """Serves a :class:`DirectoryTree` over the simulated network."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        tree: Optional[DirectoryTree] = None,
        port: int = DEFAULT_PORT,
        max_workers: int = 8,
        cost_model: Optional[DirectoryCostModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.tree = tree if tree is not None else DirectoryTree()
        self.cost_model = cost_model or DirectoryCostModel()
        self.metrics = metrics or MetricsRegistry()
        self.workers = Resource(sim, max_workers)
        self.listener = node.listen_stream(port)
        self.address = node.address(port)
        sim.process(self._accept_loop(), name=f"ldap:{node.name}")

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.metrics.increment("ldap.connections")
            self.sim.process(self._session(connection))

    def _session(self, connection: StreamConnection):
        bound = False
        while True:
            try:
                envelope = yield connection.recv()
            except ConnectionClosed:
                return
            message = envelope.payload
            if not isinstance(message, tuple) or not message:
                connection.send(("error", f"malformed message: {message!r}"))
                continue
            command = message[0]
            if command == "bind":
                yield self.cost_model.bind_time
                bound = True
                connection.send(("bound",))
                continue
            if command == "unbind":
                connection.close()
                return
            if not bound:
                connection.send(("error", "bind first"))
                continue
            yield from self._serve(connection, message)

    def _serve(self, connection: StreamConnection, message: tuple):
        request = self.workers.request()
        yield request
        try:
            command = message[0]
            try:
                if command == "search":
                    _, base, scope, filter_expr = message
                    matches, examined = self.tree.search(base, scope, filter_expr)
                    service = self.cost_model.search_time(examined, len(matches))
                    yield service
                    self.metrics.increment("ldap.searches")
                    self.metrics.observe("ldap.entries_examined", examined)
                    payload = [(str(e.dn), e.to_dict()) for e in matches]
                    reply = ("ok", payload, examined)
                elif command == "add":
                    _, dn, attributes = message
                    self.tree.add(dn, attributes)
                    yield self.cost_model.write_time()
                    self.metrics.increment("ldap.writes")
                    reply = ("ok",)
                elif command == "modify":
                    _, dn, changes = message
                    self.tree.modify(dn, changes)
                    yield self.cost_model.write_time()
                    self.metrics.increment("ldap.writes")
                    reply = ("ok",)
                elif command == "delete":
                    _, dn = message
                    self.tree.delete(dn)
                    yield self.cost_model.write_time()
                    self.metrics.increment("ldap.writes")
                    reply = ("ok",)
                else:
                    reply = ("error", f"unknown command: {command!r}")
            except ServiceError as exc:
                self.metrics.increment("ldap.errors")
                reply = ("error", str(exc))
            if not connection.closed:
                connection.send(reply)
        finally:
            self.workers.release(request)

    def close(self) -> None:
        """Stop accepting new connections."""
        self.listener.close()

    def __repr__(self) -> str:
        return f"<DirectoryServer {self.address} entries={len(self.tree)}>"
