"""Directory entries and distinguished names.

A DN is a comma-separated sequence of ``attr=value`` RDNs, most specific
first (``cn=alice,ou=people,dc=example,dc=com``). Entries hold a
multi-valued attribute map, as in LDAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from ..errors import ServiceError

__all__ = ["DN", "Entry", "parse_dn"]

Rdn = Tuple[str, str]


def parse_dn(text: str) -> Tuple[Rdn, ...]:
    """Parse a DN string into a tuple of (attribute, value) RDNs."""
    if not text.strip():
        return ()
    rdns: List[Rdn] = []
    for part in text.split(","):
        if "=" not in part:
            raise ServiceError(f"malformed RDN {part!r} in DN {text!r}")
        attr, _, value = part.partition("=")
        attr = attr.strip().lower()
        value = value.strip()
        if not attr or not value:
            raise ServiceError(f"malformed RDN {part!r} in DN {text!r}")
        rdns.append((attr, value))
    return tuple(rdns)


@dataclass(frozen=True)
class DN:
    """A normalized distinguished name."""

    rdns: Tuple[Rdn, ...]

    @classmethod
    def of(cls, value: Union[str, "DN"]) -> "DN":
        if isinstance(value, DN):
            return value
        return cls(parse_dn(value))

    @property
    def parent(self) -> "DN":
        """The DN with the most-specific RDN removed."""
        if not self.rdns:
            raise ServiceError("the root DN has no parent")
        return DN(self.rdns[1:])

    @property
    def rdn(self) -> Rdn:
        """The most-specific RDN."""
        if not self.rdns:
            raise ServiceError("the root DN has no RDN")
        return self.rdns[0]

    def child(self, attr: str, value: str) -> "DN":
        """The DN one level below this one."""
        return DN(((attr.lower(), value),) + self.rdns)

    def is_descendant_of(self, ancestor: "DN") -> bool:
        """True if *ancestor* is a proper prefix (suffix-wise) of this DN."""
        offset = len(self.rdns) - len(ancestor.rdns)
        return offset > 0 and self.rdns[offset:] == ancestor.rdns

    @property
    def depth(self) -> int:
        return len(self.rdns)

    def __str__(self) -> str:
        return ",".join(f"{a}={v}" for a, v in self.rdns)


class Entry:
    """A directory entry: a DN plus multi-valued attributes.

    Attribute names are case-insensitive; values are strings.
    """

    def __init__(
        self, dn: Union[str, DN], attributes: Mapping[str, Union[str, Sequence[str]]]
    ) -> None:
        self.dn = DN.of(dn)
        self._attributes: Dict[str, List[str]] = {}
        for name, values in attributes.items():
            self._attributes[name.lower()] = (
                [values] if isinstance(values, str) else list(values)
            )
        # The RDN attribute is implicitly present, as in LDAP.
        if self.dn.rdns:
            attr, value = self.dn.rdn
            existing = self._attributes.setdefault(attr, [])
            if value not in existing:
                existing.append(value)

    def get(self, attribute: str) -> List[str]:
        """All values of *attribute* (empty list when absent)."""
        return list(self._attributes.get(attribute.lower(), []))

    def first(self, attribute: str) -> str:
        """The first value of *attribute*, or ``""``."""
        values = self._attributes.get(attribute.lower())
        return values[0] if values else ""

    def has(self, attribute: str) -> bool:
        """True if *attribute* is present on the entry."""
        return attribute.lower() in self._attributes

    def replace(self, attribute: str, values: Union[str, Sequence[str]]) -> None:
        """Set *attribute* to *values*, dropping previous ones."""
        self._attributes[attribute.lower()] = (
            [values] if isinstance(values, str) else list(values)
        )

    def remove(self, attribute: str) -> None:
        """Delete *attribute* (no-op when absent)."""
        self._attributes.pop(attribute.lower(), None)

    def to_dict(self) -> Dict[str, List[str]]:
        """A plain-dict snapshot (what the server sends over the wire)."""
        return {name: list(values) for name, values in self._attributes.items()}

    def __repr__(self) -> str:
        return f"<Entry {self.dn}>"
