"""The Directory Information Tree (DIT): entries arranged by DN."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from ..errors import NoSuchEntryError, ServiceError
from .entry import DN, Entry
from .filters import Filter, parse_filter

__all__ = ["DirectoryTree", "SCOPE_BASE", "SCOPE_ONE", "SCOPE_SUB"]

SCOPE_BASE = "base"
SCOPE_ONE = "one"
SCOPE_SUB = "sub"

_SCOPES = (SCOPE_BASE, SCOPE_ONE, SCOPE_SUB)


class DirectoryTree:
    """An in-memory DIT with add/delete/modify/search.

    Parents must exist before children are added (except the suffix
    entries added at the top). Searches return entries in DN order and
    report how many entries were examined — the server's cost driver.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dn: Union[str, DN]) -> bool:
        return str(DN.of(dn)) in self._entries

    def add(
        self, dn: Union[str, DN], attributes: Mapping[str, Union[str, Sequence[str]]]
    ) -> Entry:
        """Insert a new entry; its parent must already exist (unless top-level)."""
        name = DN.of(dn)
        key = str(name)
        if key in self._entries:
            raise ServiceError(f"entry already exists: {key}")
        if name.depth > 1:
            parent = str(name.parent)
            if parent not in self._entries:
                raise NoSuchEntryError(f"parent entry missing: {parent}")
        entry = Entry(name, attributes)
        self._entries[key] = entry
        return entry

    def get(self, dn: Union[str, DN]) -> Entry:
        """The entry at *dn*; raises :class:`NoSuchEntryError`."""
        key = str(DN.of(dn))
        entry = self._entries.get(key)
        if entry is None:
            raise NoSuchEntryError(f"no entry: {key}")
        return entry

    def delete(self, dn: Union[str, DN]) -> None:
        """Remove a leaf entry; refuses to orphan children."""
        name = DN.of(dn)
        key = str(name)
        if key not in self._entries:
            raise NoSuchEntryError(f"no entry: {key}")
        for other in self._entries.values():
            if other.dn.is_descendant_of(name):
                raise ServiceError(f"entry {key} has children; delete them first")
        del self._entries[key]

    def modify(
        self, dn: Union[str, DN], changes: Mapping[str, Union[str, Sequence[str], None]]
    ) -> Entry:
        """Replace attributes (a ``None`` value deletes the attribute)."""
        entry = self.get(dn)
        for attribute, values in changes.items():
            if values is None:
                entry.remove(attribute)
            else:
                entry.replace(attribute, values)
        return entry

    def search(
        self,
        base: Union[str, DN],
        scope: str = SCOPE_SUB,
        filter_expr: Union[str, Filter, None] = None,
    ) -> tuple[List[Entry], int]:
        """Entries under *base* matching *filter_expr*.

        Returns ``(matches, entries_examined)``; *entries_examined* is
        the number of candidate entries visited, which drives the
        server-side cost model.
        """
        if scope not in _SCOPES:
            raise ServiceError(f"unknown scope {scope!r}; use one of {_SCOPES}")
        base_dn = DN.of(base)
        if str(base_dn) not in self._entries:
            raise NoSuchEntryError(f"search base missing: {base_dn}")
        if filter_expr is None:
            compiled: Optional[Filter] = None
        elif isinstance(filter_expr, str):
            compiled = parse_filter(filter_expr)
        else:
            compiled = filter_expr

        candidates = list(self._candidates(base_dn, scope))
        matches = [
            entry
            for entry in candidates
            if compiled is None or compiled.matches(entry)
        ]
        matches.sort(key=lambda e: (e.dn.depth, str(e.dn)))
        return matches, len(candidates)

    def _candidates(self, base: DN, scope: str) -> Iterator[Entry]:
        if scope == SCOPE_BASE:
            yield self._entries[str(base)]
            return
        for entry in self._entries.values():
            if scope == SCOPE_ONE:
                if entry.dn.depth == base.depth + 1 and entry.dn.is_descendant_of(base):
                    yield entry
            else:  # SCOPE_SUB includes the base itself
                if entry.dn == base or entry.dn.is_descendant_of(base):
                    yield entry

    def __repr__(self) -> str:
        return f"<DirectoryTree entries={len(self._entries)}>"
