"""LDAP-style directory service: tree, filters, server, client."""

from .client import DirectoryClient, DirectoryConnection, SearchResult
from .entry import DN, Entry, parse_dn
from .filters import parse_filter
from .server import DirectoryCostModel, DirectoryServer
from .tree import SCOPE_BASE, SCOPE_ONE, SCOPE_SUB, DirectoryTree

__all__ = [
    "DirectoryClient",
    "DirectoryConnection",
    "SearchResult",
    "DN",
    "Entry",
    "parse_dn",
    "parse_filter",
    "DirectoryServer",
    "DirectoryCostModel",
    "DirectoryTree",
    "SCOPE_BASE",
    "SCOPE_ONE",
    "SCOPE_SUB",
]
