"""RFC-2254-style search filters: parser and evaluator.

Supported forms::

    (attr=value)      equality; '*' wildcards allowed in value
    (attr=*)          presence
    (attr>=value)     lexicographic/numeric greater-or-equal
    (attr<=value)     lexicographic/numeric less-or-equal
    (&(f1)(f2)...)    conjunction
    (|(f1)(f2)...)    disjunction
    (!(f))            negation
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple, Union

from ..errors import FilterSyntaxError
from .entry import Entry

__all__ = ["parse_filter", "Filter", "Equality", "Presence", "Compare", "NotF", "AndF", "OrF"]


@dataclass(frozen=True)
class Equality:
    """``(attr=value)``, possibly with ``*`` wildcards."""

    attribute: str
    pattern: str

    def matches(self, entry: Entry) -> bool:
        """True if any value of the attribute matches the pattern."""
        values = entry.get(self.attribute)
        if "*" not in self.pattern:
            return any(v.lower() == self.pattern.lower() for v in values)
        regex = re.compile(
            "^" + ".*".join(re.escape(p) for p in self.pattern.split("*")) + "$",
            re.IGNORECASE,
        )
        return any(regex.match(v) for v in values)


@dataclass(frozen=True)
class Presence:
    """``(attr=*)``."""

    attribute: str

    def matches(self, entry: Entry) -> bool:
        """True if the attribute is present."""
        return entry.has(self.attribute)


@dataclass(frozen=True)
class Compare:
    """``(attr>=value)`` or ``(attr<=value)``.

    Comparison is numeric when both sides parse as numbers, otherwise
    case-insensitive lexicographic.
    """

    attribute: str
    op: str  # '>=' or '<='
    value: str

    def _compare(self, lhs: str) -> bool:
        try:
            a: Union[float, str] = float(lhs)
            b: Union[float, str] = float(self.value)
        except ValueError:
            a, b = lhs.lower(), self.value.lower()
        return a >= b if self.op == ">=" else a <= b

    def matches(self, entry: Entry) -> bool:
        """True if any value satisfies the comparison."""
        return any(self._compare(v) for v in entry.get(self.attribute))


@dataclass(frozen=True)
class NotF:
    inner: "Filter"

    def matches(self, entry: Entry) -> bool:
        """True if the inner filter does not match."""
        return not self.inner.matches(entry)


@dataclass(frozen=True)
class AndF:
    parts: Tuple["Filter", ...]

    def matches(self, entry: Entry) -> bool:
        """True if every part matches."""
        return all(p.matches(entry) for p in self.parts)


@dataclass(frozen=True)
class OrF:
    parts: Tuple["Filter", ...]

    def matches(self, entry: Entry) -> bool:
        """True if any part matches."""
        return any(p.matches(entry) for p in self.parts)


Filter = Union[Equality, Presence, Compare, NotF, AndF, OrF]

_SIMPLE_RE = re.compile(r"^([A-Za-z][A-Za-z0-9_-]*)(>=|<=|=)(.*)$", re.DOTALL)


class _FilterParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> Filter:
        result = self._filter()
        if self.pos != len(self.text):
            raise FilterSyntaxError(
                f"trailing characters at {self.pos} in {self.text!r}"
            )
        return result

    def _expect(self, char: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != char:
            raise FilterSyntaxError(
                f"expected {char!r} at {self.pos} in {self.text!r}"
            )
        self.pos += 1

    def _filter(self) -> Filter:
        self._expect("(")
        if self.pos >= len(self.text):
            raise FilterSyntaxError(f"unterminated filter: {self.text!r}")
        head = self.text[self.pos]
        if head == "&":
            self.pos += 1
            parts = self._filter_list()
            node: Filter = AndF(tuple(parts))
        elif head == "|":
            self.pos += 1
            parts = self._filter_list()
            node = OrF(tuple(parts))
        elif head == "!":
            self.pos += 1
            node = NotF(self._filter())
        else:
            node = self._simple()
        self._expect(")")
        return node

    def _filter_list(self) -> List[Filter]:
        parts: List[Filter] = []
        while self.pos < len(self.text) and self.text[self.pos] == "(":
            parts.append(self._filter())
        if not parts:
            raise FilterSyntaxError(f"empty filter list in {self.text!r}")
        return parts

    def _simple(self) -> Filter:
        end = self.text.find(")", self.pos)
        if end == -1:
            raise FilterSyntaxError(f"unterminated filter: {self.text!r}")
        body = self.text[self.pos : end]
        match = _SIMPLE_RE.match(body)
        if match is None:
            raise FilterSyntaxError(f"malformed filter item {body!r}")
        attribute, op, value = match.groups()
        self.pos = end
        if op == "=":
            if value == "*":
                return Presence(attribute)
            return Equality(attribute, value)
        if not value:
            raise FilterSyntaxError(f"missing value in {body!r}")
        return Compare(attribute, op, value)


def parse_filter(text: str) -> Filter:
    """Parse *text* into a :class:`Filter`; raises :class:`FilterSyntaxError`."""
    return _FilterParser(text).parse()
