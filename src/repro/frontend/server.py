"""The front-end web server.

Apache-prefork-like: every in-flight request occupies one server process
out of ``max_processes``. When backend accesses stall, processes pile up
— the paper's observation that "processes trapped in accessing
overloaded backend resources essentially exacerbate the overall
performance".

An optional *admission* hook implements the centralized broker model:
it inspects each request before a process is allocated and may reject
it with 503 (see :class:`repro.core.centralized.CentralizedController`).

Web applications running here reach the broker tier through a
:class:`~repro.core.client.BrokerClient`; since the shard tier landed
they address a *service*, not a broker — with a
:class:`~repro.core.sharding.ShardDirectory` installed on the client,
each call resolves through the service's consistent-hash ring to the
owning shard's live leader, and single-broker services keep using the
static route table.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.pipeline import RequestContext
from ..errors import ConnectionClosed
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from ..sim.resources import Resource
from ..http.messages import HttpRequest, HttpResponse
from .app import WebApplication, qos_of, tenant_of

__all__ = ["FrontendWebServer"]

#: Admission hook signature: request -> (accept, reason).
AdmissionHook = Callable[[HttpRequest], tuple]


class FrontendWebServer:
    """Receives client requests and runs web applications."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        port: int = 80,
        max_processes: int = 150,
        admission: Optional[AdmissionHook] = None,
        throttle_level: Optional[int] = None,
        tenant_throttle=None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.node = node
        self.name = name or node.name
        self.admission = admission
        #: Optional :class:`~repro.core.autoscale.TenantThrottle`: each
        #: request bills one token against its ``x-tenant`` bucket and
        #: gets 429 (``frontend.throttle.rejected``) when the bucket is
        #: empty — "we refused", as opposed to backpressure 503s
        #: (``frontend.throttled``) and admission 503s
        #: (``frontend.rejected``).
        self.tenant_throttle = tenant_throttle
        #: Requests of this QoS class or worse get 503 while any broker
        #: backpressure signal is engaged; ``None`` disables throttling.
        self.throttle_level = throttle_level
        self._throttled_by: set = set()
        self.metrics = metrics or MetricsRegistry()
        self.processes = Resource(sim, max_processes)
        self.listener = node.listen_stream(port)
        self.address = node.address(port)
        self._apps: Dict[str, WebApplication] = {}
        # Hot-path metric handles (per-QoS ones resolved lazily).
        metrics_ = self.metrics
        self._requests = metrics_.handle("frontend.requests")
        self._completed = metrics_.handle("frontend.completed")
        self._response_time = metrics_.sample_handle("frontend.response_time")
        self._requests_by_qos: Dict[int, object] = {}
        self._completed_by_qos: Dict[int, object] = {}
        self._response_time_by_qos: Dict[int, object] = {}
        sim.process(self._accept_loop(), name=f"frontend:{self.name}")

    def register_app(self, app: WebApplication) -> None:
        """Mount *app* at its path."""
        self._apps[app.path] = app

    def set_throttled(self, engaged: bool, source: str) -> None:
        """Backpressure signal from a broker watermark transition.

        Register as a listener on a
        :class:`~repro.core.pipeline.BackpressureStage`; while any
        *source* is engaged, requests at ``throttle_level`` or worse
        are answered 503 before consuming a server process.
        """
        if engaged:
            self._throttled_by.add(source)
            self.metrics.increment("frontend.throttle.engaged")
        else:
            self._throttled_by.discard(source)
            self.metrics.increment("frontend.throttle.released")
        self.sim.trace(
            "frontend", "throttle",
            source=source, engaged=engaged, active=len(self._throttled_by),
        )

    @property
    def throttled(self) -> bool:
        """True while any broker's backpressure signal is engaged."""
        return bool(self._throttled_by)

    @property
    def busy_processes(self) -> int:
        return self.processes.in_use

    @property
    def queued_requests(self) -> int:
        return self.processes.queued

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.sim.process(self._session(connection))

    def _session(self, connection: StreamConnection):
        while True:
            try:
                envelope = yield connection.recv()
            except ConnectionClosed:
                return
            request = envelope.payload
            if not isinstance(request, HttpRequest):
                connection.send(HttpResponse.error(400, "not an HttpRequest"))
                continue
            qos = qos_of(request)
            self._requests.inc()
            by_qos = self._requests_by_qos
            counter = by_qos.get(qos)
            if counter is None:
                counter = by_qos[qos] = self.metrics.handle(
                    f"frontend.requests.qos{qos}"
                )
            counter.inc()
            # The end-to-end request context is born here, at the front
            # end; applications read `request.context` and their broker
            # calls extend the same per-request timeline.
            ctx = RequestContext.originate(now=self.sim._now, origin=self.name)
            ctx.qos_level = qos
            # Rebuild instead of dataclasses.replace(): replace() pays
            # per-call field introspection on this per-request path.
            request = HttpRequest(
                method=request.method,
                path=request.path,
                params=request.params,
                headers=request.headers,
                body=request.body,
                paths=request.paths,
                context=ctx,
            )

            if self.tenant_throttle is not None:
                now = self.sim.now
                tenant = tenant_of(request)
                if not self.tenant_throttle.allow(tenant, now):
                    self.metrics.increment("frontend.throttle.rejected")
                    self.metrics.increment(
                        f"frontend.throttle.rejected.qos{qos}"
                    )
                    self.metrics.increment(
                        f"frontend.throttle.rejected.{tenant}"
                    )
                    self.sim.trace(
                        "frontend", "tenant-throttled",
                        path=request.path, qos=qos, tenant=tenant,
                    )
                    ctx.record_stage(
                        "frontend-tenant-throttle", now, now, "throttled"
                    )
                    ctx.completed_at = now
                    obs = self.sim.obs
                    if obs is not None:
                        obs.finish(ctx, status="429")
                    connection.send(
                        HttpResponse.error(
                            429, f"tenant {tenant!r} rate limited"
                        )
                    )
                    continue

            if (
                self._throttled_by
                and self.throttle_level is not None
                and qos >= self.throttle_level
            ):
                now = self.sim.now
                self.metrics.increment("frontend.throttled")
                self.metrics.increment(f"frontend.throttled.qos{qos}")
                self.sim.trace(
                    "frontend", "throttled", path=request.path, qos=qos,
                    sources=len(self._throttled_by),
                )
                ctx.record_stage("frontend-throttle", now, now, "throttled")
                ctx.completed_at = now
                obs = self.sim.obs
                if obs is not None:
                    obs.finish(ctx, status="503")
                connection.send(
                    HttpResponse.error(503, "throttled: broker backpressure")
                )
                continue

            if self.admission is not None:
                admitted_at = self.sim.now
                accepted, reason = self.admission(request)
                ctx.record_stage(
                    "frontend-admission",
                    admitted_at,
                    self.sim.now,
                    "admitted" if accepted else reason,
                )
                if not accepted:
                    self.metrics.increment("frontend.rejected")
                    self.metrics.increment(f"frontend.rejected.qos{qos}")
                    self.sim.trace(
                        "frontend", "rejected",
                        path=request.path, qos=qos, reason=reason,
                    )
                    ctx.completed_at = self.sim.now
                    obs = self.sim.obs
                    if obs is not None:
                        obs.finish(ctx, status="503")
                    connection.send(HttpResponse.error(503, reason))
                    continue

            started = self.sim.now
            process_slot = self.processes.request()
            yield process_slot
            ctx.record_stage("frontend-process-wait", started, self.sim.now)
            app_started = self.sim.now
            try:
                response = yield from self._run_app(request)
            finally:
                self.processes.release(process_slot)
            now = self.sim._now
            ctx.record_stage("frontend-app", app_started, now)
            ctx.completed_at = now
            elapsed = now - started
            self._response_time.add(elapsed)
            rt_qos = self._response_time_by_qos.get(qos)
            if rt_qos is None:
                rt_qos = self._response_time_by_qos[qos] = (
                    self.metrics.sample_handle(f"frontend.response_time.qos{qos}")
                )
            rt_qos.add(elapsed)
            self._completed.inc()
            done_qos = self._completed_by_qos.get(qos)
            if done_qos is None:
                done_qos = self._completed_by_qos[qos] = self.metrics.handle(
                    f"frontend.completed.qos{qos}"
                )
            done_qos.inc()
            obs = self.sim.obs
            if obs is not None:
                obs.finish(ctx, status=str(response.status))
            if connection.closed:
                return
            connection.send(response)

    def _run_app(self, request: HttpRequest):
        app = self._apps.get(request.path)
        if app is None:
            self.metrics.increment("frontend.errors")
            return HttpResponse.error(404, f"no application at {request.path!r}")
        yield app.parse_time
        try:
            outcome = app.handler(self, request)
            if hasattr(outcome, "send"):
                outcome = yield from outcome
        except Exception as exc:  # noqa: BLE001 - app bugs become 500s
            self.metrics.increment("frontend.errors")
            return HttpResponse.error(500, f"{type(exc).__name__}: {exc}")
        if isinstance(outcome, HttpResponse):
            return outcome
        return HttpResponse.text(str(outcome))

    def close(self) -> None:
        """Stop accepting new connections."""
        self.listener.close()

    def __repr__(self) -> str:
        return f"<FrontendWebServer {self.address} busy={self.busy_processes}>"
