"""Front-end web server, application model, and API-based baseline."""

from .api_access import ApiBackendGateway
from .app import QOS_HEADER, WebApplication, qos_of
from .server import FrontendWebServer

__all__ = [
    "ApiBackendGateway",
    "WebApplication",
    "FrontendWebServer",
    "qos_of",
    "QOS_HEADER",
]
