"""Web application model for the front-end server.

A :class:`WebApplication` is a dynamic application ("CGI executable or
PHP/ASP script" in the paper's terms): a path plus a handler generator
``handler(frontend, request)`` that produces an :class:`HttpResponse`
(or a body string). Handlers access backend services through whatever
gateway they were constructed with — the API-based baseline or a broker
client — which is exactly the axis the paper's experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..http.messages import HttpRequest

__all__ = ["WebApplication", "qos_of", "tenant_of"]

#: Header carrying a request's QoS class (1 = highest priority).
QOS_HEADER = "x-qos"

#: Header naming the tenant a request bills against (rate limiting).
TENANT_HEADER = "x-tenant"


def qos_of(request: HttpRequest, default: int = 1) -> int:
    """The QoS class of *request*, from its ``x-qos`` header."""
    try:
        return int(request.headers.get(QOS_HEADER, default))
    except (TypeError, ValueError):
        return default


def tenant_of(request: HttpRequest, default: str = "public") -> str:
    """The tenant of *request*, from its ``x-tenant`` header.

    Requests without the header share the ``"public"`` bucket, so
    per-tenant throttling degrades gracefully to a global rate limit
    for untagged traffic.
    """
    tenant = request.headers.get(TENANT_HEADER, default)
    return str(tenant) if tenant else default


@dataclass(frozen=True)
class WebApplication:
    """A dynamic application mounted at *path* on the front end.

    ``parse_time`` models the non-backend work of the application
    (request parsing, HTML rendering) charged per invocation.
    """

    path: str
    handler: Callable
    name: str = ""
    parse_time: float = 0.0005

    @property
    def label(self) -> str:
        return self.name or self.path
