"""The API-based baseline: stateless, isolated, per-request backend access.

This is the access model the paper argues against (its Figure 1): every
backend operation pays connection establishment + authentication +
teardown, nothing is shared between application processes, no QoS, no
caching, no clustering. The :class:`ApiBackendGateway` implements it
faithfully so broker-vs-API comparisons are like-for-like. It is also
the contrast case for the shard tier: API callers must name a concrete
backend *address* per call, while broker callers name a *service* and
let the :class:`~repro.core.sharding.ShardDirectory` (or the classic
route table) resolve the serving broker.

All methods are ``yield from`` generators.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..db.client import DatabaseClient
from ..http.client import HttpClient
from ..http.messages import HttpRequest
from ..ldapdir.client import DirectoryClient
from ..ldapdir.tree import SCOPE_SUB
from ..mail.client import MailClient
from ..metrics import MetricsRegistry
from ..net.address import Address
from ..net.network import Node
from ..sim.core import Simulation

__all__ = ["ApiBackendGateway"]


class ApiBackendGateway:
    """Per-request backend access APIs, one connection per operation."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.metrics = metrics or MetricsRegistry()

    def _account(self, kind: str, started: float) -> None:
        self.metrics.increment(f"api.{kind}.calls")
        self.metrics.increment("api.connections")
        self.metrics.observe(f"api.{kind}.time", self.sim.now - started)

    # -- database ------------------------------------------------------

    def db_query(self, address: Address, sql: str):
        """Connect, authenticate, run one query, tear down."""
        started = self.sim.now
        connection = yield from DatabaseClient.connect(self.sim, self.node, address)
        try:
            result = yield from connection.query(sql)
        finally:
            yield from connection.close()
        self._account("db", started)
        return result

    # -- web -----------------------------------------------------------

    def http_get(self, address: Address, path: str, params: Optional[dict] = None):
        """One-shot HTTP GET with its own connection."""
        started = self.sim.now
        response = yield from HttpClient.get(self.sim, self.node, address, path, params)
        self._account("http", started)
        return response

    def http_request(self, address: Address, request: HttpRequest):
        """One-shot HTTP exchange with its own connection."""
        started = self.sim.now
        response = yield from HttpClient.fetch(self.sim, self.node, address, request)
        self._account("http", started)
        return response

    # -- directory -----------------------------------------------------

    def ldap_search(
        self,
        address: Address,
        base: str,
        scope: str = SCOPE_SUB,
        filter_expr: Optional[str] = None,
    ):
        """Connect, bind, search, unbind."""
        started = self.sim.now
        connection = yield from DirectoryClient.connect(self.sim, self.node, address)
        try:
            result = yield from connection.search(base, scope, filter_expr)
        finally:
            yield from connection.unbind()
        self._account("ldap", started)
        return result

    # -- mail ------------------------------------------------------------

    def mail_send(
        self, address: Address, sender: str, recipient: str, subject: str, body: str
    ):
        """Connect, greet, submit one message, quit."""
        started = self.sim.now
        connection = yield from MailClient.connect(self.sim, self.node, address)
        try:
            message_id = yield from connection.send(sender, recipient, subject, body)
        finally:
            yield from connection.quit()
        self._account("mail", started)
        return message_id

    def mail_list(self, address: Address, owner: str):
        """Connect, greet, list a mailbox, quit."""
        started = self.sim.now
        connection = yield from MailClient.connect(self.sim, self.node, address)
        try:
            ids = yield from connection.list(owner)
        finally:
            yield from connection.quit()
        self._account("mail", started)
        return ids
