"""Structured simulation tracing.

Attach a :class:`Tracer` to a :class:`Simulation` and instrumented
components (brokers, servers) emit time-stamped records through
``sim.trace(category, message, **fields)``. With no tracer attached,
tracing is a no-op costing one attribute check.

Records live in a bounded ring buffer, so tracing long experiments
cannot exhaust memory; :meth:`Tracer.select` filters by category and
time window and :meth:`Tracer.to_text` renders a readable log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """One human-readable log line.

        Fields render in sorted key order so records with equal content
        produce identical lines regardless of the keyword order at the
        ``sim.trace(...)`` call site (dicts preserve insertion order, so
        iterating unsorted would leak that order into the log).
        """
        extra = " ".join(f"{k}={self.fields[k]!r}" for k in sorted(self.fields))
        text = f"[{self.time:12.6f}] {self.category:<12} {self.message}"
        return f"{text} {extra}" if extra else text


class Tracer:
    """Bounded collector of :class:`TraceRecord`."""

    def __init__(self, limit: int = 100_000) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit!r}")
        self.limit = limit
        self._records: Deque[TraceRecord] = deque(maxlen=limit)
        self.dropped = 0

    def log(self, time: float, category: str, message: str, **fields: Any) -> None:
        """Record one entry (oldest entries roll off past the limit)."""
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(TraceRecord(time, category, message, fields))

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def select(
        self,
        category: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching the filters, in emission order."""
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            out.append(record)
        return out

    def categories(self) -> Dict[str, int]:
        """Record counts per category."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def to_text(self, **filters: Any) -> str:
        """Render (optionally filtered) records as a text log."""
        return "\n".join(record.render() for record in self.select(**filters))

    def clear(self) -> None:
        """Drop all records and reset the drop counter."""
        self._records.clear()
        self.dropped = 0

    def __repr__(self) -> str:
        return f"<Tracer records={len(self._records)} dropped={self.dropped}>"
