"""Conservative parallel simulation: independent partitions on real cores.

A :class:`ParallelSimulation` splits one logical model into named
*partitions*, each owning a private :class:`~repro.sim.core.Simulation`,
and executes them on a pool of worker processes. Synchronization is the
classic conservative time-window protocol (DESIGN.md §14):

* **Lookahead rule.** Every cross-partition message must arrive at
  least ``lookahead`` seconds after it is sent; the driver enforces
  this at :meth:`RemoteGateway.send`. ``lookahead`` must therefore be
  no larger than the minimum inter-partition link delay of the model.
* **Windowed execution.** Virtual time advances in windows of width
  ``lookahead``. Within a window every partition runs independently —
  no partition can observe another before the window's end, because
  anything sent during the window arrives at or after its edge.
* **Envelope batches at the barrier.** At each window edge the workers
  stop, serialize the messages their partitions emitted during the
  window (:func:`repro.net.message.encode_batch`), and the coordinator
  routes the batches to the destination partitions, which inject them
  before the next window starts.

Determinism contract: a partition's trajectory depends only on its own
seed, its model, and the (sorted) sequence of cross-partition messages
it receives — never on the number of workers or their scheduling.
``workers=1`` runs the same windowed protocol inline in the calling
process; ``workers=N`` forks N OS processes. Both produce identical
results for the same partition set.

The driver deliberately does **not** try to parallelize a single
arbitrary :class:`Simulation`: the model must be partitioned by the
caller (see ``run_sharded_qos_experiment(workers=N)`` for the sharded
§V.B topology, which partitions by shard).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import SimError
from ..net.message import decode_batch, encode_batch
from .core import Simulation

__all__ = [
    "RemoteEnvelope",
    "RemoteGateway",
    "PartitionSpec",
    "PartitionResult",
    "ParallelSimulation",
    "available_workers",
]


def available_workers() -> int:
    """Usable worker-process count (CPU affinity aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class RemoteEnvelope:
    """One cross-partition message in flight between windows."""

    __slots__ = ("source", "destination", "sent_at", "arrives_at", "payload")

    def __init__(
        self,
        source: str,
        destination: str,
        sent_at: float,
        arrives_at: float,
        payload: Any,
    ) -> None:
        self.source = source
        self.destination = destination
        self.sent_at = sent_at
        self.arrives_at = arrives_at
        self.payload = payload

    def __repr__(self) -> str:
        return (
            f"RemoteEnvelope({self.source!r} -> {self.destination!r}, "
            f"sent_at={self.sent_at!r}, arrives_at={self.arrives_at!r}, "
            f"payload={self.payload!r})"
        )


class RemoteGateway:
    """A partition's portal to the rest of the topology.

    Model code sends with :meth:`send`; the driver drains the outbox at
    every window edge and injects inbound envelopes before the next
    window. Receive handlers run as simulation events at the envelope's
    arrival time, so remote messages are indistinguishable from local
    ones apart from the mandatory ``>= lookahead`` delay.
    """

    def __init__(self, name: str, sim: Simulation, lookahead: float) -> None:
        self.name = name
        self.sim = sim
        self.lookahead = lookahead
        self._outbox: List[RemoteEnvelope] = []
        self._handler: Optional[Callable[[RemoteEnvelope], None]] = None
        #: Counters surfaced in partition results for tests/ops.
        self.sent = 0
        self.received = 0

    def on_receive(self, handler: Callable[[RemoteEnvelope], None]) -> None:
        """Install the callable invoked (at arrival time) per envelope."""
        self._handler = handler

    def send(self, destination: str, payload: Any, delay: float) -> None:
        """Emit *payload* to partition *destination* after *delay*.

        *delay* models the inter-partition link and must be at least the
        driver's lookahead — that inequality is what makes windowed
        execution exact rather than approximate.
        """
        if delay < self.lookahead:
            raise SimError(
                f"cross-partition delay {delay!r} violates the lookahead "
                f"rule (>= {self.lookahead!r}); widen the link delay or "
                f"lower the ParallelSimulation lookahead"
            )
        now = self.sim.now
        self._outbox.append(
            RemoteEnvelope(self.name, destination, now, now + delay, payload)
        )
        self.sent += 1

    def _drain(self) -> List[RemoteEnvelope]:
        out = self._outbox
        self._outbox = []
        return out

    def _inject(self, envelopes: List[RemoteEnvelope]) -> None:
        """Schedule deliveries for the next window's inbound batch.

        Envelopes are sorted by ``(arrives_at, source, sent_at)`` before
        scheduling so the injection order — and therefore the partition's
        trajectory — is independent of worker assignment.
        """
        if not envelopes:
            return
        handler = self._handler
        if handler is None:
            raise SimError(
                f"partition {self.name!r} received envelopes but installed "
                f"no on_receive handler"
            )
        sim = self.sim
        for env in sorted(
            envelopes, key=lambda e: (e.arrives_at, e.source, e.sent_at)
        ):
            delay = env.arrives_at - sim.now
            if delay < 0:
                raise SimError(
                    f"causality violation: envelope into {self.name!r} "
                    f"arrives at {env.arrives_at!r} < now {sim.now!r}"
                )
            event = sim.event()
            event.callbacks.append(self._deliver)
            event.succeed(env, delay=delay)

    def _deliver(self, event: Any) -> None:
        self.received += 1
        self._handler(event.value)  # type: ignore[misc]


class PartitionSpec:
    """Recipe for one partition: a name, a seed, and a builder.

    ``builder(sim, gateway)`` constructs the partition's model inside
    *sim* and returns a ``finalize() -> Any`` callable producing the
    partition's (picklable) result after the run. Builders execute in
    the worker process; with the default fork start method they may be
    closures over scenario state.
    """

    __slots__ = ("name", "seed", "builder")

    def __init__(
        self,
        name: str,
        builder: Callable[[Simulation, RemoteGateway], Callable[[], Any]],
        seed: int = 0,
    ) -> None:
        self.name = name
        self.builder = builder
        self.seed = seed

    def __repr__(self) -> str:
        return f"PartitionSpec(name={self.name!r}, seed={self.seed!r})"


class PartitionResult:
    """A partition's finalized result plus gateway traffic counters."""

    __slots__ = ("name", "value", "sent", "received")

    def __init__(self, name: str, value: Any, sent: int, received: int) -> None:
        self.name = name
        self.value = value
        self.sent = sent
        self.received = received

    def __repr__(self) -> str:
        return (
            f"PartitionResult(name={self.name!r}, sent={self.sent}, "
            f"received={self.received})"
        )


class _PartitionRuntime:
    """A built partition living inside a worker (or inline)."""

    __slots__ = ("spec", "sim", "gateway", "finalize")

    def __init__(self, spec: PartitionSpec, lookahead: float) -> None:
        self.spec = spec
        self.sim = Simulation(seed=spec.seed)
        self.gateway = RemoteGateway(spec.name, self.sim, lookahead)
        self.finalize = spec.builder(self.sim, self.gateway)

    def advance(self, t_end: float, inbound: List[RemoteEnvelope]) -> bytes:
        self.gateway._inject(inbound)
        self.sim.run(until=t_end)
        return encode_batch(self.gateway._drain())

    def result(self) -> PartitionResult:
        return PartitionResult(
            self.spec.name,
            self.finalize(),
            self.gateway.sent,
            self.gateway.received,
        )


def _worker_main(specs: Sequence[PartitionSpec], lookahead: float, conn) -> None:
    """Worker process body: build partitions, serve the window protocol."""
    try:
        runtimes = {s.name: _PartitionRuntime(s, lookahead) for s in specs}
        conn.send(("ready", list(runtimes)))
        while True:
            message = conn.recv()
            op = message[0]
            if op == "advance":
                _op, t_end, inbound_by_name = message
                out: List[bytes] = []
                for name, runtime in runtimes.items():
                    batch = decode_batch(inbound_by_name.get(name, b""))
                    out.append(runtime.advance(t_end, batch))
                conn.send(("done", out))
            elif op == "finish":
                conn.send(
                    ("results", [r.result() for r in runtimes.values()])
                )
                return
            else:  # pragma: no cover - defensive
                raise SimError(f"unknown coordinator op: {op!r}")
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise


class ParallelSimulation:
    """Coordinator for windowed parallel execution of partitions.

    Parameters
    ----------
    partitions:
        The :class:`PartitionSpec` recipes. Each becomes one
        sub-simulation; partitions are assigned to workers round-robin.
    lookahead:
        Window width — must not exceed the minimum cross-partition link
        delay (the gateway enforces the per-message inequality).
    workers:
        OS processes to fork. ``1`` (the default) runs the same
        protocol inline without forking; values above the partition
        count are clamped.
    """

    def __init__(
        self,
        partitions: Sequence[PartitionSpec],
        lookahead: float,
        workers: int = 1,
    ) -> None:
        if not partitions:
            raise SimError("ParallelSimulation needs at least one partition")
        if lookahead <= 0:
            raise SimError(f"lookahead must be positive: {lookahead!r}")
        if workers < 1:
            raise SimError(f"workers must be >= 1: {workers!r}")
        names = [p.name for p in partitions]
        if len(set(names)) != len(names):
            raise SimError(f"duplicate partition names: {names!r}")
        self.partitions = list(partitions)
        self.lookahead = float(lookahead)
        self.workers = min(workers, len(self.partitions))

    # -- shared window bookkeeping -------------------------------------

    def _route(
        self,
        batches: Sequence[bytes],
        mailbox: Dict[str, List[RemoteEnvelope]],
    ) -> None:
        known = {p.name for p in self.partitions}
        for blob in batches:
            for env in decode_batch(blob):
                if env.destination not in known:
                    raise SimError(
                        f"envelope for unknown partition "
                        f"{env.destination!r} from {env.source!r}"
                    )
                mailbox.setdefault(env.destination, []).append(env)

    def _windows(self, until: float):
        t = 0.0
        while t < until:
            t_end = min(t + self.lookahead, until)
            yield t_end
            t = t_end

    # -- execution strategies ------------------------------------------

    def run(self, until: float) -> Dict[str, PartitionResult]:
        """Advance every partition to virtual time *until*.

        Returns ``{partition name: PartitionResult}``. Unlike
        :meth:`Simulation.run`, *until* is mandatory: "run to
        exhaustion" is not well defined across partitions that might
        wake each other indefinitely.
        """
        if until <= 0:
            raise SimError(f"until must be positive: {until!r}")
        if self.workers == 1:
            return self._run_inline(until)
        return self._run_forked(until)

    def _run_inline(self, until: float) -> Dict[str, PartitionResult]:
        runtimes = {
            spec.name: _PartitionRuntime(spec, self.lookahead)
            for spec in self.partitions
        }
        mailbox: Dict[str, List[RemoteEnvelope]] = {}
        for t_end in self._windows(until):
            inbound, mailbox = mailbox, {}
            batches = [
                runtime.advance(t_end, inbound.get(name, []))
                for name, runtime in runtimes.items()
            ]
            self._route(batches, mailbox)
        if mailbox:
            raise SimError(
                f"{sum(map(len, mailbox.values()))} envelope(s) still in "
                f"flight at until={until!r}; extend the run to deliver them"
            )
        return {name: r.result() for name, r in runtimes.items()}

    def _run_forked(self, until: float) -> Dict[str, PartitionResult]:
        ctx = multiprocessing.get_context("fork")
        assignment: List[List[PartitionSpec]] = [
            self.partitions[i :: self.workers] for i in range(self.workers)
        ]
        owner: Dict[str, int] = {}
        for index, specs in enumerate(assignment):
            for spec in specs:
                owner[spec.name] = index
        conns = []
        procs = []
        try:
            for index, specs in enumerate(assignment):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(specs, self.lookahead, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            for conn in conns:
                self._expect(conn, "ready")
            mailbox: Dict[str, List[RemoteEnvelope]] = {}
            for t_end in self._windows(until):
                inbound, mailbox = mailbox, {}
                for index, conn in enumerate(conns):
                    per_worker = {
                        spec.name: encode_batch(inbound.get(spec.name, []))
                        for spec in assignment[index]
                        if inbound.get(spec.name)
                    }
                    conn.send(("advance", t_end, per_worker))
                for conn in conns:
                    batches = self._expect(conn, "done")
                    self._route(batches, mailbox)
            if mailbox:
                raise SimError(
                    f"{sum(map(len, mailbox.values()))} envelope(s) still "
                    f"in flight at until={until!r}; extend the run"
                )
            results: Dict[str, PartitionResult] = {}
            for conn in conns:
                conn.send(("finish",))
            for conn in conns:
                for result in self._expect(conn, "results"):
                    results[result.name] = result
            return {spec.name: results[spec.name] for spec in self.partitions}
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5.0)

    @staticmethod
    def _expect(conn, expected: str):
        message = conn.recv()
        if message[0] == "error":
            raise SimError(f"parallel worker failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol bug
            raise SimError(
                f"protocol error: expected {expected!r}, got {message[0]!r}"
            )
        return message[1]
