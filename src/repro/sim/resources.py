"""Shared resources for simulation processes.

* :class:`Resource` — a capacity-limited resource acquired FCFS.
* :class:`PriorityResource` — like :class:`Resource`, but waiters are
  served lowest-priority-number-first (ties FCFS).
* :class:`Store` — an unbounded-or-bounded FIFO buffer of items with
  blocking ``put``/``get``.

Usage pattern (inside a process generator)::

    req = resource.request()
    yield req
    try:
        yield service_time
    finally:
        resource.release(req)

A waiter that gives up (for example after losing an ``AnyOf`` race with a
timeout) must call :meth:`Resource.cancel` / :meth:`Store.cancel` on its
pending event so the slot or item is not lost.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Deque, List, Optional, Set, Tuple

from ..errors import SimError
from .core import Event, Simulation

__all__ = ["Request", "Resource", "PriorityResource", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "cancelled")

    def __init__(self, resource: "Resource", priority: int) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.cancelled = False


class Resource:
    """A resource with *capacity* slots, granted in queue order.

    Models worker pools (Apache's ``MaxClients``), CPU tokens, and any
    other mutual-exclusion-with-capacity construct.
    """

    def __init__(self, sim: Simulation, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._users: Set[Request] = set()
        self._queue: List[Tuple[int, int, Request]] = []
        self._seq = count()

    @property
    def in_use(self) -> int:
        """Number of granted, unreleased slots."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiters not yet granted a slot."""
        return sum(1 for _, _, req in self._queue if not req.cancelled)

    def request(self, priority: int = 0) -> Request:
        """Return an event that succeeds when a slot is granted."""
        req = Request(self, priority)
        heapq.heappush(self._queue, (priority, next(self._seq), req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted slot."""
        if request not in self._users:
            raise SimError("release() of a request that does not hold a slot")
        self._users.discard(request)
        self._grant()

    def cancel(self, request: Request) -> None:
        """Withdraw a request; safe whether or not it was granted."""
        if request in self._users:
            self.release(request)
        elif not request.triggered:
            request.cancelled = True

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _, _, req = heapq.heappop(self._queue)
            if req.cancelled:
                continue
            self._users.add(req)
            req.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters pass an explicit priority.

    Lower numbers are served first; equal priorities are FCFS. (The base
    class already implements the mechanics; this subclass exists to make
    call sites self-documenting.)
    """


class StorePut(Event):
    """Pending insertion of an item into a :class:`Store`."""

    __slots__ = ("item", "cancelled")

    def __init__(self, sim: Simulation, item: Any) -> None:
        super().__init__(sim)
        self.item = item
        self.cancelled = False


class StoreGet(Event):
    """Pending retrieval of an item from a :class:`Store`."""

    __slots__ = ("cancelled",)

    def __init__(self, sim: Simulation) -> None:
        super().__init__(sim)
        self.cancelled = False


class Store:
    """A FIFO buffer of items with blocking ``put``/``get``.

    With the default infinite capacity, ``put`` always succeeds
    immediately (it still returns an event, already triggered).
    """

    def __init__(self, sim: Simulation, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        return sum(1 for g in self._getters if not g.cancelled)

    def put(self, item: Any) -> StorePut:
        """Return an event that succeeds once *item* is buffered."""
        event = StorePut(self.sim, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Return an event that succeeds with the next item."""
        event = StoreGet(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending put/get (no-op if already triggered)."""
        if isinstance(event, (StorePut, StoreGet)) and not event.triggered:
            event.cancelled = True

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move buffered-or-pending items to waiting getters first.
            while self._getters and (self.items or self._putters):
                getter = self._getters.popleft()
                if getter.cancelled:
                    progressed = True
                    continue
                if not self.items:
                    # Pull directly from a putter (zero-copy handoff).
                    if not self._admit_one_putter():
                        self._getters.appendleft(getter)
                        break
                getter.succeed(self.items.popleft())
                progressed = True
            # Fill remaining buffer space from putters.
            while self._putters and len(self.items) < self.capacity:
                if not self._admit_one_putter():
                    break
                progressed = True

    def _admit_one_putter(self) -> bool:
        while self._putters:
            putter = self._putters.popleft()
            if putter.cancelled:
                continue
            self.items.append(putter.item)
            putter.succeed()
            return True
        return False
