"""Discrete-event simulation kernel.

A :class:`Simulation` owns a virtual clock and an event heap. Model code
is written as Python generator functions ("processes") that ``yield``
:class:`Event` objects to wait on; when an event triggers, the process
resumes with the event's value (or the event's exception is thrown into
the generator). Composable "blocking" calls are generators used with
``yield from`` that terminate with ``return value``.

The design follows the well-known SimPy architecture but is implemented
from scratch, exposing only what this project needs: events, timeouts,
processes (with interrupts), and the ``AnyOf`` / ``AllOf`` combinators.

Two wait idioms are supported. The classic one yields an event::

    yield sim.timeout(3.0)

The kernel-native fast idiom yields a bare delay (``float`` or ``int``
seconds) and the dispatcher parks the process on a private, reusable
"tick" event — no :class:`Timeout` object, no pool traffic, no
allocation::

    yield 3.0

Both resume the process with ``None`` after the delay and consume one
scheduling sequence number at the yield point, so converting a direct
``yield sim.timeout(d)`` into ``yield d`` leaves seeded trajectories
byte-identical (DESIGN.md §14).

Scheduling internals (the "batched dispatch" layout, DESIGN.md §14):
entries are ``(when, key, event)`` 3-tuples where ``key`` is a global
monotonic sequence number, biased negative for :data:`URGENT` entries so
urgent bookkeeping still dispatches first at equal times. New entries
are not pushed onto the heap eagerly; they collect in a small pending
batch and the run loop merges batch and heap by ``(when, key)``. The
overwhelmingly common single-successor case then costs one
``heappushpop`` (one sift) instead of a push+pop pair — and when the
new entry is already the earliest (zero-delay wakes), no heap traffic
at all.

Example::

    sim = Simulation(seed=1)

    def worker(sim, results):
        yield sim.timeout(3.0)
        results.append(sim.now)

    results = []
    sim.process(worker(sim, results))
    sim.run()
    assert results == [3.0]
"""

from __future__ import annotations

import heapq
import sys
from itertools import count
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from ..errors import (
    EventAlreadyTriggered,
    EventNotTriggered,
    Interrupt,
    SimError,
    StopSimulation,
)
from .rng import RngRegistry

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Simulation",
    "URGENT",
    "NORMAL",
    "ProcessGenerator",
]

#: Scheduling priority for bookkeeping events that must run before model
#: events scheduled at the same instant (process initialization,
#: interrupts).
URGENT = 0

#: Default scheduling priority for model events.
NORMAL = 1

#: Key bias applied to URGENT entries: at equal times an urgent entry
#: always sorts before every normal entry (whose keys are the raw,
#: non-negative sequence numbers), while urgent entries keep sequence
#: order among themselves. This reproduces the old ``(when, priority,
#: seq)`` total order with one fewer tuple slot to compare.
_URGENT_BIAS = 1 << 62

#: Sentinel marking an event that has not triggered yet.
_PENDING = object()

#: Type alias for process generator functions' return value.
ProcessGenerator = Generator["Event", Any, Any]

#: Maximum number of retired :class:`Timeout` objects kept for reuse.
_TIMEOUT_POOL_CAP = 1024

_heappush = heapq.heappush
_heappop = heapq.heappop
_heappushpop = heapq.heappushpop


class Event:
    """A happening that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules it on the simulation heap. When the
    heap pops it, the event is *processed*: its callbacks run and any
    waiting processes resume.

    The first process to wait on an event occupies the ``_waiter`` fast
    slot instead of the ``callbacks`` list; the dispatcher resumes it
    inline without a callback call. Later subscribers (more processes,
    conditions, transport deliveries) append to ``callbacks`` as
    always, and dispatch order is waiter first, then callbacks — i.e.
    subscription order, exactly as before the slot existed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused", "_waiter")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        #: Callables invoked with this event when it is processed. Set to
        #: ``None`` once processed, so late subscribers can detect that.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: ``True`` if a failure has been handled and must not crash the run.
        self.defused = False
        #: First waiting process (dispatch fast path), if any.
        self._waiter: Optional["Process"] = None

    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed` or :meth:`fail` was called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded. Raises if still pending."""
        if self._value is _PENDING:
            raise EventNotTriggered(f"{self!r} has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event triggered with (or its exception)."""
        if self._value is _PENDING:
            raise EventNotTriggered(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with *value* after *delay*."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        if delay == 0.0:
            self.sim.wake(self)
        else:
            self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with *exception*.

        Processes waiting on the event will have the exception thrown
        into them. If nothing waits on a failed event when it is
        processed, the simulation run aborts with the exception (unless
        :attr:`defused` is set).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        if delay == 0.0:
            self.sim.wake(self)
        else:
            self.sim._schedule(self, delay)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class _Tick(Event):
    """A process's private, reusable delay event (the ``yield 3.0`` idiom).

    A tick is never handed to model code: it exists only between the
    dispatcher scheduling it and the dispatcher resuming its owner, so
    it needs no value plumbing, never fails, and is reused for every
    bare-delay wait of its process. An interrupted wait orphans the
    in-flight tick (the owner allocates a fresh one next time) so a
    stale heap entry can never resume the process early.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulation") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None

    def __repr__(self) -> str:
        return f"<_Tick at {id(self):#x}>"


class _Interruption(Event):
    """Urgent bookkeeping event carrying an :class:`Interrupt` to a process."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.sim)
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self._waiter = process
        self.sim._schedule(self, 0.0, priority=URGENT)


class Process(Event):
    """A running generator; also an event that triggers when it finishes.

    The process succeeds with the generator's ``return`` value, or fails
    with any exception the generator raises.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "name", "_rcb", "_tick")

    def __init__(
        self, sim: "Simulation", generator: ProcessGenerator, name: str = ""
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: Cached bound resume callback — one allocation per process
        #: instead of one per wait.
        self._rcb = self._resume
        #: Reusable bare-delay tick event (created on first float wait).
        self._tick: Optional[_Tick] = None
        #: The event the generator currently waits on.
        self._target: Optional[Event] = None
        init = Event(sim)
        init._ok = True
        init._value = None
        init._waiter = self
        sim._schedule(init, 0.0, priority=URGENT)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process is detached from whatever event it was waiting on;
        that event stays valid and may trigger later without affecting
        the process (its subscription has been removed).
        """
        if self._value is not _PENDING:
            raise SimError("cannot interrupt a terminated process")
        target = self._target
        if target is not None:
            if target._waiter is self:
                target._waiter = None
                if target is self._tick:
                    # The tick stays scheduled; orphan it so the next
                    # bare-delay wait cannot alias the stale heap entry.
                    self._tick = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._rcb)
                except ValueError:
                    pass
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*.

        This is the out-of-line twin of the dispatch fast paths inlined
        in :meth:`Simulation.run`; it serves waits that went through the
        ``callbacks`` list (second and later subscribers, conditions)
        and the :meth:`Simulation._step` slow path. The two must stay
        behaviourally identical.
        """
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                # The failure is being delivered, hence handled.
                event.defused = True
                target = self._throw(event._value)
        except StopIteration as exc:
            self._ok = True
            self._value = exc.value
            sim.wake(self)
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._ok = False
            self._value = exc
            sim.wake(self)
        else:
            sim._advance(self, target)
        sim._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """An event that triggers once *evaluate* is satisfied by sub-events.

    The success value is a ``dict`` mapping each already-succeeded
    sub-event to its value, in original order. If any sub-event fails
    before the condition triggers, the condition fails with the same
    exception.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulation",
        events: Iterable[Event],
        evaluate: Callable[[List[Event], int], bool],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for event in self._events:
            if event.sim is not sim:
                raise SimError("all events must belong to the same Simulation")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    def _collect_values(self) -> Dict[Event, Any]:
        # Only *processed* events count as having happened: a Timeout is
        # "triggered" from the instant it is created (it is pre-scheduled),
        # but it has not occurred until the heap pops it.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }


def _evaluate_any(events: List[Event], count: int) -> bool:
    """Condition evaluator: satisfied once a single sub-event triggered."""
    return count >= 1


def _evaluate_all(events: List[Event], count: int) -> bool:
    """Condition evaluator: satisfied once every sub-event triggered."""
    return count == len(events)


class AnyOf(Condition):
    """Triggers as soon as one of *events* triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim, events, _evaluate_any)


class AllOf(Condition):
    """Triggers once all of *events* have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim, events, _evaluate_all)


class Simulation:
    """The event loop: virtual clock, event heap, and RNG registry.

    Parameters
    ----------
    seed:
        Master seed for the deterministic RNG substreams returned by
        :meth:`rng`. Two simulations built with the same seed and the
        same model code produce identical trajectories.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_pending",
        "_pending_append",
        "_counter",
        "_rngs",
        "seed",
        "_active_process",
        "_timeout_pool",
        "tracer",
        "obs",
    )

    def __init__(self, seed: int = 0, tracer: Optional[Any] = None) -> None:
        self._now = 0.0
        self._heap: List[Any] = []
        #: Entries scheduled since the dispatcher last chose an event.
        #: The run loop merges this batch against the heap by
        #: ``(when, key)`` — see the module docstring. The list object's
        #: identity is load-bearing (``_pending_append`` is bound once).
        self._pending: List[Any] = []
        self._pending_append = self._pending.append
        self._counter = count()
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self._active_process: Optional[Process] = None
        #: Retired Timeout objects available for reuse (see :meth:`timeout`).
        self._timeout_pool: List[Timeout] = []
        #: Optional :class:`repro.sim.trace.Tracer`; see :meth:`trace`.
        self.tracer = tracer
        #: Optional :class:`repro.obs.spans.TraceCollector`; instrumented
        #: completion points (broker client, front end) call
        #: ``obs.finish(ctx)`` when this is set. ``None`` (the default)
        #: keeps tracing disabled at the cost of one attribute check —
        #: the obs layer's overhead contract (DESIGN.md §10).
        self.obs: Optional[Any] = None

    def trace(self, category: str, message: str, **fields: Any) -> None:
        """Emit a trace record if a tracer is attached (else a no-op)."""
        if self.tracer is not None:
            self.tracer.log(self._now, category, message, **fields)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds with *value* after *delay* seconds.

        Retired timeouts are pooled: the run loop recycles a processed
        :class:`Timeout` when nothing else references it (verified via
        the interpreter refcount), so steady-state runs allocate almost
        no timeout objects. Processes that just need to sleep should
        prefer the bare-delay idiom (``yield delay``), which skips this
        factory entirely.
        """
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        timeout = pool.pop()
        timeout.delay = delay
        timeout._value = value
        self._pending_append((self._now + delay, next(self._counter), timeout))
        return timeout

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start *generator* as a concurrent process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that triggers when any of *events* does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that triggers when all of *events* have."""
        return AllOf(self, events)

    def rng(self, stream: str):
        """A deterministic ``random.Random`` for the named substream."""
        return self._rngs.stream(stream)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def wake(self, event: Event) -> None:
        """Schedule *event* for dispatch at the current instant.

        The single zero-delay fast path behind :meth:`Event.succeed`,
        :meth:`Event.fail` and process termination — previously five
        hand-inlined heap pushes. Entries land in the pending batch, so
        a wake costs a tuple append; the dispatcher usually consumes it
        without any heap traffic.
        """
        self._pending_append((self._now, next(self._counter), event))

    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        key = next(self._counter)
        if priority == URGENT:
            key -= _URGENT_BIAS
        self._pending_append((self._now + delay, key, event))

    def _flush_pending(self) -> None:
        """Move the pending batch onto the heap (slow-path bookkeeping)."""
        pending = self._pending
        if pending:
            heap = self._heap
            for item in pending:
                _heappush(heap, item)
            del pending[:]

    def _dispatch(self, event: Event) -> None:
        """Process one popped event — the out-of-line dispatch used by
        :meth:`_step`; the run loop inlines the same logic for speed."""
        callbacks = event.callbacks
        event.callbacks = None
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event.defused:
            # An unhandled failure: abort the run loudly rather than
            # letting errors pass silently.
            raise event._value

    def _advance(self, waiter: Process, target: Any) -> None:
        """Park *waiter* on the *target* its generator just yielded.

        Handles every wait shape: bare delays (arming the process's
        reusable tick), pending events (subscribe via the ``_waiter``
        slot or the callbacks list), already-processed events (their
        outcome is delivered immediately and the generator advances
        again), and invalid yields (the generator is closed and the
        process fails). The run loop inlines the hot cases of this
        logic — keep the two in sync. The caller manages
        ``_active_process``.
        """
        while True:
            cls = target.__class__
            if cls is float or cls is int:
                if target >= 0:
                    tick = waiter._tick
                    if tick is None:
                        tick = waiter._tick = _Tick(self)
                    tick._waiter = waiter
                    waiter._target = tick
                    self._pending_append(
                        (self._now + target, next(self._counter), tick)
                    )
                    return
                ok = False
                value: Any = ValueError(f"negative timeout delay: {target!r}")
            elif isinstance(target, Event):
                if target.sim is not self:
                    raise SimError("event belongs to a different Simulation")
                tcbs = target.callbacks
                if tcbs is not None:
                    if target._waiter is None and not tcbs:
                        target._waiter = waiter
                    else:
                        tcbs.append(waiter._rcb)
                    waiter._target = target
                    return
                # Already processed: consume its outcome immediately.
                ok = target._ok
                value = target._value
                if not ok:
                    target.defused = True
            else:
                exc = SimError(
                    f"process {waiter.name!r} yielded {target!r}, expected an Event"
                )
                waiter._generator.close()
                waiter._ok = False
                waiter._value = exc
                self.wake(waiter)
                return
            try:
                if ok:
                    target = waiter._send(value)
                else:
                    target = waiter._throw(value)
            except StopIteration as stop:
                waiter._ok = True
                waiter._value = stop.value
                self.wake(waiter)
                return
            except BaseException as failure:  # noqa: BLE001 - propagate via event
                waiter._ok = False
                waiter._value = failure
                self.wake(waiter)
                return

    def _step(self) -> None:
        """Pop and process one event; used by tests and the run loop's
        slow path (the main loop inlines this body for speed)."""
        self._flush_pending()
        when, _key, event = _heappop(self._heap)
        self._now = when
        self._dispatch(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._flush_pending()
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Any = None) -> Any:
        """Execute events until the heap empties, *until* time passes, or
        an *until* event triggers.

        ``until`` may be ``None`` (run to exhaustion), a number (run until
        the clock would pass it; the clock is then set to it), or an
        :class:`Event` (run until it triggers; its value is returned).
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.callbacks is None:
                return until.value if until.ok else self._raise(until)
            until.callbacks.append(self._stop_on_event)
        elif isinstance(until, (int, float)):
            if until < self._now:
                raise ValueError(f"until={until!r} is in the past (now={self._now!r})")
            stop_at = float(until)
        else:
            raise TypeError(f"until must be None, a number, or an Event: {until!r}")

        # The dispatch below is `_step` batched and inlined: heapq, the
        # heap, and the pending batch are bound to locals; the next
        # entry is chosen by merging the pending batch against the heap
        # (one `heappushpop`, or no heap traffic when the batch entry is
        # already the earliest); tick and timeout events resume their
        # waiting process without a callback call; and retired Timeout
        # objects are recycled into the pool when the refcount proves
        # nothing else can observe them (the two references are the
        # `event` local and getrefcount's argument — a Condition, a
        # waiting process `_target`, or model code holding the timeout
        # keeps the count higher).
        heap = self._heap
        pending = self._pending
        pending_append = self._pending_append
        pop = _heappop
        push = _heappush
        pushpop = _heappushpop
        counter = self._counter
        getrefcount = sys.getrefcount
        pool = self._timeout_pool
        pool_cap = _TIMEOUT_POOL_CAP
        horizon = float("inf") if stop_at is None else stop_at
        target = None
        try:
            while True:
                # ---- select the next entry (exact (when, key) merge) --
                if pending:
                    if len(pending) == 1:
                        item = pending.pop()
                        if heap:
                            # heappushpop returns `item` untouched when it
                            # is already <= heap[0] — the exact merge.
                            item = pushpop(heap, item)
                    else:
                        # Burst of schedules: fall back to the heap.
                        for it in pending:
                            push(heap, it)
                        del pending[:]
                        item = pop(heap)
                elif heap:
                    item = pop(heap)
                else:
                    break
                when, _key, event = item
                if when > horizon:
                    push(heap, item)
                    break
                item = None  # drop the tuple's reference for pool recycling
                self._now = when
                # ---- dispatch ----------------------------------------
                cls = event.__class__
                if cls is _Tick:
                    # Bare-delay wake: resume the owner directly; the
                    # sleep-loop continuation (yield another delay)
                    # re-arms this very tick with zero object traffic.
                    waiter = event._waiter
                    if waiter is None:
                        continue  # orphaned by an interrupt
                    event._waiter = None
                    self._active_process = waiter
                    try:
                        target = waiter._send(None)
                    except StopIteration as exc:
                        waiter._ok = True
                        waiter._value = exc.value
                        pending_append((when, next(counter), waiter))
                    except BaseException as exc:  # noqa: BLE001
                        waiter._ok = False
                        waiter._value = exc
                        pending_append((when, next(counter), waiter))
                    else:
                        tcls = target.__class__
                        if (tcls is float or tcls is int) and target >= 0:
                            # waiter._target is already this tick.
                            event._waiter = waiter
                            pending_append((when + target, next(counter), event))
                        else:
                            self._advance(waiter, target)
                    self._active_process = None
                    continue
                cbs = event.callbacks
                event.callbacks = None
                waiter = event._waiter
                if waiter is not None:
                    # Inline twin of Process._resume/_advance — keep in sync.
                    event._waiter = None
                    self._active_process = waiter
                    deliver = event
                    while True:
                        try:
                            if deliver._ok:
                                target = waiter._send(deliver._value)
                            else:
                                deliver.defused = True
                                target = waiter._throw(deliver._value)
                        except StopIteration as exc:
                            waiter._ok = True
                            waiter._value = exc.value
                            pending_append((when, next(counter), waiter))
                            break
                        except BaseException as exc:  # noqa: BLE001
                            waiter._ok = False
                            waiter._value = exc
                            pending_append((when, next(counter), waiter))
                            break
                        tcls = target.__class__
                        if tcls is float or tcls is int:
                            if target < 0:
                                self._advance(waiter, target)
                                break
                            tick = waiter._tick
                            if tick is None:
                                tick = waiter._tick = _Tick(self)
                            tick._waiter = waiter
                            waiter._target = tick
                            pending_append((when + target, next(counter), tick))
                            break
                        if not isinstance(target, Event):
                            self._advance(waiter, target)
                            break
                        if target.sim is not self:
                            raise SimError("event belongs to a different Simulation")
                        tcbs = target.callbacks
                        if tcbs is None:
                            # Already processed: consume it immediately.
                            deliver = target
                            continue
                        if target._waiter is None and not tcbs:
                            target._waiter = waiter
                        else:
                            tcbs.append(waiter._rcb)
                        waiter._target = target
                        break
                    self._active_process = None
                if cbs:
                    for callback in cbs:
                        callback(event)
                if cls is Timeout:
                    # `deliver`/`target` may still alias this event (or a
                    # pooled-timeout candidate) from a waiter resume; drop
                    # them so the refcount check below can prove exclusivity.
                    deliver = target = None
                    if len(pool) < pool_cap and getrefcount(event) == 2:
                        # Reuse the (empty) callbacks list as well.
                        event.callbacks = cbs if not cbs else []
                        pool.append(event)
                elif event._ok is False and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            stopper: Event = stop.value
            return stopper.value if stopper.ok else self._raise(stopper)
        finally:
            self._flush_pending()
        if stop_at is not None:
            self._now = max(self._now, stop_at)
        if isinstance(until, Event) and not until.triggered:
            raise SimError("run(until=event) exhausted the heap before the event")
        if isinstance(until, Event):
            return until.value if until.ok else self._raise(until)
        return None

    @staticmethod
    def _raise(event: Event) -> Any:
        event.defused = True
        raise event.value

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:
        pending = len(self._heap) + len(self._pending)
        return f"<Simulation t={self._now:.6g} pending={pending}>"
