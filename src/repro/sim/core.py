"""Discrete-event simulation kernel.

A :class:`Simulation` owns a virtual clock and an event heap. Model code
is written as Python generator functions ("processes") that ``yield``
:class:`Event` objects to wait on; when an event triggers, the process
resumes with the event's value (or the event's exception is thrown into
the generator). Composable "blocking" calls are generators used with
``yield from`` that terminate with ``return value``.

The design follows the well-known SimPy architecture but is implemented
from scratch, exposing only what this project needs: events, timeouts,
processes (with interrupts), and the ``AnyOf`` / ``AllOf`` combinators.

Example::

    sim = Simulation(seed=1)

    def worker(sim, results):
        yield sim.timeout(3.0)
        results.append(sim.now)

    results = []
    sim.process(worker(sim, results))
    sim.run()
    assert results == [3.0]
"""

from __future__ import annotations

import heapq
import sys
from itertools import count
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from ..errors import (
    EventAlreadyTriggered,
    EventNotTriggered,
    Interrupt,
    SimError,
    StopSimulation,
)
from .rng import RngRegistry

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Simulation",
    "URGENT",
    "NORMAL",
    "ProcessGenerator",
]

#: Scheduling priority for bookkeeping events that must run before model
#: events scheduled at the same instant (process initialization,
#: interrupts).
URGENT = 0

#: Default scheduling priority for model events.
NORMAL = 1

#: Sentinel marking an event that has not triggered yet.
_PENDING = object()

#: Type alias for process generator functions' return value.
ProcessGenerator = Generator["Event", Any, Any]

#: Maximum number of retired :class:`Timeout` objects kept for reuse.
_TIMEOUT_POOL_CAP = 1024

_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A happening that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules it on the simulation heap. When the
    heap pops it, the event is *processed*: its callbacks run and any
    waiting processes resume.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        #: Callables invoked with this event when it is processed. Set to
        #: ``None`` once processed, so late subscribers can detect that.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: ``True`` if a failure has been handled and must not crash the run.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed` or :meth:`fail` was called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded. Raises if still pending."""
        if self._value is _PENDING:
            raise EventNotTriggered(f"{self!r} has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event triggered with (or its exception)."""
        if self._value is _PENDING:
            raise EventNotTriggered(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with *value* after *delay*."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        if delay == 0.0:
            # Inlined immediate schedule — the overwhelmingly common case.
            sim = self.sim
            _heappush(sim._heap, (sim._now, NORMAL, next(sim._counter), self))
        else:
            self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with *exception*.

        Processes waiting on the event will have the exception thrown
        into them. If nothing waits on a failed event when it is
        processed, the simulation run aborts with the exception (unless
        :attr:`defused` is set).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        if delay == 0.0:
            sim = self.sim
            _heappush(sim._heap, (sim._now, NORMAL, next(sim._counter), self))
        else:
            self.sim._schedule(self, delay)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class _Interruption(Event):
    """Urgent bookkeeping event carrying an :class:`Interrupt` to a process."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.sim)
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.callbacks = [process._resume]
        self.sim._schedule(self, 0.0, priority=URGENT)


class Process(Event):
    """A running generator; also an event that triggers when it finishes.

    The process succeeds with the generator's ``return`` value, or fails
    with any exception the generator raises.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "name")

    def __init__(
        self, sim: "Simulation", generator: ProcessGenerator, name: str = ""
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event the generator currently waits on.
        self._target: Optional[Event] = None
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks = [self._resume]
        sim._schedule(init, 0.0, priority=URGENT)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process is detached from whatever event it was waiting on;
        that event stays valid and may trigger later without affecting
        the process (its callback has been removed).
        """
        if self._value is not _PENDING:
            raise SimError("cannot interrupt a terminated process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        sim = self.sim
        sim._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    # The failure is being delivered, hence handled.
                    event.defused = True
                    target = self._throw(event._value)
            except StopIteration as exc:
                sim._active_process = None
                self._ok = True
                self._value = exc.value
                _heappush(sim._heap, (sim._now, NORMAL, next(sim._counter), self))
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                sim._active_process = None
                self._ok = False
                self._value = exc
                _heappush(sim._heap, (sim._now, NORMAL, next(sim._counter), self))
                return

            if not isinstance(target, Event):
                sim._active_process = None
                exc = SimError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                self._generator.close()
                self._ok = False
                self._value = exc
                sim._schedule(self, 0.0)
                return
            if target.sim is not sim:
                raise SimError("event belongs to a different Simulation")

            callbacks = target.callbacks
            if callbacks is None:
                # Already processed: consume its outcome immediately.
                event = target
                continue
            callbacks.append(self._resume)
            self._target = target
            sim._active_process = None
            return

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """An event that triggers once *evaluate* is satisfied by sub-events.

    The success value is a ``dict`` mapping each already-succeeded
    sub-event to its value, in original order. If any sub-event fails
    before the condition triggers, the condition fails with the same
    exception.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulation",
        events: Iterable[Event],
        evaluate: Callable[[List[Event], int], bool],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for event in self._events:
            if event.sim is not sim:
                raise SimError("all events must belong to the same Simulation")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    def _collect_values(self) -> Dict[Event, Any]:
        # Only *processed* events count as having happened: a Timeout is
        # "triggered" from the instant it is created (it is pre-scheduled),
        # but it has not occurred until the heap pops it.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }


def _evaluate_any(events: List[Event], count: int) -> bool:
    """Condition evaluator: satisfied once a single sub-event triggered."""
    return count >= 1


def _evaluate_all(events: List[Event], count: int) -> bool:
    """Condition evaluator: satisfied once every sub-event triggered."""
    return count == len(events)


class AnyOf(Condition):
    """Triggers as soon as one of *events* triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim, events, _evaluate_any)


class AllOf(Condition):
    """Triggers once all of *events* have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim, events, _evaluate_all)


class Simulation:
    """The event loop: virtual clock, event heap, and RNG registry.

    Parameters
    ----------
    seed:
        Master seed for the deterministic RNG substreams returned by
        :meth:`rng`. Two simulations built with the same seed and the
        same model code produce identical trajectories.
    """

    def __init__(self, seed: int = 0, tracer: Optional[Any] = None) -> None:
        self._now = 0.0
        self._heap: List[Any] = []
        self._counter = count()
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self._active_process: Optional[Process] = None
        #: Retired Timeout objects available for reuse (see :meth:`timeout`).
        self._timeout_pool: List[Timeout] = []
        #: Optional :class:`repro.sim.trace.Tracer`; see :meth:`trace`.
        self.tracer = tracer
        #: Optional :class:`repro.obs.spans.TraceCollector`; instrumented
        #: completion points (broker client, front end) call
        #: ``obs.finish(ctx)`` when this is set. ``None`` (the default)
        #: keeps tracing disabled at the cost of one attribute check —
        #: the obs layer's overhead contract (DESIGN.md §10).
        self.obs: Optional[Any] = None

    def trace(self, category: str, message: str, **fields: Any) -> None:
        """Emit a trace record if a tracer is attached (else a no-op)."""
        if self.tracer is not None:
            self.tracer.log(self._now, category, message, **fields)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds with *value* after *delay* seconds.

        Retired timeouts are pooled: the run loop recycles a processed
        :class:`Timeout` when nothing else references it (verified via
        the interpreter refcount), so steady-state runs allocate almost
        no timeout objects.
        """
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        timeout = pool.pop()
        timeout.delay = delay
        timeout._ok = True
        timeout._value = value
        timeout.defused = False
        timeout.callbacks = []
        _heappush(
            self._heap, (self._now + delay, NORMAL, next(self._counter), timeout)
        )
        return timeout

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start *generator* as a concurrent process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that triggers when any of *events* does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that triggers when all of *events* have."""
        return AllOf(self, events)

    def rng(self, stream: str):
        """A deterministic ``random.Random`` for the named substream."""
        return self._rngs.stream(stream)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        _heappush(
            self._heap, (self._now + delay, priority, next(self._counter), event)
        )

    def _step(self) -> None:
        """Pop and process one event; used by tests and the run loop's
        slow path (the main loop inlines this body for speed)."""
        when, _prio, _seq, event = _heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            # An unhandled failure: abort the run loudly rather than
            # letting errors pass silently.
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Any = None) -> Any:
        """Execute events until the heap empties, *until* time passes, or
        an *until* event triggers.

        ``until`` may be ``None`` (run to exhaustion), a number (run until
        the clock would pass it; the clock is then set to it), or an
        :class:`Event` (run until it triggers; its value is returned).
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.callbacks is None:
                return until.value if until.ok else self._raise(until)
            until.callbacks.append(self._stop_on_event)
        elif isinstance(until, (int, float)):
            if until < self._now:
                raise ValueError(f"until={until!r} is in the past (now={self._now!r})")
            stop_at = float(until)
        else:
            raise TypeError(f"until must be None, a number, or an Event: {until!r}")

        # The loop below is `_step` inlined, with heapq and the heap
        # bound to locals and retired Timeout objects recycled into the
        # pool when the refcount proves nothing else can observe them
        # (the two references are the `event` local and getrefcount's
        # argument; a Condition, a waiting process `_target`, or model
        # code holding the timeout keeps the count higher).
        heap = self._heap
        pop = _heappop
        getrefcount = sys.getrefcount
        pool = self._timeout_pool
        pool_cap = _TIMEOUT_POOL_CAP
        try:
            if stop_at is None:
                while heap:
                    when, _prio, _seq, event = pop(heap)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    if (
                        type(event) is Timeout
                        and len(pool) < pool_cap
                        and getrefcount(event) == 2
                    ):
                        pool.append(event)
            else:
                while heap and heap[0][0] <= stop_at:
                    when, _prio, _seq, event = pop(heap)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    if (
                        type(event) is Timeout
                        and len(pool) < pool_cap
                        and getrefcount(event) == 2
                    ):
                        pool.append(event)
        except StopSimulation as stop:
            stopper: Event = stop.value
            return stopper.value if stopper.ok else self._raise(stopper)
        if stop_at is not None:
            self._now = max(self._now, stop_at)
        if isinstance(until, Event) and not until.triggered:
            raise SimError("run(until=event) exhausted the heap before the event")
        if isinstance(until, Event):
            return until.value if until.ok else self._raise(until)
        return None

    @staticmethod
    def _raise(event: Event) -> Any:
        event.defused = True
        raise event.value

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:
        return f"<Simulation t={self._now:.6g} pending={len(self._heap)}>"
