"""Deterministic named random-number substreams.

Every stochastic component of a model draws from its own named stream
(for example ``"link.wan"`` or ``"client.3.think"``). Streams are derived
from the master seed with SHA-256, so:

* the same (seed, name) pair always yields the same sequence, and
* adding a new component with its own stream does not perturb the
  sequences observed by existing components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_rng"]


def derive_rng(seed: int, name: str) -> random.Random:
    """Create a ``random.Random`` deterministically derived from (seed, name)."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RngRegistry:
    """Caches one :class:`random.Random` per stream name.

    Repeated calls with the same name return the *same* generator object,
    so a component keeps consuming its own sequence across calls.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the generator for *name*, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = derive_rng(self.seed, name)
            self._streams[name] = rng
        return rng

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
