"""Host CPU model with context-switch costs.

The paper's §II motivation: "Accesses to backend servers usually means
I/O operations which incur context switch between heterogeneous codes
... Increased context switch uses more portion of CPU resources and
results in higher instruction cache misses"; and §III's remedy:
"Accesses to backend servers are done in bulk at service brokers to
reduce the number of context switchings."

:class:`HostCpu` models one core: work is executed in slices, and
whenever the running task differs from the previous one, a fixed
context-switch penalty (direct cost plus cache-refill cost) is charged
before the slice runs. The ABL-CSW ablation benchmark uses this to show
bulk broker processing beating interleaved per-process API access on
the same total work.
"""

from __future__ import annotations

from typing import Hashable, Optional

from .core import Simulation
from .resources import Resource

__all__ = ["HostCpu"]


class HostCpu:
    """A single CPU core shared by named tasks.

    Parameters
    ----------
    sim:
        The owning simulation.
    context_switch_cost:
        Seconds charged when the core switches to a different task
        (scheduler overhead plus instruction-cache refill).
    """

    def __init__(self, sim: Simulation, context_switch_cost: float = 5e-5) -> None:
        if context_switch_cost < 0:
            raise ValueError(
                f"context_switch_cost must be >= 0: {context_switch_cost!r}"
            )
        self.sim = sim
        self.context_switch_cost = context_switch_cost
        self._core = Resource(sim, capacity=1)
        self._last_task: Optional[Hashable] = None
        self.switches = 0
        self.busy_time = 0.0

    def run(self, task_id: Hashable, duration: float):
        """Execute *duration* seconds of work as *task_id*.

        A ``yield from`` generator. The slice waits for the core, pays
        the switch penalty if the core last ran a different task, then
        occupies the core for *duration*.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0: {duration!r}")
        grant = self._core.request()
        yield grant
        try:
            if self._last_task is not None and self._last_task != task_id:
                self.switches += 1
                self.busy_time += self.context_switch_cost
                yield self.context_switch_cost
            self._last_task = task_id
            self.busy_time += duration
            yield duration
        finally:
            self._core.release(grant)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time the core has been busy since *since*."""
        elapsed = self.sim.now - since
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"<HostCpu switches={self.switches} busy={self.busy_time:.4g}s "
            f"last={self._last_task!r}>"
        )
