"""Discrete-event simulation kernel (virtual time, processes, resources).

This package is the substrate every other subsystem runs on. See
:mod:`repro.sim.core` for the event-loop semantics and
:mod:`repro.sim.resources` for shared resources.
"""

from .core import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    Event,
    Process,
    ProcessGenerator,
    Simulation,
    Timeout,
)
from .cpu import HostCpu
from .parallel import (
    ParallelSimulation,
    PartitionResult,
    PartitionSpec,
    RemoteEnvelope,
    RemoteGateway,
    available_workers,
)
from .resources import PriorityResource, Request, Resource, Store, StoreGet, StorePut
from .rng import RngRegistry, derive_rng
from .trace import TraceRecord, Tracer

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Process",
    "ProcessGenerator",
    "Condition",
    "AnyOf",
    "AllOf",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "StorePut",
    "StoreGet",
    "HostCpu",
    "Tracer",
    "TraceRecord",
    "RngRegistry",
    "derive_rng",
    "URGENT",
    "NORMAL",
    "ParallelSimulation",
    "PartitionSpec",
    "PartitionResult",
    "RemoteGateway",
    "RemoteEnvelope",
    "available_workers",
]
