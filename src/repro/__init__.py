"""repro — service brokers for accessing backend servers in web applications.

A full reproduction of Chen & Mohapatra, *"Using Service Brokers for
Accessing Backend Servers for Web Applications"* (ICDCS 2003), built on a
from-scratch discrete-event simulation substrate.

The package layers, bottom to top:

* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.net` — nodes, links, streams, datagrams;
* :mod:`repro.db`, :mod:`repro.ldapdir`, :mod:`repro.mail`,
  :mod:`repro.http` — the backend servers;
* :mod:`repro.frontend` — the front-end web server and the API-based
  baseline access model;
* :mod:`repro.core` — the paper's contribution: the service broker
  framework (QoS admission, clustering, caching, prefetching, pooling,
  load balancing, transactions, centralized/distributed models);
* :mod:`repro.workload` — clients and the paper's two testbeds;
* :mod:`repro.metrics` — statistics and report rendering;
* :mod:`repro.obs` — request tracing, latency histograms, exporters.
"""

from .analysis import mm1_metrics, mmc_metrics, mva_single_station
from .core import (
    AdmissionController,
    BackpressureStage,
    BrokerClient,
    BrokerPeerGroup,
    BrokerReply,
    BrokerRequest,
    BrokerStage,
    BrokerSupervisor,
    CentralizedController,
    ClusteringConfig,
    ConnectionPool,
    DatabaseAdapter,
    DirectoryAdapter,
    FidelityPolicy,
    FileAdapter,
    FileBatchCombiner,
    HotSpotGate,
    HotSpotMonitor,
    HotSpotNotice,
    HttpAdapter,
    IdenticalRequestCombiner,
    InListQueryCombiner,
    LatencyAwareBalancer,
    LeastOutstandingBalancer,
    LoadListener,
    MailAdapter,
    MgetCombiner,
    Prefetcher,
    PrefetchRule,
    CircuitBreaker,
    QoSPolicy,
    RepeatWorkloadCombiner,
    ReplyStatus,
    RequestContext,
    RecoveryJournal,
    ResourceProfileRegistry,
    ResultCache,
    RetryPolicy,
    RoundRobinBalancer,
    ServiceBroker,
    StagePipeline,
    TransactionTracker,
    centralized_stage_plan,
    distributed_stage_plan,
    fault_tolerant_stage_plan,
    overload_protected_stage_plan,
)
from .db import Database, DatabaseClient, DatabaseServer
from .frontend import ApiBackendGateway, FrontendWebServer, WebApplication, qos_of
from .http import BackendWebServer, HttpClient, HttpRequest, HttpResponse
from .fileserver import DiskModel, FileClient, FileServer, FileSystem
from .ldapdir import DirectoryClient, DirectoryServer, DirectoryTree
from .mail import MailClient, MailServer, MessageStore
from .metrics import (
    LatencyHistogram,
    MetricsRegistry,
    SummaryStats,
    render_series,
    render_table,
)
from .obs import (
    Span,
    Trace,
    TraceCollector,
    critical_path,
    render_attribution,
    render_waterfall,
    trace_from_context,
    validate_chrome_trace,
    write_chrome_trace,
)
from .net import (
    Address,
    BackendCrash,
    BrokerCrash,
    FaultInjector,
    FaultPlan,
    Link,
    LinkDegrade,
    LinkDown,
    Network,
    Node,
    SlowBackend,
)
from .sim import HostCpu, Simulation
from .workload import (
    BurstClient,
    ChaosResult,
    ClosedLoopClient,
    FailureRecoveryResult,
    OpenLoopGenerator,
    OverloadResult,
    run_chaos_experiment,
    run_clustering_experiment,
    run_failure_recovery_experiment,
    run_overload_experiment,
    run_qos_experiment,
    zipf_sampler,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # kernel & network
    "Simulation",
    "HostCpu",
    "Network",
    "Node",
    "Link",
    "Address",
    "BackendCrash",
    "BrokerCrash",
    "LinkDown",
    "LinkDegrade",
    "SlowBackend",
    "FaultPlan",
    "FaultInjector",
    # backends
    "Database",
    "DatabaseServer",
    "DatabaseClient",
    "DirectoryServer",
    "DirectoryClient",
    "DirectoryTree",
    "MailServer",
    "FileServer",
    "FileClient",
    "FileSystem",
    "DiskModel",
    "MailClient",
    "MessageStore",
    "BackendWebServer",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    # front end & baseline
    "FrontendWebServer",
    "WebApplication",
    "ApiBackendGateway",
    "qos_of",
    # broker framework
    "ServiceBroker",
    "BrokerStage",
    "StagePipeline",
    "RequestContext",
    "distributed_stage_plan",
    "centralized_stage_plan",
    "fault_tolerant_stage_plan",
    "overload_protected_stage_plan",
    "BackpressureStage",
    "BrokerSupervisor",
    "RecoveryJournal",
    "CircuitBreaker",
    "RetryPolicy",
    "BrokerClient",
    "BrokerRequest",
    "BrokerReply",
    "ReplyStatus",
    "QoSPolicy",
    "AdmissionController",
    "ResultCache",
    "ClusteringConfig",
    "IdenticalRequestCombiner",
    "RepeatWorkloadCombiner",
    "MgetCombiner",
    "InListQueryCombiner",
    "FileBatchCombiner",
    "ConnectionPool",
    "Prefetcher",
    "PrefetchRule",
    "FidelityPolicy",
    "TransactionTracker",
    "BrokerPeerGroup",
    "HotSpotMonitor",
    "HotSpotGate",
    "HotSpotNotice",
    "DatabaseAdapter",
    "HttpAdapter",
    "DirectoryAdapter",
    "MailAdapter",
    "FileAdapter",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "LatencyAwareBalancer",
    "LoadListener",
    "ResourceProfileRegistry",
    "CentralizedController",
    # workload & metrics
    "ClosedLoopClient",
    "BurstClient",
    "OpenLoopGenerator",
    "zipf_sampler",
    "run_clustering_experiment",
    "run_qos_experiment",
    "run_failure_recovery_experiment",
    "run_overload_experiment",
    "run_chaos_experiment",
    "FailureRecoveryResult",
    "OverloadResult",
    "ChaosResult",
    "MetricsRegistry",
    "SummaryStats",
    "LatencyHistogram",
    "render_table",
    "render_series",
    "mm1_metrics",
    "mmc_metrics",
    "mva_single_station",
    # observability
    "TraceCollector",
    "Trace",
    "Span",
    "trace_from_context",
    "render_waterfall",
    "render_attribution",
    "critical_path",
    "write_chrome_trace",
    "validate_chrome_trace",
]
