"""Workload generators and canned experiment testbeds."""

from .clients import BurstClient, ClosedLoopClient, OpenLoopGenerator, zipf_sampler
from .scenarios import (
    QOS_SERVICE_TIMES,
    ClusteringResult,
    QosResult,
    run_clustering_experiment,
    run_qos_experiment,
)

__all__ = [
    "BurstClient",
    "ClosedLoopClient",
    "OpenLoopGenerator",
    "zipf_sampler",
    "ClusteringResult",
    "QosResult",
    "run_clustering_experiment",
    "run_qos_experiment",
    "QOS_SERVICE_TIMES",
]
