"""Workload generators and canned experiment testbeds."""

from .chaos import (
    ChaosResult,
    InvariantCheck,
    OverloadResult,
    ShardChaosResult,
    run_chaos_experiment,
    run_overload_experiment,
    run_shard_chaos_experiment,
)
from .clients import BurstClient, ClosedLoopClient, OpenLoopGenerator, zipf_sampler
from .scenarios import (
    QOS_SERVICE_TIMES,
    CacheTierResult,
    ClusteringResult,
    FailureRecoveryResult,
    QosResult,
    ShardedQosResult,
    run_cache_tier_experiment,
    run_clustering_experiment,
    run_failure_recovery_experiment,
    run_qos_experiment,
    run_sharded_qos_experiment,
)

__all__ = [
    "BurstClient",
    "ClosedLoopClient",
    "OpenLoopGenerator",
    "zipf_sampler",
    "ClusteringResult",
    "QosResult",
    "FailureRecoveryResult",
    "ShardedQosResult",
    "CacheTierResult",
    "OverloadResult",
    "ChaosResult",
    "ShardChaosResult",
    "InvariantCheck",
    "run_clustering_experiment",
    "run_qos_experiment",
    "run_failure_recovery_experiment",
    "run_sharded_qos_experiment",
    "run_cache_tier_experiment",
    "run_overload_experiment",
    "run_chaos_experiment",
    "run_shard_chaos_experiment",
    "QOS_SERVICE_TIMES",
]
