"""Workload generators and canned experiment testbeds."""

from .clients import BurstClient, ClosedLoopClient, OpenLoopGenerator, zipf_sampler
from .scenarios import (
    QOS_SERVICE_TIMES,
    ClusteringResult,
    FailureRecoveryResult,
    QosResult,
    run_clustering_experiment,
    run_failure_recovery_experiment,
    run_qos_experiment,
)

__all__ = [
    "BurstClient",
    "ClosedLoopClient",
    "OpenLoopGenerator",
    "zipf_sampler",
    "ClusteringResult",
    "QosResult",
    "FailureRecoveryResult",
    "run_clustering_experiment",
    "run_qos_experiment",
    "run_failure_recovery_experiment",
    "QOS_SERVICE_TIMES",
]
