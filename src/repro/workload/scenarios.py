"""Canned testbeds reproducing the paper's two experiments.

* :func:`run_clustering_experiment` — §V.A / Figure 7: a front-end web
  application relays requests to a backend web server whose CGI script
  queries a 42,000-record database; the broker clusters *degree*
  requests into one backend call carrying ``repeat=degree``.
* :func:`run_qos_experiment` — §V.B / Figures 9-10, Tables I-IV: three
  brokers front three backend web servers with bounded CGI processing
  times of 1/2/3 seconds; WebStone-like closed-loop clients in three QoS
  classes drive the system through a front end, in either API-based or
  broker-based mode.
* :func:`run_failure_recovery_experiment` — the §III availability claim
  ("even when the backend servers are not available"): one broker runs
  the fault-tolerant stage plan over *replica* backend web servers while
  a :class:`~repro.net.faults.FaultInjector` crashes and restarts the
  first replica on an exponential MTBF schedule; every request is
  classified as issued during an outage window or during healthy
  operation.
* :func:`run_sharded_qos_experiment` — the §V.B testbed rebuilt on the
  shard tier (:mod:`repro.core.sharding`): every service is fronted by
  N shards × R replica brokers behind a consistent-hash
  :class:`~repro.core.sharding.ShardDirectory`, probing the scaling
  ceiling the paper leaves open (one broker per service; a centralized
  listener that saturates as brokers multiply).
* :func:`run_cache_tier_experiment` — the cross-request optimization
  tier (:mod:`repro.core.cachetier`) at ten times the §V.B client
  count: several brokers over one database server, Zipf-skewed keyed
  reads, with and without the shared cache / cross-broker query
  combining / materialized views, measuring hit ratios and
  backend-load reduction against single-broker caching.

All return plain result dataclasses the benchmark harness renders as
the paper's tables/series.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.adapters import DatabaseAdapter, HttpAdapter
from ..core.broker import ServiceBroker
from ..core.cache import ResultCache
from ..core.cachetier import SharedCacheTier
from ..core.client import BrokerClient
from ..core.clustering import (
    ClusteringConfig,
    InListQueryCombiner,
    RepeatWorkloadCombiner,
)
from ..core.faulttolerance import RetryPolicy
from ..core.peering import BrokerPeerGroup, ShardPeerGroup
from ..core.pipeline import (
    cache_tier_stage_plan,
    centralized_stage_plan,
    distributed_stage_plan,
    fault_tolerant_stage_plan,
    sharded_stage_plan,
)
from ..core.protocol import ReplyStatus
from ..core.qos import QoSPolicy
from ..core.sharding import HashRing, ShardDirectory, ShardGroup
from ..core.transactions import TransactionTracker
from ..errors import BrokerTimeout
from ..db.client import DatabaseClient
from ..db.engine import Database
from ..db.views import ViewCatalog
from ..db.server import DatabaseServer
from ..frontend.app import QOS_HEADER, WebApplication, qos_of
from ..frontend.api_access import ApiBackendGateway
from ..frontend.server import FrontendWebServer
from ..http.client import HttpClient
from ..http.messages import HttpRequest, HttpResponse
from ..metrics import LatencyHistogram, MetricsRegistry, SummaryStats
from ..net.faults import FaultInjector, FaultPlan
from ..net.link import Link
from ..net.network import Network
from ..sim.core import Simulation
from ..sim.parallel import ParallelSimulation, PartitionSpec
from .clients import ClosedLoopClient, zipf_sampler

__all__ = [
    "ClusteringResult",
    "run_clustering_experiment",
    "QosResult",
    "run_qos_experiment",
    "QOS_SERVICE_TIMES",
    "FailureRecoveryResult",
    "run_failure_recovery_experiment",
    "ShardedQosResult",
    "run_sharded_qos_experiment",
    "CacheTierResult",
    "run_cache_tier_experiment",
]

#: Bounded CGI processing times (seconds) at backends 1, 2, 3 (paper §V.B).
QOS_SERVICE_TIMES: Tuple[float, ...] = (1.0, 2.0, 3.0)


# ---------------------------------------------------------------------------
# Experiment A — request clustering (Figure 7)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusteringResult:
    """One point of the Figure-7 curve."""

    degree: int
    requests: int
    mean_response_time: float
    max_response_time: float
    backend_calls: int
    errors: int


def run_clustering_experiment(
    degree: int,
    n_requests: int = 40,
    backend_capacity: int = 5,
    table_rows: int = 42_000,
    groups: int = 1_000,
    cgi_overhead: float = 0.030,
    window: float = 0.02,
    seed: int = 0,
    obs=None,
) -> ClusteringResult:
    """Run the Figure-7 testbed at one *degree* of clustering.

    *cgi_overhead* is the per-invocation cost of the backend CGI script
    (2003-era process spawn + script startup); the per-repeat cost is a
    real indexed query against the 42,000-row table over a per-access
    database connection, exactly the workload structure of the paper.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1: {degree!r}")
    sim = Simulation(seed=seed)
    if obs is not None:
        obs.attach(sim)
    net = Network(sim, default_link=Link.lan())
    client_node = net.node("client")
    frontend_node = net.node("frontend")
    backend_node = net.node("backend")
    db_node = net.node("dbhost")
    rng = sim.rng("clustering.workload")

    # Database: 42,000 records in `groups` groups, hash-indexed.
    database = Database("records-db")
    table = database.create_table(
        "records", [("id", int), ("grp", int), ("payload", str)]
    )
    for i in range(table_rows):
        table.insert((i, i % groups, f"record-{i}"))
    table.create_index("grp", "hash")
    db_server = DatabaseServer(sim, db_node, database, max_workers=16)

    # Backend web server: capacity-5 Apache running the lookup script.
    from ..http.server import BackendWebServer

    backend = BackendWebServer(
        sim, backend_node, max_clients=backend_capacity, name="backend"
    )

    def lookup_cgi(server, request):
        """The paper's backend script: repeat the workload `repeat` times."""
        yield server.sim.timeout(cgi_overhead)
        repeat = int(request.param("repeat", 1))
        grp = int(request.param("grp", 0))
        total = 0
        for _ in range(repeat):
            connection = yield from DatabaseClient.connect(
                sim, backend_node, db_server.address
            )
            result = yield from connection.query(
                f"SELECT COUNT(*) FROM records WHERE grp = {grp}"
            )
            yield from connection.close()
            total += result.rows[0][0]
        return HttpResponse.text(f"rows={total}")

    backend.add_cgi("/lookup", lookup_cgi)

    # Broker on the front-end host, clustering to the configured degree.
    clustering = None
    if degree > 1:
        clustering = ClusteringConfig(
            combiner=RepeatWorkloadCombiner(),
            max_batch=degree,
            window=window,
        )
    broker = ServiceBroker(
        sim,
        frontend_node,
        service="backend",
        adapters=[HttpAdapter(sim, frontend_node, backend.address, name="backend")],
        qos=QoSPolicy(levels=1, threshold=10_000),  # no drops in this experiment
        clustering=clustering,
        pool_size=8,
        dispatchers=8,
        name="clustering-broker",
    )
    broker_client = BrokerClient(sim, frontend_node, {"backend": broker.address})

    # Front-end application: relay the client request through the broker.
    def relay_app(frontend, request):
        grp = request.param("grp", 0)
        reply = yield from broker_client.call(
            "backend",
            "get",
            ("/lookup", {"grp": grp}),
            cacheable=False,
            parent=request.context,
        )
        if reply.status is not ReplyStatus.OK:
            return HttpResponse.error(503, reply.error)
        return reply.payload

    frontend = FrontendWebServer(sim, frontend_node, name="frontend")
    frontend.register_app(WebApplication(path="/app", handler=relay_app))

    # ab-style burst: n_requests simultaneous requests.
    from .clients import BurstClient

    def one_request(_client, _index):
        response = yield from HttpClient.get(
            sim,
            client_node,
            frontend.address,
            "/app",
            {"grp": rng.randrange(groups)},
        )
        if not response.ok:
            raise RuntimeError(f"request failed: {response.status}")

    burst = BurstClient(
        sim, "ab", one_request, total=n_requests, concurrency=n_requests
    )
    stats = sim.run(burst.run())

    return ClusteringResult(
        degree=degree,
        requests=n_requests,
        mean_response_time=stats.mean,
        max_response_time=stats.maximum,
        backend_calls=int(backend.metrics.counter("http.requests")),
        errors=burst.errors,
    )


# ---------------------------------------------------------------------------
# Experiment B — service differentiation (Figures 9-10, Tables I-IV)
# ---------------------------------------------------------------------------


@dataclass
class QosResult:
    """Measurements from one run of the differentiation testbed."""

    mode: str
    n_clients: int
    duration: float
    #: QoS class -> response-time stats measured at the clients.
    response_times: Dict[int, SummaryStats] = field(default_factory=dict)
    #: QoS class -> completed requests (any fidelity) — the access-log count.
    completions: Dict[int, int] = field(default_factory=dict)
    #: QoS class -> requests answered at full fidelity (all 3 stages served).
    full_fidelity: Dict[int, int] = field(default_factory=dict)
    #: Broker name -> QoS class -> drop ratio (Tables II-IV).
    drop_ratios: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: QoS class -> front-door 503 rejections (centralized mode only).
    frontend_rejections: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_response_time(self) -> float:
        merged = SummaryStats()
        for stats in self.response_times.values():
            for value in stats.values():
                merged.add(value)
        return merged.mean

    def mean_response_of(self, level: int) -> float:
        """Mean response time of QoS class *level*."""
        return self.response_times[level].mean


def run_qos_experiment(
    n_clients: int,
    mode: str = "broker",
    duration: float = 300.0,
    service_times: Tuple[float, ...] = QOS_SERVICE_TIMES,
    threshold: int = 20,
    backend_capacity: int = 5,
    levels: int = 3,
    think_time: float = 0.1,
    fractions: Optional[Dict[int, float]] = None,
    seed: int = 0,
    obs=None,
    telemetry=None,
) -> QosResult:
    """Run the §V.B testbed with *n_clients* split evenly over QoS classes.

    ``mode`` selects the access model:

    * ``"broker"`` — the distributed broker model (UDP messaging,
      threshold-20 admission at each broker);
    * ``"centralized"`` — the same brokers, but admission happens at the
      front end from streamed load reports (paper §IV, Figure 4);
      rejected requests get an immediate 503;
    * ``"api"`` — the baseline: the front end calls each backend
      directly; requests queue without bound.

    ``think_time`` models the per-iteration client-side overhead of the
    WebStone workstation (request construction, parsing, logging);
    without it, instantly answered low-fidelity replies would let a
    closed-loop client reissue at an unphysical rate.
    """
    if mode not in ("broker", "api", "centralized"):
        raise ValueError(
            f"mode must be 'broker', 'centralized', or 'api': {mode!r}"
        )
    if n_clients < levels:
        raise ValueError(f"need at least {levels} clients, got {n_clients}")
    sim = Simulation(seed=seed)
    if obs is not None:
        obs.attach(sim)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    stages = len(service_times)

    # Backend web servers with bounded CGI processing times.
    from ..http.server import BackendWebServer

    backends: List[BackendWebServer] = []
    for index, service_time in enumerate(service_times, 1):
        node = net.node(f"backend{index}")
        server = BackendWebServer(
            sim, node, max_clients=backend_capacity, name=f"backend{index}"
        )

        def bounded_cgi(server, request, _t=service_time):
            yield server.sim.timeout(_t)
            return HttpResponse.text("served")

        server.add_cgi("/service", bounded_cgi)
        backends.append(server)

    frontend = FrontendWebServer(sim, web_node, name="frontend")
    if fractions is None and levels == 3:
        # Calibrated so the paper's "no drops below 20 clients" band
        # holds: closed-loop analysis puts broker 3's outstanding count
        # near 10 at 20 clients, so the lowest class needs a limit of
        # ~2/3 x threshold. See EXPERIMENTS.md.
        fractions = {1: 1.0, 2: 5.0 / 6.0, 3: 2.0 / 3.0}
    qos_policy = QoSPolicy(levels=levels, threshold=threshold, fractions=fractions)

    brokers: List[ServiceBroker] = []
    if mode in ("broker", "centralized"):
        for index, backend in enumerate(backends, 1):
            # The two access models are two stage configurations of the
            # same broker: the centralized plan has no AdmissionStage
            # (admission happens at the front end) and ends with a
            # LoadReportStage feeding the listener.
            stage_plan = (
                distributed_stage_plan()
                if mode == "broker"
                else centralized_stage_plan()
            )
            broker = ServiceBroker(
                sim,
                web_node,
                service=f"svc{index}",
                port=7000 + index,
                adapters=[
                    HttpAdapter(sim, web_node, backend.address, name=f"backend{index}")
                ],
                qos=qos_policy,
                pool_size=backend_capacity,
                dispatchers=backend_capacity,
                # The paper's testbed uses "just a binary mode of forward
                # or drop": differentiation happens at admission, and the
                # bounded queue drains FCFS.
                priority_queueing=False,
                name=f"broker{index}",
                stages=stage_plan,
            )
            brokers.append(broker)
        routes = {f"svc{i}": b.address for i, b in enumerate(brokers, 1)}
        broker_client = BrokerClient(sim, web_node, routes)

        if mode == "centralized":
            from ..core.centralized import (
                CentralizedController,
                LoadListener,
                ResourceProfileRegistry,
            )

            listener = LoadListener(sim, web_node, process_time=0.0005)
            for broker in brokers:
                broker.report_load_to(listener.address, interval=0.05)
            profiles = ResourceProfileRegistry()
            profiles.register(
                "/page", [f"svc{i}" for i in range(1, stages + 1)]
            )
            controller = CentralizedController(listener, profiles, qos_policy)
            frontend.admission = controller.admit

        # Per-request constants, hoisted: the payload tuple is never
        # mutated downstream (adapters copy the params dict) and the
        # responses are frozen, so sharing them across requests is safe.
        service_names = [f"svc{stage}" for stage in range(stages + 1)]
        page_payload = ("/service", {})
        full_fidelity = HttpResponse.text("full-fidelity")
        low_fidelity = [
            HttpResponse.text(f"low-fidelity (stage {stage})")
            for stage in range(stages + 1)
        ]

        def page_app(frontend_server, request):
            """3-stage request: one access per backend, in order.

            On the first drop the application immediately returns a
            low-fidelity page (the paper: "a low fidelity response is
            replied immediately").
            """
            level = qos_of(request)
            for stage in range(1, stages + 1):
                reply = yield from broker_client.call(
                    service_names[stage],
                    "get",
                    page_payload,
                    qos_level=level,
                    cacheable=False,
                    parent=request.context,
                )
                if reply.status is not ReplyStatus.OK:
                    frontend_server.metrics.increment(f"app.lowfid.qos{level}")
                    return low_fidelity[stage]
            frontend_server.metrics.increment(f"app.fullfid.qos{level}")
            return full_fidelity

    else:
        gateway = ApiBackendGateway(sim, web_node)

        def page_app(frontend_server, request):
            """API baseline: direct per-request access to each backend."""
            level = qos_of(request)
            for backend in backends:
                yield from gateway.http_get(backend.address, "/service")
            frontend_server.metrics.increment(f"app.fullfid.qos{level}")
            return HttpResponse.text("full-fidelity")

    frontend.register_app(WebApplication(path="/page", handler=page_app))

    # WebStone-like closed-loop clients: one workstation node per class.
    per_class = n_clients // levels
    extra = n_clients - per_class * levels
    clients_by_class: Dict[int, List[ClosedLoopClient]] = {}
    stagger_rng = sim.rng("qos.stagger")
    for level in range(1, levels + 1):
        workstation = net.node(f"workstation{level}")
        count_for_class = per_class + (1 if level <= extra else 0)
        class_clients: List[ClosedLoopClient] = []
        # One immutable request per class, shared by every iteration of
        # every client in the class (the front end attaches its context
        # to a fresh copy instead of mutating the original).
        page_request = HttpRequest(
            method="GET",
            path="/page",
            headers={QOS_HEADER: str(level)},
        )
        for index in range(count_for_class):

            def one_request(
                _client, _iteration, _level=level, _request=page_request
            ):
                response = yield from HttpClient.fetch(
                    sim,
                    workstation,
                    frontend.address,
                    _request,
                )
                # A 503 is the centralized model's immediate low-fidelity
                # answer ("an error message is sent to the end user") and
                # counts as a completed request, like a broker drop reply.
                if response.status == 500:
                    raise RuntimeError(f"server error {response.status}")

            client = ClosedLoopClient(
                sim,
                name=f"qos{level}-{index}",
                request_factory=one_request,
                think_time=think_time,
                start_delay=stagger_rng.uniform(0.0, sum(service_times)),
            )
            client.start(until=duration)
            class_clients.append(client)
        clients_by_class[level] = class_clients

    if telemetry is not None:
        # Purely observational: the scraper reads registries and gauges
        # at fixed instants, draws no RNG, and sends no messages, so
        # the workload below is identical with or without it.
        telemetry.attach(sim)
        telemetry.watch_registry(frontend.metrics, prefix="app.")
        telemetry.watch_registry(frontend.metrics, prefix="frontend.")
        for broker in brokers:
            telemetry.watch_broker(broker)
            # Broker registries reuse names across brokers; a label
            # keeps their series distinct.
            telemetry.watch_registry(
                broker.metrics, prefix="broker.", label=f"{broker.name}:"
            )
        obs_metrics = getattr(obs, "metrics", None)
        if obs_metrics is not None:
            telemetry.watch_registry(obs_metrics, prefix="obs.latency.")
        telemetry.start(until=duration)

    sim.run(until=duration + 0.0)
    # Let in-flight requests finish so their metrics are counted.
    sim.run(until=duration + 200.0)

    result = QosResult(mode=mode, n_clients=n_clients, duration=duration)
    for level, class_clients in clients_by_class.items():
        merged = SummaryStats()
        completed = 0
        for client in class_clients:
            completed += client.completed
            for value in client.response_times.values():
                merged.add(value)
        result.response_times[level] = merged
        result.completions[level] = completed
        result.full_fidelity[level] = int(
            frontend.metrics.counter(f"app.fullfid.qos{level}")
        )
    for broker in brokers:
        result.drop_ratios[broker.name] = {
            level: broker.drop_ratio(level) for level in range(1, levels + 1)
        }
    for level in range(1, levels + 1):
        result.frontend_rejections[level] = int(
            frontend.metrics.counter(f"frontend.rejected.qos{level}")
        )
    return result


# ---------------------------------------------------------------------------
# Experiment C — failure recovery (§III availability claim)
# ---------------------------------------------------------------------------


@dataclass
class FailureRecoveryResult:
    """Measurements from one run of the failure-recovery testbed.

    ``availability`` counts a request as *answered* when the client got
    a full-fidelity (OK) or degraded (stale-cache) reply; DROPPED
    ("system busy"), broker errors, and client-side timeouts all count
    against it. The ``outage_*`` fields restrict the same accounting to
    requests *issued while the crashed replica was down*.
    """

    mtbf: float
    mttr: float
    replicas: int
    n_clients: int
    duration: float
    #: Number of completed crash/restart windows and their total seconds.
    outages: int = 0
    downtime: float = 0.0
    # Whole-run accounting.
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    dropped: int = 0
    errors: int = 0
    timeouts: int = 0
    # Requests issued while the crashed replica was down.
    outage_requests: int = 0
    outage_ok: int = 0
    outage_degraded: int = 0
    # Response-time stats, split the same way.
    latency: SummaryStats = field(default_factory=SummaryStats)
    outage_latency: SummaryStats = field(default_factory=SummaryStats)
    # Pipeline fault counters (from the broker's metrics registry).
    retries: int = 0
    retry_recovered: int = 0
    failovers: int = 0
    failover_recovered: int = 0
    breaker_opens: int = 0
    fault_replies: int = 0

    @property
    def availability(self) -> float:
        """Fraction of all requests answered OK or DEGRADED."""
        if not self.requests:
            return 1.0
        return (self.ok + self.degraded) / self.requests

    @property
    def outage_availability(self) -> float:
        """Fraction of outage-window requests answered OK or DEGRADED."""
        if not self.outage_requests:
            return 1.0
        return (self.outage_ok + self.outage_degraded) / self.outage_requests


def run_failure_recovery_experiment(
    mtbf: float = 30.0,
    mttr: float = 5.0,
    replicas: int = 2,
    n_clients: int = 8,
    duration: float = 120.0,
    service_time: float = 0.1,
    think_time: float = 0.1,
    deadline: float = 2.0,
    cache_ttl: float = 1.0,
    key_pool: int = 32,
    backend_capacity: int = 5,
    first_crash_at: Optional[float] = None,
    seed: int = 0,
    obs=None,
) -> FailureRecoveryResult:
    """Crash a replica on an MTBF schedule; measure what clients see.

    One broker runs :func:`~repro.core.pipeline.fault_tolerant_stage_plan`
    over *replicas* identical backend web servers (each a bounded CGI of
    *service_time* seconds that honours ``service_time_scale``). Closed-
    loop clients in three QoS classes request cacheable items from a
    pool of *key_pool* keys, so the result cache holds recent — possibly
    stale — answers for every key. A
    :class:`~repro.net.faults.FaultInjector` replays
    :meth:`FaultPlan.crash_restart_cycle
    <repro.net.faults.FaultPlan.crash_restart_cycle>` against the first
    replica: time-to-failure is ``Exp(1/mtbf)`` on the dedicated
    ``faults.schedule`` substream, repair takes the fixed *mttr*.

    While the replica is down the pipeline absorbs the fault in layers:
    retries with backoff catch transient connection failures, the
    per-backend circuit breaker trips after repeated ones, failover
    re-routes the batch to surviving replicas, and — when no replica is
    left (``replicas=1``) — the fidelity fallback answers from stale
    cache or with a busy indication (§III). *first_crash_at* pins the
    first crash instant (benchmarks use it so every point has at least
    one outage); by default it is drawn from the MTBF distribution.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1: {replicas!r}")
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1: {n_clients!r}")
    sim = Simulation(seed=seed)
    if obs is not None:
        obs.attach(sim)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    # Replica backend web servers, all serving the same item lookup.
    from ..http.server import BackendWebServer

    backends: List[BackendWebServer] = []
    for index in range(1, replicas + 1):
        node = net.node(f"backend{index}")
        server = BackendWebServer(
            sim, node, max_clients=backend_capacity, name=f"backend{index}"
        )

        def item_cgi(server, request):
            # CGI handlers honour the slow-backend fault hook themselves.
            yield server.sim.timeout(service_time * server.service_time_scale)
            return HttpResponse.text(f"item={request.param('id', '?')}")

        server.add_cgi("/item", item_cgi)
        backends.append(server)

    qos = QoSPolicy(
        levels=3,
        threshold=10_000,  # no admission drops — this experiment isolates faults
        deadlines={1: deadline, 2: deadline * 1.5, 3: deadline * 2.0},
    )
    broker = ServiceBroker(
        sim,
        web_node,
        service="items",
        adapters=[
            HttpAdapter(sim, web_node, server.address, name=server.name)
            for server in backends
        ],
        qos=qos,
        cache=ResultCache(capacity=4 * key_pool, ttl=cache_ttl, clock=lambda: sim.now),
        pool_size=backend_capacity,
        dispatchers=backend_capacity * replicas,
        name="ft-broker",
        stages=fault_tolerant_stage_plan(
            retry=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.5),
            failure_threshold=3,
            reset_timeout=0.5,
        ),
    )
    broker_client = BrokerClient(sim, web_node, {"items": broker.address})

    # The fault schedule targets the first replica only, so surviving
    # replicas (if any) can absorb the failover traffic.
    plan = FaultPlan.crash_restart_cycle(
        backends[0].name,
        mtbf=mtbf,
        mttr=mttr,
        until=duration,
        rng=sim.rng("faults.schedule"),
        first_at=first_crash_at,
    )
    injector = FaultInjector(
        sim,
        plan,
        network=net,
        targets={server.name: server for server in backends},
        metrics=broker.metrics,
    )
    injector.start()

    # Closed-loop clients over a shared key pool; every sample records
    # (issue time, reply status, elapsed) for outage classification.
    samples: List[Tuple[float, str, float]] = []
    key_rng = sim.rng("faults.keys")
    stagger_rng = sim.rng("faults.stagger")
    clients: List[ClosedLoopClient] = []
    for index in range(n_clients):
        workstation = net.node(f"client{index}")
        level = (index % qos.levels) + 1

        def one_request(_client, _iteration, _node=workstation, _level=level):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            try:
                reply = yield from broker_client.call(
                    "items",
                    "get",
                    ("/item", {"id": item}),
                    qos_level=_level,
                    timeout=4.0 * deadline,
                )
            except BrokerTimeout:
                samples.append((issued, "timeout", sim.now - issued))
                return
            samples.append((issued, reply.status.value, sim.now - issued))

        client = ClosedLoopClient(
            sim,
            name=f"ft{index}",
            request_factory=one_request,
            think_time=think_time,
            start_delay=stagger_rng.uniform(0.0, 1.0),
        )
        client.start(until=duration)
        clients.append(client)

    sim.run(until=duration)
    # Let in-flight requests, retries, and open fault windows finish.
    sim.run(until=duration + mttr + 60.0)

    result = FailureRecoveryResult(
        mtbf=mtbf,
        mttr=mttr,
        replicas=replicas,
        n_clients=n_clients,
        duration=duration,
    )
    windows = injector.windows(backends[0].name)
    result.outages = len(windows)
    result.downtime = sum(end - start for start, end in windows)

    def in_outage(at: float) -> bool:
        return any(start <= at < end for start, end in windows)

    for issued, status, elapsed in samples:
        result.requests += 1
        result.latency.add(elapsed)
        answered = status in (ReplyStatus.OK.value, ReplyStatus.DEGRADED.value)
        if status == ReplyStatus.OK.value:
            result.ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1
        if in_outage(issued):
            result.outage_requests += 1
            result.outage_latency.add(elapsed)
            if answered:
                if status == ReplyStatus.OK.value:
                    result.outage_ok += 1
                else:
                    result.outage_degraded += 1

    counter = broker.metrics.counter
    result.retries = int(counter("broker.retry.attempts"))
    result.retry_recovered = int(counter("broker.retry.recovered"))
    result.failovers = int(counter("broker.fault.failover"))
    result.failover_recovered = int(counter("broker.fault.failover_recovered"))
    result.breaker_opens = int(counter("broker.breaker.open"))
    result.fault_replies = int(counter("broker.fault.replies"))
    return result


# ---------------------------------------------------------------------------
# Experiment D — the shard tier on the §V.B testbed
# ---------------------------------------------------------------------------


@dataclass
class ShardedQosResult:
    """Measurements from one run of the sharded differentiation testbed."""

    mode: str
    n_clients: int
    shards: int
    replicas: int
    duration: float
    #: Total broker count (services × shards × replicas).
    brokers: int = 0
    #: QoS class -> response-time stats measured at the clients.
    response_times: Dict[int, SummaryStats] = field(default_factory=dict)
    #: QoS class -> completed requests (the access-log count).
    completions: Dict[int, int] = field(default_factory=dict)
    #: QoS class -> requests answered at full fidelity.
    full_fidelity: Dict[int, int] = field(default_factory=dict)
    #: QoS class -> front-door 503 rejections (centralized mode only).
    frontend_rejections: Dict[int, int] = field(default_factory=dict)
    #: Requests relayed broker→broker by the ShardRouteStage.
    forwards: int = 0
    #: Requests the ShardRouteStage kept local.
    local_routes: int = 0
    #: Bully elections run across all shard groups.
    elections: int = 0
    #: Reporting-role moves seen by the load listener (centralized mode).
    leader_failovers: int = 0
    #: Load updates the listener processed — the paper's saturation
    #: variable; leader-only reporting bounds it by the shard count.
    listener_updates: int = 0
    #: ``ShardDirectory.describe()`` at end of run.
    topology: str = ""
    #: QoS class -> fixed-bucket latency histogram of client response
    #: times. Parallel runs merge the per-shard-slice histograms via
    #: :meth:`LatencyHistogram.merge
    #: <repro.metrics.histogram.LatencyHistogram.merge>`, so
    #: ``workers=N`` reports correct fleet-wide percentiles.
    latency_histograms: Dict[int, LatencyHistogram] = field(
        default_factory=dict
    )

    def histogram_p99(self, level: int) -> float:
        """Bucket-estimated p99 response time of QoS class *level*."""
        histogram = self.latency_histograms.get(level)
        if histogram is None or not histogram.count:
            return float("nan")
        return histogram.percentile(99.0)

    @property
    def throughput(self) -> float:
        """Completed pages per second across all QoS classes."""
        return sum(self.completions.values()) / self.duration

    @property
    def goodput(self) -> float:
        """Full-fidelity pages per second — the honest scaling metric.

        Raw :attr:`throughput` counts low-fidelity rejects, which an
        overloaded single shard produces quickly; goodput only counts
        pages every service answered at full fidelity.
        """
        return sum(self.full_fidelity.values()) / self.duration

    def premium_p99(self) -> float:
        """99th-percentile page response time of QoS class 1."""
        stats = self.response_times.get(1)
        if stats is None or not stats.count:
            return float("nan")
        return stats.percentile(99.0)

    def mean_response_of(self, level: int) -> float:
        """Mean response time of QoS class *level*."""
        return self.response_times[level].mean


def run_sharded_qos_experiment(
    n_clients: int,
    shards: int = 2,
    replicas: int = 2,
    mode: str = "broker",
    duration: float = 60.0,
    service_times: Tuple[float, ...] = QOS_SERVICE_TIMES,
    threshold: int = 20,
    backend_capacity: int = 5,
    levels: int = 3,
    think_time: float = 0.1,
    key_pool: int = 4096,
    fractions: Optional[Dict[int, float]] = None,
    seed: int = 0,
    obs=None,
    telemetry=None,
    workers: int = 1,
    lookahead: Optional[float] = None,
) -> ShardedQosResult:
    """Run the §V.B testbed with every service sharded N × R ways.

    The topology generalizes :func:`run_qos_experiment`: each of the
    three services is fronted by *shards* shard groups of *replicas*
    brokers, every shard owning its own backend web server (its data
    partition) with the service's bounded CGI time. A
    :class:`~repro.core.sharding.ShardDirectory` seeded with *seed*
    maps request keys to shards; the front end's
    :class:`~repro.core.client.BrokerClient` resolves through it (it
    addresses a *service*, never a broker), and every broker runs
    :func:`~repro.core.pipeline.sharded_stage_plan` so a request
    landing on the wrong shard is relayed to the owner's leader.

    ``mode`` is ``"broker"`` (distributed admission) or
    ``"centralized"`` — the latter wires the load listener exactly as
    the base experiment does, except only shard *leaders* report, so
    listener load grows with the shard count rather than the broker
    count (the paper's listener-saturation weakness is the point of
    this sweep; see EXPERIMENTS.md).

    Each page request draws one item from *key_pool* and reads it from
    all three services, so the request key spreads page traffic across
    shards deterministically. ``shards=1, replicas=1`` is the
    degenerate configuration — one broker per service, every route
    local, exactly the classic topology.

    ``workers`` selects the execution strategy. ``workers=1`` (the
    default) runs the exact serial code path — its seeded output is
    byte-identical across releases and covered by the golden
    determinism test. ``workers>=2`` partitions the topology **by
    shard** and runs the slices under
    :class:`~repro.sim.parallel.ParallelSimulation`: every service's
    ring is seeded identically, so a page's item key owns the same
    shard index for all services and each shard slice (its brokers,
    backends, and the clients pinned to its key range) is an
    independent partition. Partitioned results are deterministic in
    ``(seed, shards)`` — identical for every ``workers >= 2`` — but
    they are a *partitioned workload*, not a replay of the serial
    interleaving: clients are pinned to shards instead of re-drawing a
    global key stream per page. ``lookahead`` overrides the
    synchronization window width (shard slices exchange no messages,
    so it only sets the barrier cadence). The parallel path supports
    ``mode="broker"`` only.
    """
    if mode not in ("broker", "centralized"):
        raise ValueError(f"mode must be 'broker' or 'centralized': {mode!r}")
    if shards < 1 or replicas < 1:
        raise ValueError(
            f"shards and replicas must be >= 1: {shards!r}x{replicas!r}"
        )
    if n_clients < levels:
        raise ValueError(f"need at least {levels} clients, got {n_clients}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers!r}")
    if workers > 1:
        if mode != "broker":
            raise ValueError(
                "parallel execution (workers > 1) partitions by shard and "
                "cannot model the global centralized listener; use "
                "mode='broker' or workers=1"
            )
        if obs is not None:
            raise ValueError(
                "parallel execution cannot aggregate an obs collector "
                "across worker processes; use workers=1"
            )
        if telemetry is not None:
            raise ValueError(
                "parallel execution cannot scrape live telemetry across "
                "worker processes; use workers=1"
            )
        return _run_sharded_parallel(
            n_clients=n_clients,
            shards=shards,
            replicas=replicas,
            duration=duration,
            service_times=service_times,
            threshold=threshold,
            backend_capacity=backend_capacity,
            levels=levels,
            think_time=think_time,
            key_pool=key_pool,
            fractions=fractions,
            seed=seed,
            workers=workers,
            lookahead=lookahead,
        )
    sim = Simulation(seed=seed)
    if obs is not None:
        obs.attach(sim)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    stages = len(service_times)

    from ..http.server import BackendWebServer

    frontend = FrontendWebServer(sim, web_node, name="frontend")
    if fractions is None and levels == 3:
        fractions = {1: 1.0, 2: 5.0 / 6.0, 3: 2.0 / 3.0}
    qos_policy = QoSPolicy(levels=levels, threshold=threshold, fractions=fractions)

    directory = ShardDirectory(metrics=metrics)
    base_plan = "distributed" if mode == "broker" else "centralized"
    all_brokers: List[ServiceBroker] = []
    groups: List[ShardGroup] = []
    peers: List[ShardPeerGroup] = []
    next_port = 7101
    for index, service_time in enumerate(service_times, 1):
        service = f"svc{index}"
        service_brokers: List[ServiceBroker] = []
        service_groups: List[ShardGroup] = []
        for shard in range(shards):
            backend_name = f"backend{index}s{shard}"
            backend = BackendWebServer(
                sim,
                net.node(backend_name),
                max_clients=backend_capacity,
                name=backend_name,
            )

            def bounded_cgi(server, request, _t=service_time):
                yield server.sim.timeout(_t)
                return HttpResponse.text("served")

            backend.add_cgi("/service", bounded_cgi)
            group = ShardGroup(service, shard, metrics=metrics)
            peer = ShardPeerGroup(group)
            for replica in range(replicas):
                broker = ServiceBroker(
                    sim,
                    web_node,
                    service=service,
                    port=next_port,
                    adapters=[
                        HttpAdapter(
                            sim, web_node, backend.address, name=backend_name
                        )
                    ],
                    qos=qos_policy,
                    pool_size=backend_capacity,
                    dispatchers=backend_capacity,
                    priority_queueing=False,
                    metrics=metrics,
                    name=f"broker{index}s{shard}r{replica}",
                    stages=sharded_stage_plan(
                        directory, shard=shard, base=base_plan
                    ),
                )
                next_port += 1
                group.add(broker)
                peer.join(broker)
                service_brokers.append(broker)
            service_groups.append(group)
            groups.append(group)
            peers.append(peer)
        # Route adverts go to every broker of the service, across shards.
        roster_start = len(peers) - shards
        for peer in peers[roster_start:]:
            peer.set_roster(service_brokers)
        directory.register(service, service_groups, seed=seed)
        all_brokers.extend(service_brokers)

    broker_client = BrokerClient(sim, web_node, {})
    broker_client.use_directory(directory)

    listener = None
    if mode == "centralized":
        from ..core.centralized import (
            CentralizedController,
            LoadListener,
            ResourceProfileRegistry,
        )

        listener = LoadListener(
            sim, web_node, process_time=0.0005, metrics=metrics
        )
        for broker in all_brokers:
            # Every replica runs a reporter; only the current leader
            # sends, so the reporting role follows elections.
            broker.report_load_to(listener.address, interval=0.05)
        profiles = ResourceProfileRegistry()
        profiles.register("/page", [f"svc{i}" for i in range(1, stages + 1)])
        controller = CentralizedController(listener, profiles, qos_policy)
        frontend.admission = controller.admit

    service_names = [f"svc{stage}" for stage in range(stages + 1)]
    full_fidelity = HttpResponse.text("full-fidelity")
    low_fidelity = [
        HttpResponse.text(f"low-fidelity (stage {stage})")
        for stage in range(stages + 1)
    ]
    key_rng = sim.rng("shard.keys")

    def page_app(frontend_server, request):
        """3-stage page over one item key: the key picks each shard."""
        level = qos_of(request)
        item = key_rng.randrange(key_pool)
        for stage in range(1, stages + 1):
            reply = yield from broker_client.call(
                service_names[stage],
                "get",
                ("/service", {"item": item}),
                qos_level=level,
                cacheable=False,
                cache_key=f"item{item}",
                parent=request.context,
            )
            if reply.status is not ReplyStatus.OK:
                frontend_server.metrics.increment(f"app.lowfid.qos{level}")
                return low_fidelity[stage]
        frontend_server.metrics.increment(f"app.fullfid.qos{level}")
        return full_fidelity

    frontend.register_app(WebApplication(path="/page", handler=page_app))

    per_class = n_clients // levels
    extra = n_clients - per_class * levels
    clients_by_class: Dict[int, List[ClosedLoopClient]] = {}
    stagger_rng = sim.rng("qos.stagger")
    for level in range(1, levels + 1):
        workstation = net.node(f"workstation{level}")
        count_for_class = per_class + (1 if level <= extra else 0)
        class_clients: List[ClosedLoopClient] = []
        page_request = HttpRequest(
            method="GET",
            path="/page",
            headers={QOS_HEADER: str(level)},
        )
        for index in range(count_for_class):

            def one_request(
                _client, _iteration, _level=level, _request=page_request
            ):
                response = yield from HttpClient.fetch(
                    sim,
                    workstation,
                    frontend.address,
                    _request,
                )
                if response.status == 500:
                    raise RuntimeError(f"server error {response.status}")

            client = ClosedLoopClient(
                sim,
                name=f"shard-qos{level}-{index}",
                request_factory=one_request,
                think_time=think_time,
                start_delay=stagger_rng.uniform(0.0, sum(service_times)),
            )
            client.start(until=duration)
            class_clients.append(client)
        clients_by_class[level] = class_clients

    if telemetry is not None:
        # Purely observational (no RNG, no messages): the workload is
        # identical with or without the scraper.
        telemetry.attach(sim)
        telemetry.watch_registry(frontend.metrics, prefix="app.")
        telemetry.watch_registry(frontend.metrics, prefix="frontend.")
        # All brokers share one registry here, so no label is needed.
        telemetry.watch_registry(metrics, prefix="broker.")
        telemetry.watch_registry(metrics, prefix="listener.")
        for broker in all_brokers:
            telemetry.watch_broker(broker)
        if listener is not None:
            # Leader-only shard aggregation rides the ShardLoadReport
            # path: only group leaders report, so this gauge table is
            # already the per-shard leader view.
            telemetry.watch_listener(listener)
        obs_metrics = getattr(obs, "metrics", None)
        if obs_metrics is not None:
            telemetry.watch_registry(obs_metrics, prefix="obs.latency.")
        telemetry.start(until=duration)

    sim.run(until=duration)
    sim.run(until=duration + 200.0)  # drain in-flight pages

    result = ShardedQosResult(
        mode=mode,
        n_clients=n_clients,
        shards=shards,
        replicas=replicas,
        duration=duration,
        brokers=len(all_brokers),
    )
    for level, class_clients in clients_by_class.items():
        merged = SummaryStats()
        histogram = LatencyHistogram()
        completed = 0
        for client in class_clients:
            completed += client.completed
            for value in client.response_times.values():
                merged.add(value)
                histogram.add(value)
        result.response_times[level] = merged
        result.latency_histograms[level] = histogram
        result.completions[level] = completed
        result.full_fidelity[level] = int(
            frontend.metrics.counter(f"app.fullfid.qos{level}")
        )
        result.frontend_rejections[level] = int(
            frontend.metrics.counter(f"frontend.rejected.qos{level}")
        )
    result.forwards = int(metrics.counter("broker.shard.forwarded"))
    result.local_routes = int(metrics.counter("broker.shard.local"))
    result.elections = sum(group.elections for group in groups)
    if listener is not None:
        result.leader_failovers = listener.leader_failovers
        result.listener_updates = int(metrics.counter("listener.updates"))
    result.topology = directory.describe()
    return result


def _slice_seed(seed: int, shard: int) -> int:
    """Derive shard *shard*'s partition seed from the experiment seed.

    The derivation depends only on ``(seed, shard)`` — never on the
    worker count or worker assignment — so partitioned results are
    identical for every ``workers >= 2``.
    """
    digest = hashlib.blake2b(
        f"{seed}:slice{shard}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _run_sharded_parallel(
    n_clients: int,
    shards: int,
    replicas: int,
    duration: float,
    service_times: Tuple[float, ...],
    threshold: int,
    backend_capacity: int,
    levels: int,
    think_time: float,
    key_pool: int,
    fractions: Optional[Dict[int, float]],
    seed: int,
    workers: int,
    lookahead: Optional[float],
) -> ShardedQosResult:
    """Parallel (per-shard partitioned) form of the sharded testbed.

    Every service's ring is built with the same seed over node names
    ``"0" .. "N-1"``, so one item key owns the same shard index for all
    three services; a page request therefore touches exactly one shard
    and the topology decomposes into *shards* independent slices with
    zero cross-partition traffic. Each slice instantiates that shard's
    brokers, backend, frontend, and the clients pinned to its key
    range, with rings registered over the **full** shard universe so
    key placement matches the unpartitioned topology (a mis-routed key
    fails loudly in :meth:`~repro.core.sharding.ShardDirectory.group`
    instead of silently rehashing).

    Because the slices exchange no messages, the lookahead only sets
    the barrier cadence; the default covers the whole horizon in one
    window. Pass ``lookahead`` to force finer windows (the benchmark
    sweep does, to measure synchronization overhead honestly).
    """
    drain = 200.0
    horizon = duration + drain
    if lookahead is None:
        lookahead = horizon

    # Partition the key population exactly as every slice's directory
    # will: same seed, same node names, same vnode count.
    ring = HashRing(seed=seed, nodes=[str(i) for i in range(shards)])
    by_shard = ring.partition([f"item{k}" for k in range(key_pool)])
    items_by_shard: Dict[int, List[int]] = {
        int(node): [int(key[4:]) for key in keys]
        for node, keys in by_shard.items()
    }

    if fractions is None and levels == 3:
        fractions = {1: 1.0, 2: 5.0 / 6.0, 3: 2.0 / 3.0}

    per_class = n_clients // levels
    extra = n_clients - per_class * levels
    stages = len(service_times)

    def make_builder(shard: int):
        items = items_by_shard[shard]

        def build(sim: Simulation, gateway) -> "Callable[[], dict]":
            from ..http.server import BackendWebServer

            metrics = MetricsRegistry()
            net = Network(sim, default_link=Link.lan())
            web_node = net.node("web")
            frontend = FrontendWebServer(sim, web_node, name="frontend")
            qos_policy = QoSPolicy(
                levels=levels, threshold=threshold, fractions=fractions
            )
            directory = ShardDirectory(metrics=metrics)
            groups: List[ShardGroup] = []
            brokers: List[ServiceBroker] = []
            next_port = 7101
            for index, service_time in enumerate(service_times, 1):
                service = f"svc{index}"
                backend_name = f"backend{index}s{shard}"
                backend = BackendWebServer(
                    sim,
                    net.node(backend_name),
                    max_clients=backend_capacity,
                    name=backend_name,
                )

                def bounded_cgi(server, request, _t=service_time):
                    yield _t
                    return HttpResponse.text("served")

                backend.add_cgi("/service", bounded_cgi)
                group = ShardGroup(service, shard, metrics=metrics)
                peer = ShardPeerGroup(group)
                service_brokers: List[ServiceBroker] = []
                for replica in range(replicas):
                    broker = ServiceBroker(
                        sim,
                        web_node,
                        service=service,
                        port=next_port,
                        adapters=[
                            HttpAdapter(
                                sim,
                                web_node,
                                backend.address,
                                name=backend_name,
                            )
                        ],
                        qos=qos_policy,
                        pool_size=backend_capacity,
                        dispatchers=backend_capacity,
                        priority_queueing=False,
                        metrics=metrics,
                        name=f"broker{index}s{shard}r{replica}",
                        stages=sharded_stage_plan(
                            directory, shard=shard, base="distributed"
                        ),
                    )
                    next_port += 1
                    group.add(broker)
                    peer.join(broker)
                    service_brokers.append(broker)
                peer.set_roster(service_brokers)
                directory.register(
                    service, [group], seed=seed, universe=range(shards)
                )
                groups.append(group)
                brokers.extend(service_brokers)

            broker_client = BrokerClient(sim, web_node, {})
            broker_client.use_directory(directory)

            service_names = [f"svc{s}" for s in range(stages + 1)]
            full_fidelity = HttpResponse.text("full-fidelity")
            low_fidelity = [
                HttpResponse.text(f"low-fidelity (stage {s})")
                for s in range(stages + 1)
            ]
            key_rng = sim.rng("shard.keys")

            def page_app(frontend_server, request):
                level = qos_of(request)
                item = items[key_rng.randrange(len(items))]
                for stage in range(1, stages + 1):
                    reply = yield from broker_client.call(
                        service_names[stage],
                        "get",
                        ("/service", {"item": item}),
                        qos_level=level,
                        cacheable=False,
                        cache_key=f"item{item}",
                        parent=request.context,
                    )
                    if reply.status is not ReplyStatus.OK:
                        frontend_server.metrics.increment(
                            f"app.lowfid.qos{level}"
                        )
                        return low_fidelity[stage]
                frontend_server.metrics.increment(f"app.fullfid.qos{level}")
                return full_fidelity

            frontend.register_app(
                WebApplication(path="/page", handler=page_app)
            )

            clients_by_class: Dict[int, List[ClosedLoopClient]] = {}
            stagger_rng = sim.rng("qos.stagger")
            for level in range(1, levels + 1):
                workstation = net.node(f"workstation{level}")
                count_for_class = per_class + (1 if level <= extra else 0)
                class_clients: List[ClosedLoopClient] = []
                page_request = HttpRequest(
                    method="GET",
                    path="/page",
                    headers={QOS_HEADER: str(level)},
                )
                for index in range(count_for_class):
                    if index % shards != shard:
                        continue

                    def one_request(
                        _client, _iteration, _level=level, _request=page_request
                    ):
                        response = yield from HttpClient.fetch(
                            sim,
                            workstation,
                            frontend.address,
                            _request,
                        )
                        if response.status == 500:
                            raise RuntimeError(
                                f"server error {response.status}"
                            )

                    client = ClosedLoopClient(
                        sim,
                        name=f"shard-qos{level}-{index}",
                        request_factory=one_request,
                        think_time=think_time,
                        start_delay=stagger_rng.uniform(
                            0.0, sum(service_times)
                        ),
                    )
                    client.start(until=duration)
                    class_clients.append(client)
                clients_by_class[level] = class_clients

            def finalize() -> dict:
                per_level: Dict[int, dict] = {}
                for level, class_clients in clients_by_class.items():
                    merged = SummaryStats()
                    histogram = LatencyHistogram()
                    completed = 0
                    for client in class_clients:
                        completed += client.completed
                        for value in client.response_times.values():
                            merged.add(value)
                            histogram.add(value)
                    per_level[level] = {
                        "stats": merged,
                        "hist": histogram,
                        "completed": completed,
                        "fullfid": int(
                            frontend.metrics.counter(f"app.fullfid.qos{level}")
                        ),
                        "rejected": int(
                            frontend.metrics.counter(
                                f"frontend.rejected.qos{level}"
                            )
                        ),
                    }
                return {
                    "levels": per_level,
                    "forwards": int(metrics.counter("broker.shard.forwarded")),
                    "local": int(metrics.counter("broker.shard.local")),
                    "elections": sum(group.elections for group in groups),
                    "brokers": len(brokers),
                    "topology": directory.describe(),
                }

            return finalize

        return build

    specs = [
        PartitionSpec(
            name=f"shard{shard}",
            builder=make_builder(shard),
            seed=_slice_seed(seed, shard),
        )
        for shard in range(shards)
    ]
    driver = ParallelSimulation(specs, lookahead=lookahead, workers=workers)
    partitions = driver.run(until=horizon)

    result = ShardedQosResult(
        mode="broker",
        n_clients=n_clients,
        shards=shards,
        replicas=replicas,
        duration=duration,
    )
    topology_lines: List[str] = []
    for shard in range(shards):
        value = partitions[f"shard{shard}"].value
        result.brokers += value["brokers"]
        result.forwards += value["forwards"]
        result.local_routes += value["local"]
        result.elections += value["elections"]
        topology_lines.append(f"[shard{shard}] {value['topology']}")
        for level, bundle in value["levels"].items():
            if level in result.response_times:
                result.response_times[level] = result.response_times[
                    level
                ].merge(bundle["stats"])
                result.latency_histograms[level] = result.latency_histograms[
                    level
                ].merge(bundle["hist"])
            else:
                result.response_times[level] = bundle["stats"]
                result.latency_histograms[level] = bundle["hist"]
            result.completions[level] = (
                result.completions.get(level, 0) + bundle["completed"]
            )
            result.full_fidelity[level] = (
                result.full_fidelity.get(level, 0) + bundle["fullfid"]
            )
            result.frontend_rejections[level] = (
                result.frontend_rejections.get(level, 0) + bundle["rejected"]
            )
    result.topology = "\n".join(topology_lines)
    return result


# ---------------------------------------------------------------------------
# Experiment E — cross-request optimization tier (shared cache + combining)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheTierResult:
    """One run of the cross-request optimization tier experiment.

    ``backend_queries`` is the load metric: the number of statements the
    database server actually executed (reads *and* flushed write-behind
    writes). Comparing a ``tier_enabled=False`` run against a
    ``tier_enabled=True`` run at the same seed gives the backend-load
    reduction the shared tier buys over single-broker caching.
    """

    clients: int
    brokers: int
    duration: float
    tier_enabled: bool
    requests: int
    ok: int
    from_cache: int
    errors: int
    timeouts: int
    writes: int
    backend_queries: int
    local_hits: int
    local_misses: int
    tier_hits: int
    tier_misses: int
    view_hits: int
    combine_batches: int
    combine_remote_items: int
    combine_yields: int
    write_behind_accepted: int
    write_behind_flushed: int
    write_behind_overflow: int
    latency: SummaryStats

    @property
    def local_hit_ratio(self) -> float:
        """Per-broker cache hit ratio (hits over lookups)."""
        total = self.local_hits + self.local_misses
        return self.local_hits / total if total else 0.0

    @property
    def tier_hit_ratio(self) -> float:
        """Shared-tier hit ratio among requests that missed locally."""
        total = self.tier_hits + self.tier_misses
        return self.tier_hits / total if total else 0.0

    @property
    def cache_served_ratio(self) -> float:
        """Fraction of completed requests answered from any cache."""
        return self.from_cache / self.ok if self.ok else 0.0


def run_cache_tier_experiment(
    n_clients: int = 600,
    brokers: int = 4,
    duration: float = 30.0,
    tier: bool = True,
    views: bool = True,
    table_rows: int = 20_000,
    groups: int = 400,
    key_skew: float = 1.1,
    cache_capacity: int = 256,
    cache_ttl: float = 2.0,
    tier_capacity: int = 8192,
    combine_window: float = 0.004,
    max_batch: int = 8,
    write_fraction: float = 0.02,
    count_fraction: float = 0.2,
    think_time: float = 0.05,
    seed: int = 0,
    obs=None,
) -> CacheTierResult:
    """Measure the cross-request optimization tier at 10x the §V.B scale.

    *brokers* brokers front one database server; *n_clients* closed-loop
    clients (default 600 — ten times the §V.B sweep maximum of 60) are
    sprayed round-robin across the brokers and issue Zipf-skewed keyed
    reads (``SELECT val FROM records WHERE grp = k``, combinable),
    keyed aggregates (``SELECT COUNT(*) ...``, served by a materialized
    view when *views* is on), and a small fraction of writes.

    With ``tier=False`` every broker has only its private
    :class:`~repro.core.cache.ResultCache` — the single-broker caching
    status quo. With ``tier=True`` the same topology additionally runs
    a :class:`~repro.core.cachetier.SharedCacheTier` (read-through +
    write-behind), cross-broker query combining over peer gossip, and
    the materialized view; per-broker caches, clustering configs, and
    the workload are identical in both modes, so the delta isolates the
    tier.
    """
    if brokers < 1:
        raise ValueError(f"brokers must be >= 1: {brokers!r}")
    sim = Simulation(seed=seed)
    if obs is not None:
        obs.attach(sim)
    net = Network(sim, default_link=Link.lan())
    client_node = net.node("client")
    web_node = net.node("web")
    db_node = net.node("dbhost")

    # Backend: one database server, the shared bottleneck.
    database = Database("catalog")
    table = database.create_table(
        "records", [("id", int), ("grp", int), ("val", int)]
    )
    for i in range(table_rows):
        table.insert((i, i % groups, (i * 7) % 1000))
    table.create_index("grp", "hash")
    table.create_index("id", "hash")
    db_metrics = MetricsRegistry()
    db_server = DatabaseServer(
        sim, db_node, database, max_workers=16, metrics=db_metrics
    )
    if tier and views:
        catalog = ViewCatalog(metrics=db_metrics)
        catalog.create(
            "records_by_grp",
            database,
            "SELECT grp, COUNT(*) FROM records GROUP BY grp",
        )
        database.install_views(catalog)

    # Broker tier: shared registry so counters aggregate per deployment.
    registry = MetricsRegistry()
    cache_tier = (
        SharedCacheTier(
            sim, capacity=tier_capacity, ttl=cache_ttl, metrics=registry
        )
        if tier
        else None
    )
    broker_list: List[ServiceBroker] = []
    for b in range(brokers):
        clustering = ClusteringConfig(
            combiner=InListQueryCombiner(),
            max_batch=max_batch,
            window=combine_window,
        )
        if tier:
            stages = cache_tier_stage_plan(
                cache_tier,
                combine_window=combine_window,
                combine_max_batch=max_batch * brokers,
            )
        else:
            stages = distributed_stage_plan()
        broker_list.append(
            ServiceBroker(
                sim,
                web_node,
                service="db",
                adapters=[
                    DatabaseAdapter(
                        sim, web_node, db_server.address, name=f"db{b}"
                    )
                ],
                port=7301 + b,
                qos=QoSPolicy(levels=1, threshold=10_000),  # no drops here
                cache=ResultCache(
                    capacity=cache_capacity,
                    ttl=cache_ttl,
                    clock=lambda: sim.now,
                ),
                clustering=clustering,
                transactions=TransactionTracker(metrics=registry),
                pool_size=4,
                dispatchers=8,
                metrics=registry,
                name=f"cache-broker-{b}",
                stages=stages,
            )
        )
    if tier:
        mesh = BrokerPeerGroup()
        for broker in broker_list:
            mesh.join(broker)

    broker_clients = [
        BrokerClient(sim, client_node, {"db": broker.address})
        for broker in broker_list
    ]

    def _select_sql(grp: int) -> str:
        return f"SELECT val FROM records WHERE grp = {grp}"

    def _count_sql(grp: int) -> str:
        return f"SELECT COUNT(*) FROM records WHERE grp = {grp}"

    sampler = zipf_sampler(sim.rng("cache.keys"), groups, skew=key_skew)
    op_rng = sim.rng("cache.ops")
    stagger_rng = sim.rng("cache.stagger")
    counts = {"requests": 0, "ok": 0, "from_cache": 0, "errors": 0,
              "timeouts": 0, "writes": 0, "wb_accepted": 0}
    latency = SummaryStats()

    def client_loop(index: int):
        broker = broker_list[index % brokers]
        broker_client = broker_clients[index % brokers]
        yield stagger_rng.uniform(0.0, think_time + 0.5)
        while True:
            grp = sampler()
            roll = op_rng.random()
            if roll < write_fraction:
                counts["writes"] += 1
                row = (sampler() * 37) % table_rows
                update = (
                    f"UPDATE records SET val = {int(roll * 1000)} "
                    f"WHERE id = {row}"
                )
                stale_keys = (
                    f"db:query:{_select_sql(row % groups)!r}",
                    f"db:query:{_count_sql(row % groups)!r}",
                )
                if cache_tier is not None and cache_tier.write_behind(
                    broker, "query", update, keys=stale_keys
                ):
                    counts["wb_accepted"] += 1
                    yield think_time
                    continue
                sql, cacheable = update, False
            elif roll < write_fraction + count_fraction:
                sql, cacheable = _count_sql(grp), True
            else:
                sql, cacheable = _select_sql(grp), True
            counts["requests"] += 1
            started = sim.now
            try:
                reply = yield from broker_client.call(
                    "db", "query", sql, cacheable=cacheable, timeout=30.0
                )
            except BrokerTimeout:
                counts["timeouts"] += 1
            else:
                if reply.status is ReplyStatus.OK:
                    counts["ok"] += 1
                    latency.add(sim.now - started)
                    if reply.from_cache:
                        counts["from_cache"] += 1
                else:
                    counts["errors"] += 1
            yield think_time

    for index in range(n_clients):
        sim.process(client_loop(index), name=f"cache-client:{index}")

    sim.run(until=duration)

    counter = registry.counter
    return CacheTierResult(
        clients=n_clients,
        brokers=brokers,
        duration=duration,
        tier_enabled=tier,
        requests=counts["requests"],
        ok=counts["ok"],
        from_cache=counts["from_cache"],
        errors=counts["errors"],
        timeouts=counts["timeouts"],
        writes=counts["writes"],
        backend_queries=int(db_metrics.counter("db.queries")),
        local_hits=int(counter("broker.cache.hits")),
        local_misses=int(counter("broker.cache.misses")),
        tier_hits=int(counter("broker.cachetier.hits")),
        tier_misses=int(counter("broker.cachetier.misses")),
        view_hits=int(db_metrics.counter("db.view.hits")),
        combine_batches=int(counter("broker.cachetier.combine.batches")),
        combine_remote_items=int(
            counter("broker.cachetier.combine.remote_items")
        ),
        combine_yields=int(counter("broker.cachetier.combine.yields")),
        write_behind_accepted=counts["wb_accepted"],
        write_behind_flushed=int(
            counter("broker.cachetier.writebehind.flushed")
        ),
        write_behind_overflow=int(
            counter("broker.cachetier.writebehind.overflow")
        ),
        latency=latency,
    )
